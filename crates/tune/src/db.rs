//! The persistent tuning database.
//!
//! A flat JSON file of best-known records keyed by *(model, layer-shape
//! signature, platform, precision)*. The flow and the serving layer's
//! deployment cache look configs up here before ever considering a search;
//! the tuner inserts (keeping the better of old and new) after a search
//! completes. Written by hand-rolled formatting and read back with
//! [`fpgaccel_trace::json`], so the crate stays dependency-free and the
//! file round-trips exactly.

use crate::candidate::Candidate;
use fpgaccel_aoc::Precision;
use fpgaccel_trace::json::Json;
use std::collections::BTreeMap;
use std::path::Path;

/// Current on-disk format version.
pub const DB_VERSION: u64 = 1;

/// What a tuning record is keyed by.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DbKey {
    /// Model name (the imported graph's name, e.g. `mobilenet_v1`).
    pub model: String,
    /// Layer-shape signature from [`crate::shape_signature`] — two models
    /// with identical 1x1 extents share tuned configs.
    pub shape_sig: String,
    /// Target platform (`Debug` rendering of `FpgaPlatform`).
    pub platform: String,
    /// Numeric precision the record was tuned for.
    pub precision: Precision,
}

impl DbKey {
    /// Canonical flat id used for map ordering and JSON matching.
    pub fn id(&self) -> String {
        format!(
            "{}|{}|{}|{:?}",
            self.model, self.shape_sig, self.platform, self.precision
        )
    }
}

/// One best-known tuned configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneRecord {
    /// Winning `(W_2vec, C_2vec, C_1vec)` tiling.
    pub tile: (usize, usize, usize),
    /// Simulated full-network seconds per image with that tiling.
    pub seconds_per_image: f64,
    /// Device-busy 1x1-convolution seconds per image.
    pub conv1x1_seconds: f64,
    /// DSP blocks of the 1x1-only bitstream.
    pub dsps: u64,
    /// Achieved clock.
    pub fmax_mhz: f64,
    /// Candidate evaluations the producing search spent.
    pub evaluations: usize,
}

impl TuneRecord {
    /// The tuned candidate this record deploys at `precision`.
    pub fn candidate(&self, precision: Precision) -> Candidate {
        Candidate {
            tile: self.tile,
            precision,
        }
    }
}

/// One best-known dataflow-pipeline planner configuration (searched by
/// [`crate::pipeline::search_pipeline`]), stored alongside the tiling
/// records under the same key space.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineRecord {
    /// Winning FIFO depth policy in [`crate::pipeline::policy_id`] form.
    pub depth_policy: String,
    /// Winning segment stage cap.
    pub max_stages: usize,
    /// Simulated full-network seconds per image under the plan.
    pub seconds_per_image: f64,
    /// Activation elements per image kept on-chip vs staged execution.
    pub dram_elems_saved: u64,
    /// Layers running as channel-connected pipeline stages.
    pub pipelined_stages: usize,
    /// Layers demoted to the staged folded pool.
    pub staged_nodes: usize,
    /// Candidate evaluations the producing search spent.
    pub evaluations: usize,
}

/// One best-known per-layer mixed-precision assignment (searched by
/// [`crate::precision::search_precision`]), keyed at the f32 baseline
/// precision: the per-layer rungs live inside the record itself.
#[derive(Clone, Debug, PartialEq)]
pub struct PrecisionRecord {
    /// `(layer name, precision)` pairs in layer order; the precision is the
    /// `Debug` rendering of [`Precision`] (`"F32"`, `"Fp16"`, `"Int8"`, ...).
    pub assignment: Vec<(String, String)>,
    /// Modeled DSP blocks of the mixed-precision bitstream.
    pub dsps: u64,
    /// Modeled DSP blocks of the all-f32 bitstream the search started from.
    pub baseline_dsps: u64,
    /// Modeled RAM blocks of the mixed-precision bitstream.
    pub ram_blocks: u64,
    /// Worst output error the accepted assignment measured vs f32.
    pub worst_error: f64,
    /// Accuracy budget the search ran under.
    pub error_budget: f64,
    /// Accuracy evaluations the producing search spent.
    pub evaluations: usize,
}

/// Parses the `Debug` rendering of a [`Precision`] back into the enum.
pub(crate) fn parse_precision(s: &str) -> Option<Precision> {
    match s {
        "F32" => Some(Precision::F32),
        "Fp16" => Some(Precision::Fp16),
        "Int16" => Some(Precision::Int16),
        "Int8" => Some(Precision::Int8),
        _ => None,
    }
}

impl PrecisionRecord {
    /// The per-layer assignment this record deploys, or `None` when a stored
    /// precision name is from an incompatible future version.
    pub fn assignment_map(&self) -> Option<BTreeMap<String, Precision>> {
        self.assignment
            .iter()
            .map(|(layer, p)| Some((layer.clone(), parse_precision(p)?)))
            .collect()
    }

    /// Layers demoted below f32 by this assignment.
    pub fn demoted(&self) -> usize {
        self.assignment.iter().filter(|(_, p)| p != "F32").count()
    }
}

/// One cached fleet placement plan, keyed by the digest of the fleet
/// specification that produced it (device-class inventory + per-model
/// demand). Placement is deterministic in its spec, so the record is a
/// pure cache: a digest hit skips every feasibility compile and
/// calibration probe the optimizer would otherwise spend.
#[derive(Clone, Debug, PartialEq)]
pub struct PlacementRecord {
    /// Replica counts as `(model name, platform label, replicas)`, in the
    /// deterministic order the optimizer assigned them.
    pub replicas: Vec<(String, String, usize)>,
    /// Aggregate steady-state serving rate of the plan, requests/second.
    pub total_rate_rps: f64,
    /// Feasibility evaluations (compile + calibration probes) the
    /// producing optimization spent.
    pub evaluations: usize,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The database: an ordered map from [`DbKey`] to the best [`TuneRecord`]
/// seen for it.
#[derive(Clone, Debug, Default)]
pub struct TuningDb {
    records: BTreeMap<DbKey, TuneRecord>,
    pipeline: BTreeMap<DbKey, PipelineRecord>,
    mixed: BTreeMap<DbKey, PrecisionRecord>,
    placements: BTreeMap<String, PlacementRecord>,
}

impl TuningDb {
    /// An empty database.
    pub fn new() -> TuningDb {
        TuningDb::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records of any kind are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
            && self.pipeline.is_empty()
            && self.mixed.is_empty()
            && self.placements.is_empty()
    }

    /// Best-known record for a key, if any.
    pub fn lookup(&self, key: &DbKey) -> Option<&TuneRecord> {
        self.records.get(key)
    }

    /// Iterates records in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&DbKey, &TuneRecord)> {
        self.records.iter()
    }

    /// Number of pipeline records.
    pub fn pipeline_len(&self) -> usize {
        self.pipeline.len()
    }

    /// Best-known pipeline-planner record for a key, if any.
    pub fn lookup_pipeline(&self, key: &DbKey) -> Option<&PipelineRecord> {
        self.pipeline.get(key)
    }

    /// Iterates pipeline records in key order.
    pub fn iter_pipeline(&self) -> impl Iterator<Item = (&DbKey, &PipelineRecord)> {
        self.pipeline.iter()
    }

    /// Inserts a pipeline record, keeping whichever of the existing and new
    /// record has the lower latency. Returns true when `record` became (or
    /// stayed) the stored one.
    pub fn insert_pipeline(&mut self, key: DbKey, record: PipelineRecord) -> bool {
        match self.pipeline.get(&key) {
            Some(old) if old.seconds_per_image <= record.seconds_per_image => false,
            _ => {
                self.pipeline.insert(key, record);
                true
            }
        }
    }

    /// Number of mixed-precision records.
    pub fn mixed_len(&self) -> usize {
        self.mixed.len()
    }

    /// Best-known mixed-precision assignment for a key, if any.
    pub fn lookup_mixed(&self, key: &DbKey) -> Option<&PrecisionRecord> {
        self.mixed.get(key)
    }

    /// Iterates mixed-precision records in key order.
    pub fn iter_mixed(&self) -> impl Iterator<Item = (&DbKey, &PrecisionRecord)> {
        self.mixed.iter()
    }

    /// Inserts a mixed-precision record, keeping whichever of the existing
    /// and new record models fewer DSPs (the search objective; ties keep the
    /// stored one). Returns true when `record` became (or stayed) stored.
    pub fn insert_mixed(&mut self, key: DbKey, record: PrecisionRecord) -> bool {
        match self.mixed.get(&key) {
            Some(old) if old.dsps <= record.dsps => false,
            _ => {
                self.mixed.insert(key, record);
                true
            }
        }
    }

    /// Number of cached placement plans.
    pub fn placements_len(&self) -> usize {
        self.placements.len()
    }

    /// Cached placement plan for a fleet-spec digest, if any.
    pub fn lookup_placement(&self, spec: &str) -> Option<&PlacementRecord> {
        self.placements.get(spec)
    }

    /// Iterates placement records in spec-digest order.
    pub fn iter_placements(&self) -> impl Iterator<Item = (&String, &PlacementRecord)> {
        self.placements.iter()
    }

    /// Caches a placement plan under its spec digest. Placement is a pure
    /// function of its spec, so an existing record is kept (first write
    /// wins); returns true when `record` was inserted.
    pub fn insert_placement(&mut self, spec: String, record: PlacementRecord) -> bool {
        match self.placements.entry(spec) {
            std::collections::btree_map::Entry::Occupied(_) => false,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(record);
                true
            }
        }
    }

    /// Inserts a record, keeping whichever of the existing and new record
    /// has the lower latency. Returns true when `record` became (or stayed)
    /// the stored one because it is at least as good.
    pub fn insert(&mut self, key: DbKey, record: TuneRecord) -> bool {
        match self.records.get(&key) {
            Some(old) if old.seconds_per_image <= record.seconds_per_image => false,
            _ => {
                self.records.insert(key, record);
                true
            }
        }
    }

    /// Merges every record of `other` into this database, keeping the
    /// better record per key. Returns how many of `other`'s records won.
    pub fn merge(&mut self, other: &TuningDb) -> usize {
        let tilings = other
            .iter()
            .filter(|(k, r)| self.insert((*k).clone(), (*r).clone()))
            .count();
        let pipelines = other
            .iter_pipeline()
            .filter(|(k, r)| self.insert_pipeline((*k).clone(), (*r).clone()))
            .count();
        let mixed = other
            .iter_mixed()
            .filter(|(k, r)| self.insert_mixed((*k).clone(), (*r).clone()))
            .count();
        let placements = other
            .iter_placements()
            .filter(|(k, r)| self.insert_placement((*k).clone(), (*r).clone()))
            .count();
        tilings + pipelines + mixed + placements
    }

    /// Renders the database as its canonical JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"version\": {DB_VERSION},\n  \"records\": ["
        ));
        for (i, (k, r)) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"model\": \"{}\", \"shape_sig\": \"{}\", \"platform\": \"{}\", \
                 \"precision\": \"{:?}\", \"tile\": [{}, {}, {}], \
                 \"seconds_per_image\": {}, \"conv1x1_seconds\": {}, \"dsps\": {}, \
                 \"fmax_mhz\": {}, \"evaluations\": {}}}",
                escape(&k.model),
                escape(&k.shape_sig),
                escape(&k.platform),
                k.precision,
                r.tile.0,
                r.tile.1,
                r.tile.2,
                r.seconds_per_image,
                r.conv1x1_seconds,
                r.dsps,
                r.fmax_mhz,
                r.evaluations
            ));
        }
        out.push_str("\n  ]");
        // The pipeline section is omitted when empty so tiling-only
        // databases keep their historical byte-exact rendering.
        if !self.pipeline.is_empty() {
            out.push_str(",\n  \"pipeline\": [");
            for (i, (k, r)) in self.pipeline.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"model\": \"{}\", \"shape_sig\": \"{}\", \"platform\": \"{}\", \
                     \"precision\": \"{:?}\", \"depth_policy\": \"{}\", \"max_stages\": {}, \
                     \"seconds_per_image\": {}, \"dram_elems_saved\": {}, \
                     \"pipelined_stages\": {}, \"staged_nodes\": {}, \"evaluations\": {}}}",
                    escape(&k.model),
                    escape(&k.shape_sig),
                    escape(&k.platform),
                    k.precision,
                    escape(&r.depth_policy),
                    r.max_stages,
                    r.seconds_per_image,
                    r.dram_elems_saved,
                    r.pipelined_stages,
                    r.staged_nodes,
                    r.evaluations
                ));
            }
            out.push_str("\n  ]");
        }
        // Like `pipeline`, the mixed-precision section is omitted when empty
        // so older databases keep their historical byte-exact rendering.
        if !self.mixed.is_empty() {
            out.push_str(",\n  \"mixed\": [");
            for (i, (k, r)) in self.mixed.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let assignment = r
                    .assignment
                    .iter()
                    .map(|(layer, p)| format!("[\"{}\", \"{}\"]", escape(layer), escape(p)))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "\n    {{\"model\": \"{}\", \"shape_sig\": \"{}\", \"platform\": \"{}\", \
                     \"precision\": \"{:?}\", \"assignment\": [{}], \"dsps\": {}, \
                     \"baseline_dsps\": {}, \"ram_blocks\": {}, \"worst_error\": {}, \
                     \"error_budget\": {}, \"evaluations\": {}}}",
                    escape(&k.model),
                    escape(&k.shape_sig),
                    escape(&k.platform),
                    k.precision,
                    assignment,
                    r.dsps,
                    r.baseline_dsps,
                    r.ram_blocks,
                    r.worst_error,
                    r.error_budget,
                    r.evaluations
                ));
            }
            out.push_str("\n  ]");
        }
        // Like `pipeline`, the placements section is omitted when empty so
        // pre-fleet databases keep their historical byte-exact rendering.
        if !self.placements.is_empty() {
            out.push_str(",\n  \"placements\": [");
            for (i, (spec, r)) in self.placements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let replicas = r
                    .replicas
                    .iter()
                    .map(|(m, p, n)| format!("[\"{}\", \"{}\", {}]", escape(m), escape(p), n))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "\n    {{\"spec\": \"{}\", \"replicas\": [{}], \
                     \"total_rate_rps\": {}, \"evaluations\": {}}}",
                    escape(spec),
                    replicas,
                    r.total_rate_rps,
                    r.evaluations
                ));
            }
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a database from its JSON document.
    ///
    /// # Errors
    /// A message describing the first malformed field, or an unsupported
    /// version.
    pub fn from_json(src: &str) -> Result<TuningDb, String> {
        let doc = Json::parse(src)?;
        let version = doc
            .get("version")
            .and_then(Json::as_f64)
            .ok_or("missing `version`")?;
        if version as u64 != DB_VERSION {
            return Err(format!("unsupported tuning-db version {version}"));
        }
        let records = doc
            .get("records")
            .and_then(Json::as_array)
            .ok_or("missing `records` array")?;
        let mut db = TuningDb::new();
        for (i, rec) in records.iter().enumerate() {
            let field = |name: &str| -> Result<&Json, String> {
                rec.get(name).ok_or(format!("record {i}: missing `{name}`"))
            };
            let text = |name: &str| -> Result<String, String> {
                field(name)?
                    .as_str()
                    .map(str::to_string)
                    .ok_or(format!("record {i}: `{name}` not a string"))
            };
            let num = |name: &str| -> Result<f64, String> {
                field(name)?
                    .as_f64()
                    .ok_or(format!("record {i}: `{name}` not a number"))
            };
            let precision = parse_precision(&text("precision")?)
                .ok_or(format!("record {i}: unknown precision"))?;
            let tile_arr = field("tile")?
                .as_array()
                .ok_or(format!("record {i}: `tile` not an array"))?;
            if tile_arr.len() != 3 {
                return Err(format!("record {i}: `tile` must have 3 factors"));
            }
            let factor = |j: usize| -> Result<usize, String> {
                tile_arr[j]
                    .as_f64()
                    .map(|f| f as usize)
                    .ok_or(format!("record {i}: tile[{j}] not a number"))
            };
            let key = DbKey {
                model: text("model")?,
                shape_sig: text("shape_sig")?,
                platform: text("platform")?,
                precision,
            };
            let record = TuneRecord {
                tile: (factor(0)?, factor(1)?, factor(2)?),
                seconds_per_image: num("seconds_per_image")?,
                conv1x1_seconds: num("conv1x1_seconds")?,
                dsps: num("dsps")? as u64,
                fmax_mhz: num("fmax_mhz")?,
                evaluations: num("evaluations")? as usize,
            };
            db.insert(key, record);
        }
        // Optional pipeline section (absent in tiling-only databases).
        if let Some(pipeline) = doc.get("pipeline") {
            let recs = pipeline.as_array().ok_or("`pipeline` not an array")?;
            for (i, rec) in recs.iter().enumerate() {
                let field = |name: &str| -> Result<&Json, String> {
                    rec.get(name)
                        .ok_or(format!("pipeline record {i}: missing `{name}`"))
                };
                let text = |name: &str| -> Result<String, String> {
                    field(name)?
                        .as_str()
                        .map(str::to_string)
                        .ok_or(format!("pipeline record {i}: `{name}` not a string"))
                };
                let num = |name: &str| -> Result<f64, String> {
                    field(name)?
                        .as_f64()
                        .ok_or(format!("pipeline record {i}: `{name}` not a number"))
                };
                let precision = parse_precision(&text("precision")?)
                    .ok_or(format!("pipeline record {i}: unknown precision"))?;
                let key = DbKey {
                    model: text("model")?,
                    shape_sig: text("shape_sig")?,
                    platform: text("platform")?,
                    precision,
                };
                let record = PipelineRecord {
                    depth_policy: text("depth_policy")?,
                    max_stages: num("max_stages")? as usize,
                    seconds_per_image: num("seconds_per_image")?,
                    dram_elems_saved: num("dram_elems_saved")? as u64,
                    pipelined_stages: num("pipelined_stages")? as usize,
                    staged_nodes: num("staged_nodes")? as usize,
                    evaluations: num("evaluations")? as usize,
                };
                db.insert_pipeline(key, record);
            }
        }
        // Optional mixed-precision section (absent in older databases).
        if let Some(mixed) = doc.get("mixed") {
            let recs = mixed.as_array().ok_or("`mixed` not an array")?;
            for (i, rec) in recs.iter().enumerate() {
                let field = |name: &str| -> Result<&Json, String> {
                    rec.get(name)
                        .ok_or(format!("mixed record {i}: missing `{name}`"))
                };
                let text = |name: &str| -> Result<String, String> {
                    field(name)?
                        .as_str()
                        .map(str::to_string)
                        .ok_or(format!("mixed record {i}: `{name}` not a string"))
                };
                let num = |name: &str| -> Result<f64, String> {
                    field(name)?
                        .as_f64()
                        .ok_or(format!("mixed record {i}: `{name}` not a number"))
                };
                let precision = parse_precision(&text("precision")?)
                    .ok_or(format!("mixed record {i}: unknown precision"))?;
                let pairs = field("assignment")?
                    .as_array()
                    .ok_or(format!("mixed record {i}: `assignment` not an array"))?;
                let mut assignment = Vec::new();
                for (j, pair) in pairs.iter().enumerate() {
                    let parts = pair
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or(format!("mixed record {i}: assignment[{j}] not a pair"))?;
                    let layer = parts[0]
                        .as_str()
                        .ok_or(format!("mixed record {i}: assignment[{j}] layer"))?;
                    let p = parts[1]
                        .as_str()
                        .ok_or(format!("mixed record {i}: assignment[{j}] precision"))?;
                    assignment.push((layer.to_string(), p.to_string()));
                }
                let key = DbKey {
                    model: text("model")?,
                    shape_sig: text("shape_sig")?,
                    platform: text("platform")?,
                    precision,
                };
                let record = PrecisionRecord {
                    assignment,
                    dsps: num("dsps")? as u64,
                    baseline_dsps: num("baseline_dsps")? as u64,
                    ram_blocks: num("ram_blocks")? as u64,
                    worst_error: num("worst_error")?,
                    error_budget: num("error_budget")?,
                    evaluations: num("evaluations")? as usize,
                };
                db.insert_mixed(key, record);
            }
        }
        // Optional placements section (absent in pre-fleet databases).
        if let Some(placements) = doc.get("placements") {
            let recs = placements.as_array().ok_or("`placements` not an array")?;
            for (i, rec) in recs.iter().enumerate() {
                let spec = rec
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or(format!("placement record {i}: missing `spec`"))?
                    .to_string();
                let replica_arr = rec
                    .get("replicas")
                    .and_then(Json::as_array)
                    .ok_or(format!("placement record {i}: missing `replicas`"))?;
                let mut replicas = Vec::new();
                for (j, triple) in replica_arr.iter().enumerate() {
                    let parts = triple
                        .as_array()
                        .filter(|a| a.len() == 3)
                        .ok_or(format!("placement record {i}: replicas[{j}] not a triple"))?;
                    let model = parts[0]
                        .as_str()
                        .ok_or(format!("placement record {i}: replicas[{j}] model"))?;
                    let platform = parts[1]
                        .as_str()
                        .ok_or(format!("placement record {i}: replicas[{j}] platform"))?;
                    let count = parts[2]
                        .as_f64()
                        .ok_or(format!("placement record {i}: replicas[{j}] count"))?;
                    replicas.push((model.to_string(), platform.to_string(), count as usize));
                }
                let num = |name: &str| -> Result<f64, String> {
                    rec.get(name)
                        .and_then(Json::as_f64)
                        .ok_or(format!("placement record {i}: missing `{name}`"))
                };
                let record = PlacementRecord {
                    replicas,
                    total_rate_rps: num("total_rate_rps")?,
                    evaluations: num("evaluations")? as usize,
                };
                db.insert_placement(spec, record);
            }
        }
        Ok(db)
    }

    /// Loads a database from `path`; a missing file is an empty database
    /// (first run), a malformed file is an error.
    ///
    /// # Errors
    /// I/O failures other than not-found, or a parse failure.
    pub fn load(path: &Path) -> Result<TuningDb, String> {
        match std::fs::read_to_string(path) {
            Ok(src) => TuningDb::from_json(&src),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(TuningDb::new()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Re-reads `path`, merges this database's records into the on-disk
    /// state (keeping the better record per key), writes the result back,
    /// and returns the merged database.
    ///
    /// This is the lost-update-safe way for concurrent tuners to persist:
    /// a plain [`TuningDb::save`] overwrites whatever another process
    /// wrote since this one loaded, while `save_merged` keeps the best
    /// record per key regardless of write order.
    ///
    /// # Errors
    /// A malformed on-disk database (which is left untouched), or any I/O
    /// failure.
    pub fn save_merged(&self, path: &Path) -> Result<TuningDb, String> {
        let mut merged = TuningDb::load(path)?;
        merged.merge(self);
        merged.save(path)?;
        Ok(merged)
    }

    /// Writes the database to `path` (creating parent directories).
    ///
    /// # Errors
    /// Any I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("{}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, self.to_json()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> DbKey {
        DbKey {
            model: "mobilenet_v1".into(),
            shape_sig: "n13-deadbeef".into(),
            platform: "Arria10Gx".into(),
            precision: Precision::F32,
        }
    }

    fn record(tile: (usize, usize, usize), s: f64) -> TuneRecord {
        TuneRecord {
            tile,
            seconds_per_image: s,
            conv1x1_seconds: s * 0.6,
            dsps: 504,
            fmax_mhz: 187.5,
            evaluations: 84,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut db = TuningDb::new();
        db.insert(key(), record((7, 8, 8), 0.012345678901234));
        db.insert(
            DbKey {
                platform: "Stratix10Gx".into(),
                ..key()
            },
            record((7, 16, 8), 0.006),
        );
        let text = db.to_json();
        let back = TuningDb::from_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.lookup(&key()), db.lookup(&key()));
        // Canonical rendering is stable through a round trip.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn insert_keeps_the_better_record() {
        let mut db = TuningDb::new();
        assert!(db.insert(key(), record((7, 8, 8), 0.010)));
        assert!(
            !db.insert(key(), record((7, 4, 4), 0.020)),
            "worse record must not replace"
        );
        assert_eq!(db.lookup(&key()).unwrap().tile, (7, 8, 8));
        assert!(db.insert(key(), record((7, 16, 8), 0.005)));
        assert_eq!(db.lookup(&key()).unwrap().tile, (7, 16, 8));
    }

    #[test]
    fn load_of_missing_file_is_an_empty_db_and_save_round_trips() {
        let dir = std::env::temp_dir().join("fpgaccel-tune-db-test");
        let path = dir.join("nested").join("db.json");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(TuningDb::load(&path).unwrap().is_empty());
        let mut db = TuningDb::new();
        db.insert(key(), record((7, 8, 8), 0.012));
        db.save(&path).unwrap();
        let back = TuningDb::load(&path).unwrap();
        assert_eq!(back.lookup(&key()).unwrap().tile, (7, 8, 8));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn pipeline_record(policy: &str, s: f64) -> PipelineRecord {
        PipelineRecord {
            depth_policy: policy.into(),
            max_stages: 32,
            seconds_per_image: s,
            dram_elems_saved: 6_460_928,
            pipelined_stages: 12,
            staged_nodes: 33,
            evaluations: 8,
        }
    }

    #[test]
    fn pipeline_records_round_trip_and_keep_the_better_one() {
        let mut db = TuningDb::new();
        db.insert(key(), record((7, 8, 8), 0.012));
        assert!(db.insert_pipeline(key(), pipeline_record("fill*2", 0.033)));
        assert!(
            !db.insert_pipeline(key(), pipeline_record("full", 0.050)),
            "worse pipeline record must not replace"
        );
        let text = db.to_json();
        let back = TuningDb::from_json(&text).unwrap();
        assert_eq!(back.pipeline_len(), 1);
        assert_eq!(back.lookup_pipeline(&key()), db.lookup_pipeline(&key()));
        assert_eq!(back.to_json(), text, "canonical rendering is stable");
        // Merge keeps the better pipeline record per key.
        let mut better = TuningDb::new();
        better.insert_pipeline(key(), pipeline_record("fill*4", 0.020));
        assert_eq!(db.merge(&better), 1);
        assert_eq!(db.lookup_pipeline(&key()).unwrap().depth_policy, "fill*4");
    }

    #[test]
    fn tiling_only_databases_render_without_a_pipeline_section() {
        let mut db = TuningDb::new();
        db.insert(key(), record((7, 8, 8), 0.012));
        assert!(!db.to_json().contains("\"pipeline\""));
        // And a pipeline-only database still counts as non-empty.
        let mut p = TuningDb::new();
        p.insert_pipeline(key(), pipeline_record("fill*2", 0.033));
        assert!(!p.is_empty());
    }

    fn mixed_record(dsps: u64) -> PrecisionRecord {
        PrecisionRecord {
            assignment: vec![
                ("conv1".into(), "Int8".into()),
                ("conv2".into(), "Fp16".into()),
                ("dense1".into(), "F32".into()),
            ],
            dsps,
            baseline_dsps: 600,
            ram_blocks: 420,
            worst_error: 0.0125,
            error_budget: 0.05,
            evaluations: 6,
        }
    }

    #[test]
    fn mixed_records_round_trip_and_keep_the_fewer_dsps() {
        let mut db = TuningDb::new();
        assert!(db.insert_mixed(key(), mixed_record(300)));
        assert!(
            !db.insert_mixed(key(), mixed_record(500)),
            "a record modeling more DSPs must not replace"
        );
        let text = db.to_json();
        let back = TuningDb::from_json(&text).unwrap();
        assert_eq!(back.mixed_len(), 1);
        assert_eq!(back.lookup_mixed(&key()), db.lookup_mixed(&key()));
        assert_eq!(back.to_json(), text, "canonical rendering is stable");
        // The stored assignment parses back into per-layer precisions.
        let map = back.lookup_mixed(&key()).unwrap().assignment_map().unwrap();
        assert_eq!(map["conv1"], Precision::Int8);
        assert_eq!(map["conv2"], Precision::Fp16);
        assert_eq!(map["dense1"], Precision::F32);
        assert_eq!(back.lookup_mixed(&key()).unwrap().demoted(), 2);
        // Merge keeps the fewer-DSP record per key.
        let mut better = TuningDb::new();
        better.insert_mixed(key(), mixed_record(250));
        assert_eq!(db.merge(&better), 1);
        assert_eq!(db.lookup_mixed(&key()).unwrap().dsps, 250);
    }

    #[test]
    fn mixed_free_databases_render_without_a_mixed_section() {
        let mut db = TuningDb::new();
        db.insert(key(), record((7, 8, 8), 0.012));
        assert!(!db.to_json().contains("\"mixed\""));
        let mut m = TuningDb::new();
        m.insert_mixed(key(), mixed_record(300));
        assert!(!m.is_empty());
        // A future precision name fails the parse, not the load.
        let mut rec = mixed_record(300);
        rec.assignment.push(("conv9".into(), "Int4".into()));
        assert_eq!(rec.assignment_map(), None);
    }

    fn placement_record() -> PlacementRecord {
        PlacementRecord {
            replicas: vec![
                ("MobileNetV1".into(), "S10SX".into(), 120),
                ("LeNet-5".into(), "A10".into(), 3),
            ],
            total_rate_rps: 4812.5,
            evaluations: 9,
        }
    }

    #[test]
    fn placement_records_round_trip_and_first_write_wins() {
        let mut db = TuningDb::new();
        assert!(db.insert_placement("fleet-abc123".into(), placement_record()));
        assert!(
            !db.insert_placement(
                "fleet-abc123".into(),
                PlacementRecord {
                    evaluations: 99,
                    ..placement_record()
                }
            ),
            "a spec digest is a pure cache key; first write wins"
        );
        let text = db.to_json();
        let back = TuningDb::from_json(&text).unwrap();
        assert_eq!(back.placements_len(), 1);
        assert_eq!(
            back.lookup_placement("fleet-abc123"),
            db.lookup_placement("fleet-abc123")
        );
        assert_eq!(back.to_json(), text, "canonical rendering is stable");
        // Merge carries placements across databases.
        let mut other = TuningDb::new();
        other.insert_placement("fleet-def456".into(), placement_record());
        assert_eq!(db.merge(&other), 1);
        assert_eq!(db.placements_len(), 2);
    }

    #[test]
    fn placement_free_databases_render_without_a_placements_section() {
        let mut db = TuningDb::new();
        db.insert(key(), record((7, 8, 8), 0.012));
        db.insert_pipeline(key(), pipeline_record("fill*2", 0.033));
        assert!(!db.to_json().contains("\"placements\""));
        // And a placement-only database still counts as non-empty.
        let mut p = TuningDb::new();
        p.insert_placement("fleet-abc123".into(), placement_record());
        assert!(!p.is_empty());
    }

    #[test]
    fn malformed_documents_are_structured_errors() {
        assert!(TuningDb::from_json("{").is_err());
        assert!(TuningDb::from_json("{\"version\": 99, \"records\": []}")
            .unwrap_err()
            .contains("version"));
        let missing = "{\"version\": 1, \"records\": [{\"model\": \"m\"}]}";
        let err = TuningDb::from_json(missing).unwrap_err();
        assert!(err.contains("record 0: missing"), "{err}");
    }
}
