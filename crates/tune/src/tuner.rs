//! The [`Tuner`] façade: warm tuning-database lookup, the search engine,
//! and observability glued together.
//!
//! `tune` first consults the [`TuningDb`]; a hit returns immediately with
//! **zero** candidate evaluations (the warm path the serving layer relies
//! on). On a miss it runs the beam + evolutionary [`search`], records the
//! winner back into the database, and emits spans on the `PID_TUNE` track
//! plus `tune_*` counters/gauges so a tuning run shows up in the same
//! Perfetto timeline and metrics exposition as everything else.

use crate::candidate::{Candidate, SearchSpace};
use crate::db::{DbKey, TuneRecord, TuningDb};
use crate::search::{search, EvalError, Evaluate, Measured, SearchConfig};
use fpgaccel_trace::{Registry, Tracer, PID_TUNE};

/// Why tuning produced nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TuneError {
    /// The proposal generator had no legal candidates (no 1x1 layers).
    EmptySpace(crate::candidate::LegalityError),
    /// Candidates were evaluated but none fit the platform end to end.
    NoFeasibleCandidate {
        /// Evaluations spent before giving up.
        evaluations: usize,
    },
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::EmptySpace(e) => write!(f, "nothing to tune: {e}"),
            TuneError::NoFeasibleCandidate { evaluations } => {
                write!(f, "no feasible candidate after {evaluations} evaluations")
            }
        }
    }
}

impl std::error::Error for TuneError {}

/// What a tuning run produced.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The winning candidate.
    pub candidate: Candidate,
    /// Its simulated full-network seconds per image.
    pub seconds_per_image: f64,
    /// Its device-busy 1x1-convolution seconds per image.
    pub conv1x1_seconds: f64,
    /// DSP blocks of its 1x1-only bitstream.
    pub dsps: u64,
    /// Its achieved clock.
    pub fmax_mhz: f64,
    /// Candidate evaluations this call spent (0 on a database hit).
    pub evaluations: usize,
    /// True when the result came from the tuning database, skipping the
    /// search entirely.
    pub from_cache: bool,
    /// Every candidate evaluated this call, in evaluation order.
    pub evaluated: Vec<(Candidate, Result<Measured, EvalError>)>,
}

/// The auto-tuner for one (model, platform) search space.
pub struct Tuner {
    space: SearchSpace,
    config: SearchConfig,
    tracer: Tracer,
    registry: Registry,
}

impl Tuner {
    /// A tuner over `space` with the given search budget/knobs, untraced.
    pub fn new(space: SearchSpace, config: SearchConfig) -> Tuner {
        Tuner {
            space,
            config,
            tracer: Tracer::disabled(),
            registry: Registry::default(),
        }
    }

    /// Records spans on `tracer`'s `PID_TUNE` track.
    pub fn with_tracer(mut self, tracer: Tracer) -> Tuner {
        self.tracer = tracer;
        self
    }

    /// Publishes `tune_*` metrics to `registry`.
    pub fn with_registry(mut self, registry: Registry) -> Tuner {
        self.registry = registry;
        self
    }

    /// The search space being tuned.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn counter(&self, name: &str, help: &str, key: &DbKey) {
        self.registry.counter_inc(
            name,
            help,
            &[("model", &key.model), ("platform", &key.platform)],
        );
    }

    /// Tunes: warm database lookup first, search on a miss, best record
    /// written back into `db`.
    ///
    /// # Errors
    /// [`TuneError::EmptySpace`] when the model has no 1x1 convolutions,
    /// [`TuneError::NoFeasibleCandidate`] when nothing evaluated fits the
    /// platform.
    pub fn tune(
        &self,
        key: &DbKey,
        db: &mut TuningDb,
        eval: &dyn Evaluate,
    ) -> Result<TuneOutcome, TuneError> {
        if self.tracer.is_enabled() {
            self.tracer.set_process_name(PID_TUNE, "auto-tuner");
        }

        // Warm path: a stored record whose tiling is still legal for the
        // space wins outright — zero evaluations, no search.
        if let Some(rec) = db.lookup(key) {
            let cand = rec.candidate(key.precision);
            if self.space.validate(&cand).is_ok() {
                self.counter(
                    "tune_db_hits_total",
                    "Tuning-database hits (search skipped)",
                    key,
                );
                let _g = self.tracer.phase_on(PID_TUNE, "tune", "db-hit");
                return Ok(TuneOutcome {
                    candidate: cand,
                    seconds_per_image: rec.seconds_per_image,
                    conv1x1_seconds: rec.conv1x1_seconds,
                    dsps: rec.dsps,
                    fmax_mhz: rec.fmax_mhz,
                    evaluations: 0,
                    from_cache: true,
                    evaluated: Vec::new(),
                });
            }
        }
        self.counter(
            "tune_db_misses_total",
            "Tuning-database misses (search ran)",
            key,
        );

        self.space.proposals().map_err(TuneError::EmptySpace)?;

        let result = {
            let _g = self.tracer.phase_on(PID_TUNE, "tune", "search");
            let mut last_spent = 0usize;
            search(&self.space, &self.config, eval, |label, spent, best| {
                let _r = self.tracer.phase_on(PID_TUNE, "tune", label);
                self.registry.counter_add(
                    "tune_evaluations_total",
                    "Candidate evaluations spent by the tuner",
                    &[("model", &key.model), ("platform", &key.platform)],
                    (spent - last_spent) as f64,
                );
                last_spent = spent;
                if best.is_finite() {
                    self.registry.gauge_set(
                        "tune_best_seconds_per_image",
                        "Best simulated seconds/image found so far",
                        &[("model", &key.model), ("platform", &key.platform)],
                        best,
                    );
                }
            })
        };

        let Some((candidate, m)) = result.best else {
            return Err(TuneError::NoFeasibleCandidate {
                evaluations: result.evaluations,
            });
        };
        let seconds = m
            .seconds_per_image
            .expect("best candidate is feasible by construction");
        db.insert(
            key.clone(),
            TuneRecord {
                tile: candidate.tile,
                seconds_per_image: seconds,
                conv1x1_seconds: m.conv1x1_seconds,
                dsps: m.dsps,
                fmax_mhz: m.fmax_mhz,
                evaluations: result.evaluations,
            },
        );
        Ok(TuneOutcome {
            candidate,
            seconds_per_image: seconds,
            conv1x1_seconds: m.conv1x1_seconds,
            dsps: m.dsps,
            fmax_mhz: m.fmax_mhz,
            evaluations: result.evaluations,
            from_cache: false,
            evaluated: result.evaluated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Conv1x1Shape;
    use fpgaccel_device::Resources;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting {
        calls: AtomicUsize,
        feasible: bool,
    }

    impl Evaluate for Counting {
        fn evaluate(&self, c: &Candidate) -> Result<Measured, EvalError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let lanes = c.lanes();
            Ok(Measured {
                seconds_per_image: self.feasible.then(|| 1.0 / lanes as f64),
                conv1x1_seconds: 0.5 / lanes as f64,
                dsps: lanes,
                ram_blocks: 100,
                fmax_mhz: 200.0,
                utilization: (10.0, 10.0, 10.0),
                routing_bits: 100,
            })
        }
    }

    fn space() -> SearchSpace {
        SearchSpace::new(
            vec![Conv1x1Shape {
                layer: "l".into(),
                w2: 14,
                h2: 14,
                c2: 32,
                c1: 16,
            }],
            Resources {
                alut: 400_000,
                ff: 800_000,
                ram: 2_000,
                dsp: 100_000,
            },
            20_000,
        )
    }

    fn key() -> DbKey {
        DbKey {
            model: "m".into(),
            shape_sig: "n1-cafe".into(),
            platform: "Arria10Gx".into(),
            precision: fpgaccel_aoc::Precision::F32,
        }
    }

    #[test]
    fn cold_search_finds_best_and_records_it() {
        let eval = Counting {
            calls: AtomicUsize::new(0),
            feasible: true,
        };
        let tuner = Tuner::new(space(), SearchConfig::default());
        let mut db = TuningDb::new();
        let out = tuner.tune(&key(), &mut db, &eval).unwrap();
        assert!(!out.from_cache);
        assert!(out.evaluations > 0);
        // Best of this monotone objective is the max-lanes tiling.
        assert_eq!(out.candidate.tile, (14, 32, 16));
        assert_eq!(db.lookup(&key()).unwrap().tile, (14, 32, 16));
        assert_eq!(db.lookup(&key()).unwrap().evaluations, out.evaluations);
    }

    #[test]
    fn warm_db_hit_skips_the_search_entirely() {
        let eval = Counting {
            calls: AtomicUsize::new(0),
            feasible: true,
        };
        let mut db = TuningDb::new();
        db.insert(
            key(),
            TuneRecord {
                tile: (7, 8, 8),
                seconds_per_image: 0.001,
                conv1x1_seconds: 0.0005,
                dsps: 448,
                fmax_mhz: 190.0,
                evaluations: 84,
            },
        );
        let tuner = Tuner::new(space(), SearchConfig::default());
        let out = tuner.tune(&key(), &mut db, &eval).unwrap();
        assert!(out.from_cache);
        assert_eq!(out.evaluations, 0);
        assert_eq!(out.candidate.tile, (7, 8, 8));
        assert_eq!(
            eval.calls.load(Ordering::Relaxed),
            0,
            "warm hit must not evaluate any candidate"
        );
    }

    #[test]
    fn stale_record_with_illegal_tiling_falls_back_to_search() {
        let eval = Counting {
            calls: AtomicUsize::new(0),
            feasible: true,
        };
        let mut db = TuningDb::new();
        db.insert(
            key(),
            TuneRecord {
                tile: (5, 3, 3), // divides nothing in this space
                seconds_per_image: 0.001,
                conv1x1_seconds: 0.0005,
                dsps: 45,
                fmax_mhz: 190.0,
                evaluations: 10,
            },
        );
        let tuner = Tuner::new(space(), SearchConfig::default());
        let out = tuner.tune(&key(), &mut db, &eval).unwrap();
        assert!(!out.from_cache);
        assert!(eval.calls.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn infeasible_everything_is_a_structured_error() {
        let eval = Counting {
            calls: AtomicUsize::new(0),
            feasible: false,
        };
        let tuner = Tuner::new(space(), SearchConfig::default());
        let mut db = TuningDb::new();
        let err = tuner.tune(&key(), &mut db, &eval).unwrap_err();
        assert!(matches!(err, TuneError::NoFeasibleCandidate { .. }));
        assert!(db.is_empty());
    }

    #[test]
    fn tuner_emits_spans_and_metrics() {
        let eval = Counting {
            calls: AtomicUsize::new(0),
            feasible: true,
        };
        let tracer = Tracer::enabled();
        let registry = Registry::default();
        let tuner = Tuner::new(space(), SearchConfig::default())
            .with_tracer(tracer.clone())
            .with_registry(registry.clone());
        let mut db = TuningDb::new();
        tuner.tune(&key(), &mut db, &eval).unwrap();
        assert!(tracer
            .events()
            .iter()
            .any(|e| e.pid == PID_TUNE && e.name == "search"));
        let labels = [("model", "m"), ("platform", "Arria10Gx")];
        let evals = registry.value("tune_evaluations_total", &labels).unwrap();
        assert!(evals > 0.0, "evaluation counter should accumulate");
        let text = registry.render_prometheus();
        assert!(text.contains("tune_db_misses_total"));
        assert!(text.contains("tune_evaluations_total"));
        assert!(text.contains("tune_best_seconds_per_image"));
    }
}
