//! Pipeline-deployment search: explores the dataflow planner's knobs —
//! the inter-stage FIFO [`DepthPolicy`] and the segment stage cap — the
//! same way the 1x1 tiling search explores schedules. Both knobs trade
//! resources for throughput (deeper FIFOs decouple stages but eat BRAM;
//! longer segments drop DRAM round trips but must fit the chip at once),
//! so the winner is platform-specific and worth caching in the tuning
//! database alongside the tiling records.
//!
//! Evaluation stays behind a trait ([`EvaluatePipeline`]) exactly like
//! [`crate::Evaluate`]: the compile flow implements it (plan + simulate a
//! batch), this crate only ranks.

use crate::db::PipelineRecord;
use crate::search::EvalError;
use fpgaccel_pipeline::{DepthPolicy, PipelineOpts};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What evaluating one planner configuration measured.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineMeasured {
    /// Simulated seconds per image for the full network under the plan.
    pub seconds_per_image: f64,
    /// Activation elements per image that stay on-chip vs staged execution.
    pub dram_elems_saved: u64,
    /// Layers running as channel-connected pipeline stages.
    pub pipelined_stages: usize,
    /// Layers demoted to the staged folded pool.
    pub staged_nodes: usize,
}

impl PipelineMeasured {
    /// The search objective (lower is better).
    pub fn objective(&self) -> f64 {
        self.seconds_per_image
    }
}

/// A pipeline-candidate evaluator; implementations must be callable from
/// several worker threads at once.
pub trait EvaluatePipeline: Sync {
    /// Plans and simulates one planner configuration.
    ///
    /// # Errors
    /// [`EvalError`] when the plan cannot be built or simulated.
    fn evaluate_pipeline(&self, opts: &PipelineOpts) -> Result<PipelineMeasured, EvalError>;
}

/// The default candidate grid: every depth policy the runtime's stall model
/// distinguishes (starved, matched, double-buffered, fully decoupled)
/// crossed with a short and a long segment cap.
pub fn pipeline_candidates() -> Vec<PipelineOpts> {
    let depths = [
        DepthPolicy::FillMultiple(1),
        DepthPolicy::FillMultiple(2),
        DepthPolicy::FillMultiple(4),
        DepthPolicy::Full,
    ];
    let caps = [8usize, 32];
    let mut out = Vec::with_capacity(depths.len() * caps.len());
    for &depth in &depths {
        for &max_stages in &caps {
            out.push(PipelineOpts { depth, max_stages });
        }
    }
    out
}

/// Evaluates every candidate, in order, with up to `workers` threads
/// (`0` = one per available core). Results are slot-stable: the outcome is
/// byte-identical regardless of thread interleaving.
pub fn search_pipeline(
    cands: &[PipelineOpts],
    eval: &dyn EvaluatePipeline,
    workers: usize,
) -> Vec<Result<PipelineMeasured, EvalError>> {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        workers
    }
    .min(cands.len().max(1));

    if workers <= 1 || cands.len() <= 1 {
        return cands.iter().map(|c| eval.evaluate_pipeline(c)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<PipelineMeasured, EvalError>>>> =
        Mutex::new(vec![None; cands.len()]);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cands.len() {
                    break;
                }
                let r = eval.evaluate_pipeline(&cands[i]);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|s| s.expect("every candidate evaluated"))
        .collect()
}

/// Index of the best successful evaluation (lowest latency; earliest wins
/// ties, so a fixed candidate order gives reproducible winners).
pub fn best_pipeline(results: &[Result<PipelineMeasured, EvalError>]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, r) in results.iter().enumerate() {
        if let Ok(m) = r {
            if best.is_none_or(|(_, s)| m.objective() < s) {
                best = Some((i, m.objective()));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Canonical text form of a depth policy — what [`PipelineRecord`] stores,
/// chosen to round-trip through [`parse_policy`].
pub fn policy_id(policy: DepthPolicy) -> String {
    match policy {
        DepthPolicy::Full => "full".to_string(),
        DepthPolicy::Fraction { num, den } => format!("frac {num}/{den}"),
        DepthPolicy::Fixed(d) => format!("fixed {d}"),
        DepthPolicy::FillMultiple(f) => format!("fill*{f}"),
    }
}

/// Parses the canonical text form back into a policy.
pub fn parse_policy(s: &str) -> Option<DepthPolicy> {
    if s == "full" {
        return Some(DepthPolicy::Full);
    }
    if let Some(f) = s.strip_prefix("fill*") {
        return f.parse().ok().map(DepthPolicy::FillMultiple);
    }
    if let Some(d) = s.strip_prefix("fixed ") {
        return d.parse().ok().map(DepthPolicy::Fixed);
    }
    if let Some(fr) = s.strip_prefix("frac ") {
        let (num, den) = fr.split_once('/')?;
        return Some(DepthPolicy::Fraction {
            num: num.parse().ok()?,
            den: den.parse().ok()?,
        });
    }
    None
}

/// Builds the database record for a search winner.
pub fn record_of(opts: &PipelineOpts, m: &PipelineMeasured, evaluations: usize) -> PipelineRecord {
    PipelineRecord {
        depth_policy: policy_id(opts.depth),
        max_stages: opts.max_stages,
        seconds_per_image: m.seconds_per_image,
        dram_elems_saved: m.dram_elems_saved,
        pipelined_stages: m.pipelined_stages,
        staged_nodes: m.staged_nodes,
        evaluations,
    }
}

impl PipelineRecord {
    /// The planner configuration this record deploys, or `None` when the
    /// stored policy text is from an incompatible future version.
    pub fn opts(&self) -> Option<PipelineOpts> {
        Some(PipelineOpts {
            depth: parse_policy(&self.depth_policy)?,
            max_stages: self.max_stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ids_round_trip() {
        for p in [
            DepthPolicy::Full,
            DepthPolicy::Fraction { num: 1, den: 4 },
            DepthPolicy::Fixed(1024),
            DepthPolicy::FillMultiple(2),
        ] {
            assert_eq!(parse_policy(&policy_id(p)), Some(p), "{p:?}");
        }
        assert_eq!(parse_policy("warp 9"), None);
    }

    #[test]
    fn candidate_grid_covers_the_stall_model_regimes() {
        let cands = pipeline_candidates();
        assert_eq!(cands.len(), 8);
        assert!(cands
            .iter()
            .any(|c| c.depth == DepthPolicy::FillMultiple(2) && c.max_stages == 32));
        assert!(cands.iter().any(|c| c.depth == DepthPolicy::Full));
    }

    struct FakeEval;
    impl EvaluatePipeline for FakeEval {
        fn evaluate_pipeline(&self, o: &PipelineOpts) -> Result<PipelineMeasured, EvalError> {
            // Deeper FIFOs help until `Full`, which "runs out of RAM".
            match o.depth {
                DepthPolicy::Full => Err(EvalError("over budget".to_string())),
                DepthPolicy::FillMultiple(f) => Ok(PipelineMeasured {
                    seconds_per_image: 0.1 / f as f64 + o.max_stages as f64 * 1e-4,
                    dram_elems_saved: 1000,
                    pipelined_stages: o.max_stages.min(12),
                    staged_nodes: 3,
                }),
                _ => unreachable!("grid only emits fill multiples and full"),
            }
        }
    }

    #[test]
    fn search_ranks_candidates_and_survives_failures() {
        let cands = pipeline_candidates();
        let serial = search_pipeline(&cands, &FakeEval, 1);
        let parallel = search_pipeline(&cands, &FakeEval, 4);
        assert_eq!(serial.len(), cands.len());
        // Slot-stable: parallel evaluation gives identical results.
        for (a, b) in serial.iter().zip(&parallel) {
            match (a, b) {
                (Ok(x), Ok(y)) => assert_eq!(x, y),
                (Err(x), Err(y)) => assert_eq!(x, y),
                _ => panic!("serial/parallel divergence"),
            }
        }
        let best = best_pipeline(&serial).unwrap();
        assert_eq!(cands[best].depth, DepthPolicy::FillMultiple(4));
        assert_eq!(cands[best].max_stages, 8);
        let rec = record_of(&cands[best], serial[best].as_ref().unwrap(), cands.len());
        assert_eq!(rec.opts(), Some(cands[best]));
    }

    #[test]
    fn all_failures_give_no_best() {
        struct AlwaysFail;
        impl EvaluatePipeline for AlwaysFail {
            fn evaluate_pipeline(&self, _: &PipelineOpts) -> Result<PipelineMeasured, EvalError> {
                Err(EvalError("nope".to_string()))
            }
        }
        let cands = pipeline_candidates();
        assert_eq!(
            best_pipeline(&search_pipeline(&cands, &AlwaysFail, 2)),
            None
        );
    }
}
