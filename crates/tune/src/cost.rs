//! The analytical cost model guiding the search.
//!
//! Four predictors per candidate — DSPs, RAM blocks, routing pressure,
//! fmax — plus a latency estimate composed from them. Each predictor is
//! seeded from the analytic priors of the AOC synthesis model (one DSP per
//! `F32` MAC lane, quadratic fmax degradation in the DSP fraction, §2.4.5
//! / §6.5) and refined online: every evaluated point's `BitstreamReport`
//! resources and simulated latency re-fit the affine resource laws, the
//! degradation coefficient, and a global multiplicative latency bias by
//! least squares. The model never replaces evaluation — it only *ranks*
//! unevaluated candidates, so only its ordering has to be right.

use crate::candidate::{Candidate, SearchSpace};

/// What one evaluated point teaches the model.
#[derive(Clone, Debug)]
pub struct Observation {
    /// The evaluated candidate.
    pub candidate: Candidate,
    /// Observed full-network seconds per image, when the complete kernel
    /// set synthesized (`None` refines only the resource laws).
    pub seconds: Option<f64>,
    /// DSP blocks of the synthesized 1x1 bitstream.
    pub dsps: u64,
    /// RAM blocks of the synthesized 1x1 bitstream.
    pub ram_blocks: u64,
    /// Achieved clock.
    pub fmax_mhz: f64,
    /// Worst per-kernel routing pressure (bits).
    pub routing_bits: u64,
}

/// Least-squares fit of `y ≈ a + b·x` (falls back to the prior when the
/// points are degenerate).
fn fit_affine(points: &[(f64, f64)], prior: (f64, f64)) -> (f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return prior;
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let det = n * sxx - sx * sx;
    if det.abs() < 1e-9 {
        return prior;
    }
    let b = (n * sxy - sx * sy) / det;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Least-squares slope of `y ≈ b·x` through the origin.
fn fit_slope(points: &[(f64, f64)], prior: f64) -> f64 {
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    if sxx < 1e-12 {
        return prior;
    }
    points.iter().map(|p| p.0 * p.1).sum::<f64>() / sxx
}

/// The cost model: analytic priors refined by observed synthesis reports.
#[derive(Clone, Debug)]
pub struct CostModel {
    total_macs: f64,
    dsp_budget: f64,
    ram_budget: f64,
    routing_capacity: f64,
    /// `dsps ≈ dsp_law.0 + dsp_law.1 · dsp_lanes`.
    dsp_law: (f64, f64),
    /// `ram ≈ ram_law.0 + ram_law.1 · lanes`.
    ram_law: (f64, f64),
    /// `routing_bits ≈ routing_law · (c2vec · c1vec)`.
    routing_law: f64,
    /// Undegraded clock estimate (MHz).
    base_fmax_mhz: f64,
    /// `fmax ≈ base · (1 − alpha · dsp_frac²)` — the §6.5 observation that
    /// large tilings "severely degrade fmax".
    fmax_alpha: f64,
    /// Multiplicative correction from predicted to observed latency.
    latency_bias: f64,
    observations: Vec<Observation>,
}

impl CostModel {
    /// Priors only — no observations yet.
    pub fn new(space: &SearchSpace) -> CostModel {
        CostModel {
            total_macs: space.total_macs() as f64,
            dsp_budget: space.budget.dsp as f64,
            ram_budget: space.budget.ram as f64,
            routing_capacity: space.routing_capacity_bits as f64,
            // Prior: one DSP per F32 MAC lane, no constant overhead.
            dsp_law: (0.0, 1.0),
            // Prior: RAM grows slowly with lanes; start permissive.
            ram_law: (0.0, 0.0),
            routing_law: 0.0,
            base_fmax_mhz: 200.0,
            fmax_alpha: 0.5,
            latency_bias: 1.0,
            observations: Vec::new(),
        }
    }

    /// DSP lanes a candidate consumes (precision packs MACs per DSP).
    fn dsp_lanes(c: &Candidate) -> f64 {
        c.lanes() as f64 / c.precision.macs_per_dsp() as f64
    }

    /// Predicted `(dsps, ram_blocks, routing_bits)`.
    pub fn predict_resources(&self, c: &Candidate) -> (f64, f64, f64) {
        let dsp = self.dsp_law.0 + self.dsp_law.1 * Self::dsp_lanes(c);
        let ram = self.ram_law.0 + self.ram_law.1 * c.lanes() as f64;
        let routing = self.routing_law * (c.tile.1 * c.tile.2) as f64;
        (dsp.max(0.0), ram.max(0.0), routing.max(0.0))
    }

    /// Predicted achieved clock in MHz.
    pub fn predict_fmax_mhz(&self, c: &Candidate) -> f64 {
        let (dsp, _, _) = self.predict_resources(c);
        let frac = (dsp / self.dsp_budget).min(1.5);
        (self.base_fmax_mhz * (1.0 - self.fmax_alpha * frac * frac)).max(20.0)
    }

    /// Predicted full-network seconds per image — the ranking objective.
    pub fn predict_seconds(&self, c: &Candidate) -> f64 {
        let cycles = self.total_macs / c.lanes() as f64;
        self.latency_bias * cycles / (self.predict_fmax_mhz(c) * 1e6)
    }

    /// True when the predictors say the candidate fits the device (used to
    /// prune proposals before spending an evaluation on them).
    pub fn predict_fits(&self, c: &Candidate) -> bool {
        let (dsp, ram, routing) = self.predict_resources(c);
        dsp <= self.dsp_budget && ram <= self.ram_budget && {
            self.routing_law == 0.0 || routing <= self.routing_capacity
        }
    }

    /// Number of points observed so far.
    pub fn observations(&self) -> usize {
        self.observations.len()
    }

    /// Folds one evaluated point in and re-fits every predictor.
    pub fn observe(&mut self, obs: Observation) {
        self.observations.push(obs);

        let dsp_pts: Vec<(f64, f64)> = self
            .observations
            .iter()
            .map(|o| (Self::dsp_lanes(&o.candidate), o.dsps as f64))
            .collect();
        self.dsp_law = fit_affine(&dsp_pts, self.dsp_law);

        let ram_pts: Vec<(f64, f64)> = self
            .observations
            .iter()
            .map(|o| (o.candidate.lanes() as f64, o.ram_blocks as f64))
            .collect();
        self.ram_law = fit_affine(&ram_pts, self.ram_law);

        let routing_pts: Vec<(f64, f64)> = self
            .observations
            .iter()
            .map(|o| {
                (
                    (o.candidate.tile.1 * o.candidate.tile.2) as f64,
                    o.routing_bits as f64,
                )
            })
            .collect();
        self.routing_law = fit_slope(&routing_pts, self.routing_law);

        // The least-degraded observation approximates the undegraded clock.
        self.base_fmax_mhz = self
            .observations
            .iter()
            .map(|o| o.fmax_mhz)
            .fold(self.base_fmax_mhz.min(250.0), f64::max);
        let alpha_pts: Vec<(f64, f64)> = self
            .observations
            .iter()
            .map(|o| {
                let frac = (o.dsps as f64 / self.dsp_budget).min(1.5);
                (frac * frac, 1.0 - o.fmax_mhz / self.base_fmax_mhz)
            })
            .collect();
        self.fmax_alpha = fit_slope(&alpha_pts, self.fmax_alpha).clamp(0.0, 4.0);

        // Geometric-mean ratio of observed to raw-model latency.
        let mut log_sum = 0.0;
        let mut n = 0usize;
        let snapshot: Vec<(Candidate, f64)> = self
            .observations
            .iter()
            .filter_map(|o| o.seconds.map(|s| (o.candidate, s)))
            .collect();
        for (c, observed) in snapshot {
            let raw = (self.total_macs / c.lanes() as f64) / (self.predict_fmax_mhz(&c) * 1e6);
            if raw > 0.0 && observed > 0.0 {
                log_sum += (observed / raw).ln();
                n += 1;
            }
        }
        if n > 0 {
            self.latency_bias = (log_sum / n as f64).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidate::Conv1x1Shape;
    use fpgaccel_device::Resources;

    fn space() -> SearchSpace {
        SearchSpace::new(
            vec![Conv1x1Shape {
                layer: "l".into(),
                w2: 14,
                h2: 14,
                c2: 64,
                c1: 64,
            }],
            Resources {
                alut: 400_000,
                ff: 800_000,
                ram: 2_000,
                dsp: 1_500,
            },
            20_000,
        )
    }

    #[test]
    fn prior_prefers_more_parallelism_until_the_budget() {
        let m = CostModel::new(&space());
        let small = Candidate::new((1, 2, 2));
        let big = Candidate::new((7, 8, 8));
        assert!(m.predict_seconds(&big) < m.predict_seconds(&small));
        assert!(m.predict_fits(&small));
        // 7*64*64 lanes = 28k DSPs >> 1.5k: the prior already prunes it.
        assert!(!m.predict_fits(&Candidate::new((7, 64, 64))));
    }

    #[test]
    fn observations_refit_the_resource_laws() {
        let mut m = CostModel::new(&space());
        // Synthetic ground truth: dsps = 100 + 2*lanes, fmax 220 flat.
        for tile in [(1, 2, 2), (7, 4, 4), (7, 8, 8)] {
            let c = Candidate::new(tile);
            m.observe(Observation {
                candidate: c,
                seconds: Some(1e-3),
                dsps: 100 + 2 * c.lanes(),
                ram_blocks: 50 + c.lanes() / 2,
                fmax_mhz: 220.0,
                routing_bits: 64 * (tile.1 * tile.2) as u64,
            });
        }
        let (dsp, _, routing) = m.predict_resources(&Candidate::new((7, 4, 8)));
        let lanes = 7.0 * 4.0 * 8.0;
        assert!((dsp - (100.0 + 2.0 * lanes)).abs() < 1.0, "dsp law {dsp}");
        assert!((routing - 64.0 * 32.0).abs() < 1.0, "routing law {routing}");
        assert_eq!(m.observations(), 3);
    }

    #[test]
    fn latency_bias_calibrates_to_observed_seconds() {
        let mut m = CostModel::new(&space());
        let c = Candidate::new((7, 4, 4));
        let raw = m.predict_seconds(&c);
        m.observe(Observation {
            candidate: c,
            seconds: Some(raw * 3.0),
            dsps: c.lanes(),
            ram_blocks: 10,
            fmax_mhz: 200.0,
            routing_bits: 100,
        });
        let refined = m.predict_seconds(&c);
        assert!(
            (refined / (raw * 3.0) - 1.0).abs() < 0.35,
            "bias did not calibrate: raw {raw}, refined {refined}"
        );
    }
}
