//! Negative-path tests for the persistent tuning database: truncated and
//! corrupt files, unsupported versions, and concurrent writers racing on
//! the same path. Every failure must be a structured `Err` — never a
//! panic — and a failed load or merge must leave the on-disk file exactly
//! as it was.

use fpgaccel_aoc::Precision;
use fpgaccel_tune::{DbKey, TuneRecord, TuningDb};
use std::path::PathBuf;

fn key(model: &str) -> DbKey {
    DbKey {
        model: model.into(),
        shape_sig: "n13-cafe".into(),
        platform: "Arria10Gx".into(),
        precision: Precision::F32,
    }
}

fn record(tile: (usize, usize, usize), seconds: f64) -> TuneRecord {
    TuneRecord {
        tile,
        seconds_per_image: seconds,
        conv1x1_seconds: seconds * 0.6,
        dsps: 504,
        fmax_mhz: 187.5,
        evaluations: 12,
    }
}

/// Fresh scratch path under the system temp dir (no temp-dir crate: the
/// name carries the test's identity, and the test removes it).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fpgaccel-tune-db-negative");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn truncated_file_is_an_error_and_the_db_recovers_by_resaving() {
    let path = scratch("truncated.json");
    let mut db = TuningDb::new();
    db.insert(key("mobilenet_v1"), record((7, 8, 8), 0.010));
    db.save(&path).unwrap();

    // Chop the file mid-document, as a crashed writer would leave it.
    let full = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    let err = TuningDb::load(&path).expect_err("truncated file must not parse");
    assert!(!err.is_empty(), "error must carry a description");

    // The in-memory database can re-save over the damage and the file is
    // whole again.
    db.save(&path).unwrap();
    assert_eq!(TuningDb::load(&path).unwrap().len(), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_json_and_binary_garbage_are_structured_errors() {
    for (name, bytes) in [
        ("not-json.json", b"this is not json at all".to_vec()),
        ("wrong-shape.json", b"[1, 2, 3]".to_vec()),
        ("binary.json", vec![0u8, 159, 146, 150, 255, 0, 7]),
        ("empty.json", Vec::new()),
    ] {
        let path = scratch(name);
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            TuningDb::load(&path).is_err(),
            "{name}: corrupt file must be an error, not a panic or an empty db"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn records_with_broken_fields_are_rejected_with_the_record_index() {
    let good = "{\"version\": 1, \"records\": [{\"model\": \"m\", \"shape_sig\": \"s\", \
         \"platform\": \"p\", \"precision\": \"F32\", \"tile\": [7, 8, 8], \
         \"seconds_per_image\": 1, \"conv1x1_seconds\": 1, \"dsps\": 1, \
         \"fmax_mhz\": 1, \"evaluations\": 1}]}";
    assert_eq!(TuningDb::from_json(good).unwrap().len(), 1);

    let bad_tile = good.replace("[7, 8, 8]", "[7, 8]");
    let err = TuningDb::from_json(&bad_tile).unwrap_err();
    assert!(err.contains("record 0"), "index missing from: {err}");
    assert!(err.contains("tile"), "field missing from: {err}");

    let bad_precision = good.replace("\"F32\"", "\"F64\"");
    let err = TuningDb::from_json(&bad_precision).unwrap_err();
    assert!(err.contains("precision"), "field missing from: {err}");

    let not_a_number = good.replace("\"seconds_per_image\": 1", "\"seconds_per_image\": \"x\"");
    let err = TuningDb::from_json(&not_a_number).unwrap_err();
    assert!(
        err.contains("seconds_per_image"),
        "field missing from: {err}"
    );
}

#[test]
fn unsupported_version_on_disk_is_rejected_and_the_file_is_left_untouched() {
    let path = scratch("future-version.json");
    let future = "{\n  \"version\": 2,\n  \"records\": []\n}\n";
    std::fs::write(&path, future).unwrap();

    let err = TuningDb::load(&path).expect_err("future version must not load");
    assert!(err.contains("version"), "{err}");

    // A merge-save against the unreadable file must fail rather than
    // clobber a database some newer build owns.
    let mut db = TuningDb::new();
    db.insert(key("mobilenet_v1"), record((7, 8, 8), 0.010));
    assert!(db.save_merged(&path).is_err());
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        future,
        "failed merge must leave the on-disk bytes untouched"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn concurrent_writers_keep_the_best_record_per_key_via_save_merged() {
    let path = scratch("concurrent.json");

    // Two tuners load the same (empty) database, then race their saves.
    let mut fast = TuningDb::new();
    fast.insert(key("mobilenet_v1"), record((7, 16, 8), 0.005));
    let mut slow = TuningDb::new();
    slow.insert(key("mobilenet_v1"), record((7, 4, 4), 0.020));
    slow.insert(key("other_net"), record((7, 8, 8), 0.030));

    fast.save_merged(&path).unwrap();
    // The slow tuner lands second with a *worse* record for the shared
    // key; a plain save would clobber the better one.
    let merged = slow.save_merged(&path).unwrap();

    assert_eq!(merged.len(), 2);
    let on_disk = TuningDb::load(&path).unwrap();
    assert_eq!(
        on_disk.lookup(&key("mobilenet_v1")).unwrap().tile,
        (7, 16, 8),
        "the better concurrent record must survive"
    );
    assert_eq!(on_disk.lookup(&key("other_net")).unwrap().tile, (7, 8, 8));

    // A later, genuinely better record still wins.
    let mut better = TuningDb::new();
    better.insert(key("mobilenet_v1"), record((14, 16, 8), 0.004));
    better.save_merged(&path).unwrap();
    assert_eq!(
        TuningDb::load(&path)
            .unwrap()
            .lookup(&key("mobilenet_v1"))
            .unwrap()
            .tile,
        (14, 16, 8)
    );
    let _ = std::fs::remove_file(&path);
}
