//! Chrome trace-event JSON export.
//!
//! The output is the "JSON object format" of the Trace Event spec: a
//! top-level object with a `traceEvents` array of metadata (`ph:"M"`) and
//! complete (`ph:"X"`) events, timestamps in microseconds. Load it in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.

use crate::tracer::Tracer;

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (finite values only; non-finite
/// values, which have no JSON encoding, collapse to 0).
pub(crate) fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Serializes everything a [`Tracer`] recorded as Chrome trace-event JSON.
///
/// A disabled tracer yields a valid trace with an empty `traceEvents`
/// array.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    let mut entries: Vec<String> = Vec::new();
    tracer.with_inner(|i| {
        for (pid, name) in &i.process_names {
            entries.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ));
        }
        for (pid, tid, name) in &i.thread_names {
            entries.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ));
        }
        for e in &i.events {
            let args = if e.args.is_empty() {
                String::new()
            } else {
                let fields: Vec<String> = e
                    .args
                    .iter()
                    .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
                    .collect();
                format!(",\"args\":{{{}}}", fields.join(","))
            };
            entries.push(format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"dur\":{}{args}}}",
                escape(&e.name),
                escape(&e.cat),
                e.pid,
                e.tid,
                number(e.ts_us),
                number(e.dur_us),
            ));
        }
    });
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn export_round_trips_through_the_json_parser() {
        let t = Tracer::enabled();
        let pid = t.alloc_pid("s10sx");
        t.set_thread_name(pid, 0, "queue 0");
        t.span_args(
            pid,
            0,
            "kernel",
            "conv \"a\"\n",
            1e-6,
            3e-6,
            &[("phase", "run".to_string())],
        );
        let j = Json::parse(&chrome_trace_json(&t)).expect("valid JSON");
        let events = j.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 3); // process_name, thread_name, span
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").unwrap().as_str(), Some("conv \"a\"\n"));
        assert!((span.get("ts").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-9);
        assert!((span.get("dur").unwrap().as_f64().unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(
            span.get("args").unwrap().get("phase").unwrap().as_str(),
            Some("run")
        );
    }

    #[test]
    fn disabled_tracer_exports_an_empty_trace() {
        let j = Json::parse(&chrome_trace_json(&Tracer::disabled())).unwrap();
        assert_eq!(
            j.get("traceEvents").unwrap().as_array().unwrap().len(),
            0,
            "no events expected"
        );
    }

    #[test]
    fn non_finite_numbers_never_reach_the_output() {
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        assert_eq!(number(2.5), "2.5");
    }
}
