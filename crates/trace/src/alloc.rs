//! A counting global allocator: measures allocation pressure on the hot
//! paths without any external dependency.
//!
//! Install it in a *binary* (never a library) with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: fpgaccel_trace::alloc::CountingAlloc = fpgaccel_trace::alloc::CountingAlloc;
//! ```
//!
//! When installed, every heap allocation bumps a pair of process-global
//! relaxed atomics that [`HotPathProfiler`](crate::HotPathProfiler)
//! samples around instrumented operations. When not installed the
//! counters simply stay at zero, so profiler consumers degrade
//! gracefully — allocation columns read 0 instead of lying.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Heap allocations observed since process start (0 unless
/// [`CountingAlloc`] is installed as the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Heap bytes requested since process start (0 unless [`CountingAlloc`]
/// is installed as the global allocator).
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// The system allocator wrapped with relaxed-atomic counters.
pub struct CountingAlloc;

// SAFETY: delegates every operation verbatim to `System`; the counter
// updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_alloc_counts_and_returns_usable_memory() {
        // Drive the wrapper directly (installing a global allocator in a
        // library test would leak into every other test's measurements).
        let a = CountingAlloc;
        let before = (allocation_count(), allocated_bytes());
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            p.write_bytes(0xAB, 64);
            assert_eq!(*p, 0xAB);
            a.dealloc(p, layout);
        }
        assert_eq!(allocation_count(), before.0 + 1);
        assert_eq!(allocated_bytes(), before.1 + 64);
    }
}
