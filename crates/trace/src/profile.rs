//! The hot-path self-profiler: wall-clock and allocation counters around
//! the per-event work of `runtime::Sim` and the dispatch path of
//! `serve::Server`, so the cost of the instrumentation layer itself is a
//! measured quantity rather than folklore.
//!
//! Unlike every other instrument in this crate, the profiler reads
//! `Instant::now` — it measures *host* cost, which is exactly the
//! quantity simulated clocks cannot see. That makes its numbers
//! non-deterministic by design, so they are exported **only** through
//! the [`Registry`] (and diagnostic logging); deterministic artifacts
//! like experiment stdout and `BENCH_core.json` must never embed them.
//!
//! A disabled profiler is a `None` handle: `begin()` is one branch and
//! no clock is read, so production hot paths pay nothing.

use crate::metrics::Registry;
use crate::Tracer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Default)]
struct ProfInner {
    /// Instrumented operations (simulated events / dispatches).
    events: AtomicU64,
    /// Wall nanoseconds inside instrumented operations.
    busy_ns: AtomicU64,
    /// Wall nanoseconds spent recording tracer spans within those
    /// operations — the span-overhead numerator.
    span_ns: AtomicU64,
    /// Heap allocations inside instrumented operations (0 unless the
    /// counting allocator is installed; see [`crate::alloc`]).
    allocs: AtomicU64,
}

/// An in-flight operation probe returned by [`HotPathProfiler::begin`].
pub struct OpProbe {
    start: Instant,
    allocs0: u64,
}

/// Cheap cloneable handle over the hot-path counters. Clones share the
/// same counters, so a profiler threaded through `Sim` and `Server`
/// accumulates one coherent cost picture.
#[derive(Clone, Default)]
pub struct HotPathProfiler {
    inner: Option<Arc<ProfInner>>,
}

impl HotPathProfiler {
    /// A recording profiler.
    pub fn enabled() -> HotPathProfiler {
        HotPathProfiler {
            inner: Some(Arc::new(ProfInner::default())),
        }
    }

    /// A no-op profiler: every call is a single branch.
    pub fn disabled() -> HotPathProfiler {
        HotPathProfiler { inner: None }
    }

    /// Whether costs are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a probe around one hot-path operation (`None` when
    /// disabled — the clock is not even read).
    pub fn begin(&self) -> Option<OpProbe> {
        self.inner.as_ref().map(|_| OpProbe {
            start: Instant::now(),
            allocs0: crate::alloc::allocation_count(),
        })
    }

    /// Closes a probe: one event, its wall time and its allocations.
    pub fn end(&self, probe: Option<OpProbe>) {
        let (Some(i), Some(p)) = (self.inner.as_deref(), probe) else {
            return;
        };
        i.events.fetch_add(1, Ordering::Relaxed);
        i.busy_ns
            .fetch_add(p.start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        i.allocs.fetch_add(
            crate::alloc::allocation_count().saturating_sub(p.allocs0),
            Ordering::Relaxed,
        );
    }

    /// Times `f` — a tracer-recording call inside an instrumented
    /// operation — into the span-overhead counter. When the profiler or
    /// the tracer is disabled, `f` runs unmeasured (no clock read).
    pub fn measure_span_record<R>(&self, tracer: &Tracer, f: impl FnOnce() -> R) -> R {
        match self.inner.as_deref() {
            Some(i) if tracer.is_enabled() => {
                let t0 = Instant::now();
                let r = f();
                i.span_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                r
            }
            _ => f(),
        }
    }

    /// Instrumented operations so far.
    pub fn events(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.events.load(Ordering::Relaxed))
    }

    /// Wall seconds inside instrumented operations so far.
    pub fn busy_seconds(&self) -> f64 {
        self.inner
            .as_deref()
            .map_or(0.0, |i| i.busy_ns.load(Ordering::Relaxed) as f64 * 1e-9)
    }

    /// Wall seconds spent recording tracer spans so far.
    pub fn span_seconds(&self) -> f64 {
        self.inner
            .as_deref()
            .map_or(0.0, |i| i.span_ns.load(Ordering::Relaxed) as f64 * 1e-9)
    }

    /// Heap allocations inside instrumented operations so far.
    pub fn allocations(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| i.allocs.load(Ordering::Relaxed))
    }

    /// Mean wall seconds per instrumented operation (0.0 before the
    /// first — never `NaN`).
    pub fn mean_event_seconds(&self) -> f64 {
        let n = self.events();
        if n == 0 {
            0.0
        } else {
            self.busy_seconds() / n as f64
        }
    }

    /// Operations per wall second (0.0 before any busy time).
    pub fn events_per_second(&self) -> f64 {
        let busy = self.busy_seconds();
        if busy > 0.0 {
            self.events() as f64 / busy
        } else {
            0.0
        }
    }

    /// Fraction of instrumented wall time spent recording tracer spans
    /// (0.0 before any busy time — never `NaN`).
    pub fn span_overhead_fraction(&self) -> f64 {
        let busy = self.busy_seconds();
        if busy > 0.0 {
            (self.span_seconds() / busy).min(1.0)
        } else {
            0.0
        }
    }

    /// Publishes the counters into `registry` under `subsys` (e.g.
    /// `sim`, `serve`), following the repository naming convention.
    /// These values are wall-clock measurements — export them for
    /// dashboards and logs, never into deterministic artifacts.
    pub fn export(&self, registry: &Registry, subsys: &str) {
        if !self.is_enabled() {
            return;
        }
        let name = |suffix: &str| format!("{subsys}_profile_{suffix}");
        registry.counter_add(
            &name("events_total"),
            "Hot-path operations instrumented by the self-profiler.",
            &[],
            self.events() as f64,
        );
        registry.counter_add(
            &name("busy_seconds_total"),
            "Wall seconds inside instrumented hot-path operations.",
            &[],
            self.busy_seconds(),
        );
        registry.counter_add(
            &name("span_record_seconds_total"),
            "Wall seconds spent recording tracer spans inside instrumented operations.",
            &[],
            self.span_seconds(),
        );
        registry.counter_add(
            &name("allocations_total"),
            "Heap allocations inside instrumented operations (0 without the counting allocator).",
            &[],
            self.allocations() as f64,
        );
        registry.gauge_set(
            &name("event_mean_seconds"),
            "Mean wall seconds per instrumented operation.",
            &[],
            self.mean_event_seconds(),
        );
        registry.gauge_set(
            &name("events_per_second"),
            "Instrumented operations per wall second.",
            &[],
            self.events_per_second(),
        );
        registry.gauge_set(
            &name("span_overhead_ratio"),
            "Fraction of instrumented wall time spent recording tracer spans.",
            &[],
            self.span_overhead_fraction(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_costs_one_branch_and_reports_zeros() {
        let p = HotPathProfiler::disabled();
        assert!(p.begin().is_none());
        p.end(None);
        assert_eq!(p.events(), 0);
        assert_eq!(p.mean_event_seconds(), 0.0);
        assert_eq!(p.events_per_second(), 0.0);
        assert_eq!(p.span_overhead_fraction(), 0.0);
        let reg = Registry::new();
        p.export(&reg, "sim");
        assert_eq!(reg.family_count(), 0, "disabled profiler exports nothing");
    }

    #[test]
    fn probes_accumulate_events_and_busy_time() {
        let p = HotPathProfiler::enabled();
        for _ in 0..10 {
            let probe = p.begin();
            std::hint::black_box(vec![0u8; 32]);
            p.end(probe);
        }
        assert_eq!(p.events(), 10);
        assert!(p.busy_seconds() > 0.0);
        assert!(p.mean_event_seconds() > 0.0);
        assert!(p.events_per_second() > 0.0);
    }

    #[test]
    fn span_overhead_is_a_fraction_of_busy_time() {
        let p = HotPathProfiler::enabled();
        let tracer = Tracer::enabled();
        let probe = p.begin();
        p.measure_span_record(&tracer, || {
            tracer.span(1, 0, "kernel", "k", 0.0, 1.0);
        });
        p.end(probe);
        assert!(p.span_seconds() > 0.0);
        let f = p.span_overhead_fraction();
        assert!((0.0..=1.0).contains(&f), "overhead fraction {f}");
        // A disabled tracer is never timed.
        let q = HotPathProfiler::enabled();
        q.measure_span_record(&Tracer::disabled(), || {});
        assert_eq!(q.span_seconds(), 0.0);
    }

    #[test]
    fn export_publishes_conformant_metric_names() {
        let p = HotPathProfiler::enabled();
        let probe = p.begin();
        p.end(probe);
        let reg = Registry::new();
        p.export(&reg, "sim");
        HotPathProfiler::enabled().export(&reg, "serve");
        assert_eq!(reg.value("sim_profile_events_total", &[]), Some(1.0));
        assert_eq!(reg.value("serve_profile_events_total", &[]), Some(0.0));
        assert!(
            reg.audit_names(&["sim_", "serve_"]).is_empty(),
            "profiler metric names must satisfy the audit"
        );
    }
}
