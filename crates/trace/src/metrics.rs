//! A unified metrics registry: counters, gauges and histograms with label
//! sets, rendered as Prometheus text exposition or JSON.
//!
//! The registry is a cheap cloneable handle; every subsystem (serving
//! pool, batcher, deployment cache, device simulations) publishes into the
//! same instance. Families and label sets are stored in sorted maps, so
//! both expositions are deterministic — a rendered registry is a pure
//! function of the metric updates that fed it.

use crate::chrome::{escape, number};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// What a metric family measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing total.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative-bucket distribution.
    Histogram,
}

impl MetricKind {
    fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
struct Hist {
    /// Ascending bucket upper bounds (an implicit `+Inf` bucket follows).
    bounds: Vec<f64>,
    /// Cumulative counts per bound, plus the `+Inf` bucket at the end.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

#[derive(Clone, Debug)]
enum Series {
    Value(f64),
    Histogram(Hist),
}

#[derive(Clone, Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    /// Keyed by the canonical label rendering (sorted by label name).
    series: BTreeMap<String, (Vec<(String, String)>, Series)>,
}

#[derive(Default)]
struct RegistryInner {
    families: BTreeMap<String, Family>,
}

/// A registry of metric families. Clones share the same storage.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

/// Canonical key for a label set: sorted by label name.
fn label_key(labels: &[(&str, &str)]) -> (String, Vec<(String, String)>) {
    let mut sorted: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    sorted.sort();
    let key = sorted
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",");
    (key, sorted)
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn update(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        f: impl FnOnce(&mut Series),
        fresh: impl FnOnce() -> Series,
    ) {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let family = inner.families.entry(name.to_string()).or_insert(Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` re-registered as {kind:?}, was {:?}",
            family.kind
        );
        let (key, sorted) = label_key(labels);
        let (_, series) = family
            .series
            .entry(key)
            .or_insert_with(|| (sorted, fresh()));
        f(series);
    }

    /// Adds `v` (≥ 0) to a counter. Non-finite increments are dropped —
    /// a counter must never become `NaN`/`Inf` (neither has a JSON
    /// encoding, so it would corrupt the exposition).
    pub fn counter_add(&self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        self.update(
            name,
            help,
            MetricKind::Counter,
            labels,
            |s| {
                if let Series::Value(total) = s {
                    if v.is_finite() {
                        *total += v.max(0.0);
                    }
                }
            },
            || Series::Value(0.0),
        );
    }

    /// Increments a counter by one.
    pub fn counter_inc(&self, name: &str, help: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, help, labels, 1.0);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        self.update(
            name,
            help,
            MetricKind::Gauge,
            labels,
            |s| {
                if let Series::Value(val) = s {
                    *val = v;
                }
            },
            || Series::Value(0.0),
        );
    }

    /// Raises a gauge to `v` if `v` exceeds its current value (peak
    /// tracking).
    pub fn gauge_max(&self, name: &str, help: &str, labels: &[(&str, &str)], v: f64) {
        self.update(
            name,
            help,
            MetricKind::Gauge,
            labels,
            |s| {
                if let Series::Value(val) = s {
                    *val = val.max(v);
                }
            },
            || Series::Value(0.0),
        );
    }

    /// Records an observation into a histogram with the given ascending
    /// bucket upper bounds (the `+Inf` bucket is implicit). Non-finite
    /// observations are dropped: one stray `NaN` would otherwise poison
    /// the histogram's `sum` forever and leak into both expositions.
    pub fn histogram_observe(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        v: f64,
    ) {
        if !v.is_finite() {
            return;
        }
        self.update(
            name,
            help,
            MetricKind::Histogram,
            labels,
            |s| {
                if let Series::Histogram(h) = s {
                    for (i, &b) in h.bounds.iter().enumerate() {
                        if v <= b {
                            h.counts[i] += 1;
                        }
                    }
                    *h.counts.last_mut().expect("+Inf bucket") += 1;
                    h.sum += v;
                    h.count += 1;
                }
            },
            || {
                Series::Histogram(Hist {
                    bounds: bounds.to_vec(),
                    counts: vec![0; bounds.len() + 1],
                    sum: 0.0,
                    count: 0,
                })
            },
        );
    }

    /// Reads back a counter or gauge value (`None` for unknown series).
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.lock().expect("registry poisoned");
        let (key, _) = label_key(labels);
        match &inner.families.get(name)?.series.get(&key)?.1 {
            Series::Value(v) => Some(*v),
            Series::Histogram(_) => None,
        }
    }

    /// Reads back a histogram's `(sum, count)`.
    pub fn histogram_sum_count(&self, name: &str, labels: &[(&str, &str)]) -> Option<(f64, u64)> {
        let inner = self.inner.lock().expect("registry poisoned");
        let (key, _) = label_key(labels);
        match &inner.families.get(name)?.series.get(&key)?.1 {
            Series::Histogram(h) => Some((h.sum, h.count)),
            Series::Value(_) => None,
        }
    }

    /// Nearest-rank quantile estimate from a histogram's cumulative
    /// buckets (the matching bucket's upper bound). Returns `None` for an
    /// unknown series — and, crucially, for a histogram with **zero
    /// samples**, where a quantile is undefined; callers render that as
    /// absent rather than letting a `NaN` placeholder propagate.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        let inner = self.inner.lock().expect("registry poisoned");
        let (key, _) = label_key(labels);
        let Series::Histogram(h) = &inner.families.get(name)?.series.get(&key)?.1 else {
            return None;
        };
        if h.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * h.count as f64).ceil().max(1.0) as u64;
        for (i, &c) in h.counts.iter().enumerate() {
            if c >= rank {
                // The +Inf bucket has no finite upper bound; report the
                // mean of the overflow mass instead of infinity.
                return Some(h.bounds.get(i).copied().unwrap_or(h.sum / h.count as f64));
            }
        }
        None
    }

    /// Number of registered families.
    pub fn family_count(&self) -> usize {
        self.inner.lock().expect("registry poisoned").families.len()
    }

    /// Audits every registered family name against the repository's
    /// naming convention and returns one violation string per offence
    /// (empty when fully conformant):
    ///
    /// * names are `snake_case` ASCII (`[a-z][a-z0-9_]*`);
    /// * every name starts with one of the `prefixes` (the owning
    ///   subsystem, e.g. `serve_`);
    /// * counters end in `_total`;
    /// * histograms end in a base-unit suffix (`_seconds`, `_bytes`,
    ///   `_size`);
    /// * gauges end in a unit suffix from a fixed allowlist (`_seconds`,
    ///   `_ratio`, `_state`, ...), so a reader can always tell what a
    ///   sample means without consulting HELP text.
    pub fn audit_names(&self, prefixes: &[&str]) -> Vec<String> {
        const HISTOGRAM_SUFFIXES: &[&str] = &["_seconds", "_bytes", "_size"];
        const GAUGE_SUFFIXES: &[&str] = &[
            "_seconds",
            "_bytes",
            "_ratio",
            "_state",
            "_count",
            "_elements",
            "_requests",
            "_per_second",
            "_seconds_per_image",
            "_mhz",
        ];
        let inner = self.inner.lock().expect("registry poisoned");
        let mut violations = Vec::new();
        for (name, family) in &inner.families {
            let mut chars = name.chars();
            let well_formed = chars.next().is_some_and(|c| c.is_ascii_lowercase())
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
            if !well_formed {
                violations.push(format!("{name}: not snake_case ([a-z][a-z0-9_]*)"));
            }
            if !prefixes.iter().any(|p| name.starts_with(p)) {
                violations.push(format!(
                    "{name}: missing subsystem prefix (one of {})",
                    prefixes.join(", ")
                ));
            }
            match family.kind {
                MetricKind::Counter => {
                    if !name.ends_with("_total") {
                        violations.push(format!("{name}: counter must end in `_total`"));
                    }
                }
                MetricKind::Histogram => {
                    if !HISTOGRAM_SUFFIXES.iter().any(|s| name.ends_with(s)) {
                        violations.push(format!(
                            "{name}: histogram must end in a unit suffix ({})",
                            HISTOGRAM_SUFFIXES.join(", ")
                        ));
                    }
                }
                MetricKind::Gauge => {
                    if name.ends_with("_total") {
                        violations.push(format!("{name}: `_total` is reserved for counters"));
                    } else if !GAUGE_SUFFIXES.iter().any(|s| name.ends_with(s)) {
                        violations.push(format!(
                            "{name}: gauge must end in a unit suffix ({})",
                            GAUGE_SUFFIXES.join(", ")
                        ));
                    }
                }
            }
        }
        violations
    }

    /// Prometheus text exposition (format version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, family) in &inner.families {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.label()));
            for (labels, series) in family.series.values() {
                match series {
                    Series::Value(v) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            number(*v)
                        ));
                    }
                    Series::Histogram(h) => {
                        for (i, &c) in h.counts.iter().enumerate() {
                            let le = h
                                .bounds
                                .get(i)
                                .map(|b| number(*b))
                                .unwrap_or_else(|| "+Inf".to_string());
                            out.push_str(&format!(
                                "{name}_bucket{} {c}\n",
                                render_labels(labels, Some(("le", le)))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, None),
                            number(h.sum)
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, None),
                            h.count
                        ));
                    }
                }
            }
        }
        out
    }

    /// JSON exposition: `{family: {kind, help, series: [{labels, ...}]}}`.
    pub fn render_json(&self) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut families = Vec::new();
        for (name, family) in &inner.families {
            let mut series_out = Vec::new();
            for (labels, series) in family.series.values() {
                let labels_json = labels
                    .iter()
                    .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
                    .collect::<Vec<_>>()
                    .join(",");
                let body = match series {
                    Series::Value(v) => format!("\"value\":{}", number(*v)),
                    Series::Histogram(h) => {
                        let bounds = h.bounds.iter().map(|b| number(*b)).collect::<Vec<_>>();
                        let counts = h.counts.iter().map(u64::to_string).collect::<Vec<_>>();
                        format!(
                            "\"le\":[{}],\"bucket_counts\":[{}],\"sum\":{},\"count\":{}",
                            bounds.join(","),
                            counts.join(","),
                            number(h.sum),
                            h.count
                        )
                    }
                };
                series_out.push(format!("{{\"labels\":{{{labels_json}}},{body}}}"));
            }
            families.push(format!(
                "\"{}\":{{\"kind\":\"{}\",\"help\":\"{}\",\"series\":[{}]}}",
                escape(name),
                family.kind.label(),
                escape(&family.help),
                series_out.join(",")
            ));
        }
        format!("{{{}}}\n", families.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        r.counter_inc("requests_total", "requests", &[("model", "lenet5")]);
        r.counter_add("requests_total", "requests", &[("model", "lenet5")], 2.0);
        r.counter_inc("requests_total", "requests", &[("model", "mobilenet")]);
        assert_eq!(r.value("requests_total", &[("model", "lenet5")]), Some(3.0));
        assert_eq!(
            r.value("requests_total", &[("model", "mobilenet")]),
            Some(1.0)
        );
        assert_eq!(r.value("requests_total", &[("model", "resnet")]), None);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        r.counter_inc("x_total", "x", &[("a", "1"), ("b", "2")]);
        r.counter_inc("x_total", "x", &[("b", "2"), ("a", "1")]);
        assert_eq!(r.value("x_total", &[("a", "1"), ("b", "2")]), Some(2.0));
    }

    #[test]
    fn gauges_set_and_track_peaks() {
        let r = Registry::new();
        r.gauge_set("depth", "queue depth", &[], 4.0);
        r.gauge_set("depth", "queue depth", &[], 2.0);
        assert_eq!(r.value("depth", &[]), Some(2.0));
        r.gauge_max("peak", "peak depth", &[], 5.0);
        r.gauge_max("peak", "peak depth", &[], 3.0);
        assert_eq!(r.value("peak", &[]), Some(5.0));
    }

    #[test]
    fn histograms_fill_cumulative_buckets() {
        let r = Registry::new();
        let bounds = [1e-3, 1e-2, 1e-1];
        for v in [5e-4, 5e-3, 5e-2, 5.0] {
            r.histogram_observe("latency_seconds", "latency", &[], &bounds, v);
        }
        assert_eq!(r.histogram_sum_count("latency_seconds", &[]), {
            Some((5e-4 + 5e-3 + 5e-2 + 5.0, 4))
        });
        let text = r.render_prometheus();
        assert!(text.contains("latency_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.01\"} 2\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.1\"} 3\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("latency_seconds_count 4\n"));
    }

    #[test]
    fn prometheus_text_is_deterministic_and_typed() {
        let r = Registry::new();
        r.gauge_set("b_gauge", "second", &[("dev", "s10sx-0")], 0.5);
        r.counter_inc("a_total", "first", &[]);
        let text = r.render_prometheus();
        // Families render sorted by name regardless of insertion order.
        let a = text.find("a_total").unwrap();
        let b = text.find("b_gauge").unwrap();
        assert!(a < b);
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("# TYPE b_gauge gauge"));
        assert!(text.contains("b_gauge{dev=\"s10sx-0\"} 0.5"));
        assert_eq!(text, r.render_prometheus());
    }

    #[test]
    fn json_exposition_parses_and_round_trips_values() {
        let r = Registry::new();
        r.counter_add("served_total", "served", &[("model", "lenet5")], 7.0);
        r.histogram_observe("lat", "lat", &[], &[1.0], 0.5);
        let j = Json::parse(&r.render_json()).expect("valid JSON");
        let fam = j.get("served_total").unwrap();
        assert_eq!(fam.get("kind").unwrap().as_str(), Some("counter"));
        let series = fam.get("series").unwrap().as_array().unwrap();
        assert_eq!(series[0].get("value").unwrap().as_f64(), Some(7.0));
        let hist = j
            .get("lat")
            .unwrap()
            .get("series")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(hist[0].get("count").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn kind_conflicts_are_programming_errors() {
        let r = Registry::new();
        r.counter_inc("m", "m", &[]);
        r.gauge_set("m", "m", &[], 1.0);
    }

    #[test]
    fn non_finite_observations_never_reach_the_exposition() {
        let r = Registry::new();
        r.histogram_observe("lat_seconds", "lat", &[], &[1.0], f64::NAN);
        r.histogram_observe("lat_seconds", "lat", &[], &[1.0], f64::INFINITY);
        r.histogram_observe("lat_seconds", "lat", &[], &[1.0], 0.5);
        assert_eq!(r.histogram_sum_count("lat_seconds", &[]), Some((0.5, 1)));
        r.counter_add("c_total", "c", &[], f64::NAN);
        r.counter_add("c_total", "c", &[], 2.0);
        assert_eq!(r.value("c_total", &[]), Some(2.0));
        let text = r.render_prometheus();
        let json = r.render_json();
        assert!(!text.contains("NaN") && !text.contains("inf"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        assert!(Json::parse(&json).is_ok());
    }

    #[test]
    fn zero_sample_quantiles_are_none_not_nan() {
        let r = Registry::new();
        assert_eq!(r.histogram_quantile("missing", &[], 0.5), None);
        // Registered but never observed (e.g. only NaN observations).
        r.histogram_observe("lat_seconds", "lat", &[], &[1e-3, 1e-2], f64::NAN);
        assert_eq!(r.histogram_quantile("lat_seconds", &[], 0.5), None);
        for v in [5e-4, 5e-4, 5e-3] {
            r.histogram_observe("lat_seconds", "lat", &[], &[1e-3, 1e-2], v);
        }
        assert_eq!(r.histogram_quantile("lat_seconds", &[], 0.5), Some(1e-3));
        assert_eq!(r.histogram_quantile("lat_seconds", &[], 1.0), Some(1e-2));
        // Mass in the +Inf bucket reports the finite mean, not infinity.
        r.histogram_observe("lat_seconds", "lat", &[], &[1e-3, 1e-2], 5.0);
        let q = r.histogram_quantile("lat_seconds", &[], 1.0).unwrap();
        assert!(q.is_finite());
    }

    #[test]
    fn prometheus_exposition_is_conformant() {
        let r = Registry::new();
        r.counter_inc("serve_requests_total", "Requests \"served\".", &[]);
        r.gauge_set(
            "serve_depth_count",
            "depth",
            &[("model", "le\"net\n5")],
            2.0,
        );
        r.histogram_observe("serve_lat_seconds", "lat", &[], &[1.0], 0.5);
        let text = r.render_prometheus();
        // Every family gets exactly one HELP and one TYPE line, in order,
        // immediately before its samples.
        for family in [
            "serve_requests_total",
            "serve_depth_count",
            "serve_lat_seconds",
        ] {
            let help = text.find(&format!("# HELP {family} ")).unwrap();
            let typ = text.find(&format!("# TYPE {family} ")).unwrap();
            assert!(help < typ, "{family}: HELP must precede TYPE");
            assert_eq!(text.matches(&format!("# HELP {family} ")).count(), 1);
            assert_eq!(text.matches(&format!("# TYPE {family} ")).count(), 1);
        }
        // Label values escape quotes and newlines per text format 0.0.4.
        assert!(text.contains("model=\"le\\\"net\\n5\""));
        // Histograms expose cumulative buckets with le labels, +Inf last,
        // then _sum and _count.
        let b1 = text.find("serve_lat_seconds_bucket{le=\"1\"} 1").unwrap();
        let binf = text
            .find("serve_lat_seconds_bucket{le=\"+Inf\"} 1")
            .unwrap();
        let sum = text.find("serve_lat_seconds_sum 0.5").unwrap();
        let count = text.find("serve_lat_seconds_count 1").unwrap();
        assert!(b1 < binf && binf < sum && sum < count);
        // Rendering is a pure function of the updates: byte-identical.
        assert_eq!(text, r.render_prometheus());
    }

    #[test]
    fn naming_audit_flags_nonconforming_names() {
        let r = Registry::new();
        r.counter_inc("serve_requests_completed_total", "ok", &[]);
        r.gauge_set("serve_device_utilization_ratio", "ok", &[], 0.5);
        r.histogram_observe("serve_request_latency_seconds", "ok", &[], &[1.0], 0.5);
        assert!(r.audit_names(&["serve_"]).is_empty());
        // One offence per rule.
        r.counter_inc("serve_requests_completed", "no _total", &[]);
        r.gauge_set("serve_queue_depth", "no unit", &[], 1.0);
        r.gauge_set("serve_bad_total", "gauge posing as counter", &[], 1.0);
        r.histogram_observe("serve_batch", "no unit", &[], &[1.0], 0.5);
        r.counter_inc("orphan_requests_total", "no subsystem", &[]);
        let violations = r.audit_names(&["serve_"]);
        assert_eq!(violations.len(), 5, "{violations:#?}");
        for needle in [
            "serve_requests_completed:",
            "serve_queue_depth:",
            "serve_bad_total:",
            "serve_batch:",
            "orphan_requests_total:",
        ] {
            assert!(violations.iter().any(|v| v.starts_with(needle)));
        }
    }
}
