//! Span recording over caller-supplied clocks.
//!
//! A [`Tracer`] is a cheap cloneable handle. The enabled variant shares a
//! mutex-guarded event buffer; the disabled variant is a `None` and every
//! recording call returns after one branch — no lock, no allocation — so
//! instrumented hot paths cost nothing in production runs.
//!
//! Two clocks coexist in one trace:
//!
//! * **Simulated seconds** for runtime and serving spans: the caller passes
//!   the discrete-event timestamps directly ([`Tracer::span`]).
//! * **Phase ticks** for compile-time work (model import, scheduling,
//!   codegen, synthesis), where no simulated clock exists: [`Tracer::phase`]
//!   returns an RAII guard and stamps the span from a monotonic counter,
//!   one tick per begin/end. Deliberately not wall time — `Instant::now`
//!   would make traces non-reproducible.

use std::sync::{Arc, Mutex};

/// Process id of the compilation-flow track group.
pub const PID_FLOW: u32 = 1;
/// Process id of the serving-layer track group.
pub const PID_SERVE: u32 = 2;
/// Process id of the auto-tuner track group.
pub const PID_TUNE: u32 = 3;
/// Process id of the fleet-layer (placement/routing) track group.
pub const PID_FLEET: u32 = 4;
/// First process id handed out by [`Tracer::alloc_pid`] (device sims).
const PID_DYNAMIC_BASE: u32 = 16;

/// One recorded span (a Chrome trace-event "complete" event).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Slice label.
    pub name: String,
    /// Category (e.g. `kernel`, `write`, `read`, `phase`, `request`).
    pub cat: String,
    /// Track group (device / subsystem).
    pub pid: u32,
    /// Track within the group (queue / lane).
    pub tid: u32,
    /// Start, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds (0 for instant markers).
    pub dur_us: f64,
    /// Key/value annotations.
    pub args: Vec<(String, String)>,
}

#[derive(Default)]
pub(crate) struct Inner {
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) process_names: Vec<(u32, String)>,
    pub(crate) thread_names: Vec<(u32, u32, String)>,
    next_pid: u32,
    /// The phase clock: advanced one tick per phase begin/end.
    seq: u64,
    /// Open phases (LIFO — closed by [`PhaseGuard`] drop order).
    pending: Vec<(String, String, u32, u64, u32)>,
}

/// A span recorder. Clones share the same buffer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Tracer {
    /// A recording tracer.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Inner {
                next_pid: PID_DYNAMIC_BASE,
                ..Inner::default()
            }))),
        }
    }

    /// A no-op tracer: every call is a single branch, nothing is allocated.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.lock().expect("tracer poisoned")))
    }

    /// Allocates a fresh process id named `name` (0 when disabled).
    pub fn alloc_pid(&self, name: &str) -> u32 {
        self.with_inner(|i| {
            let pid = i.next_pid;
            i.next_pid += 1;
            i.process_names.push((pid, name.to_string()));
            pid
        })
        .unwrap_or(0)
    }

    /// Names a track group (idempotent per pid; last write wins).
    pub fn set_process_name(&self, pid: u32, name: &str) {
        self.with_inner(|i| {
            i.process_names.retain(|(p, _)| *p != pid);
            i.process_names.push((pid, name.to_string()));
        });
    }

    /// Names a track within a group.
    pub fn set_thread_name(&self, pid: u32, tid: u32, name: &str) {
        self.with_inner(|i| {
            i.thread_names.retain(|(p, t, _)| (*p, *t) != (pid, tid));
            i.thread_names.push((pid, tid, name.to_string()));
        });
    }

    /// Records a complete span over simulated seconds.
    pub fn span(&self, pid: u32, tid: u32, cat: &str, name: &str, start_s: f64, end_s: f64) {
        self.span_args(pid, tid, cat, name, start_s, end_s, &[]);
    }

    /// Records a complete span with annotations.
    #[allow(clippy::too_many_arguments)]
    pub fn span_args(
        &self,
        pid: u32,
        tid: u32,
        cat: &str,
        name: &str,
        start_s: f64,
        end_s: f64,
        args: &[(&str, String)],
    ) {
        self.with_inner(|i| {
            i.events.push(TraceEvent {
                name: name.to_string(),
                cat: cat.to_string(),
                pid,
                tid,
                ts_us: start_s * 1e6,
                dur_us: (end_s - start_s).max(0.0) * 1e6,
                args: args
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
        });
    }

    /// Records a zero-duration marker (e.g. a shed decision).
    pub fn instant(&self, pid: u32, tid: u32, cat: &str, name: &str, t_s: f64) {
        self.span(pid, tid, cat, name, t_s, t_s);
    }

    /// Opens a phase span on the compile-flow track, stamped from the
    /// monotonic phase counter. The returned guard closes it on drop.
    pub fn phase(&self, cat: &str, name: &str) -> PhaseGuard {
        self.phase_on(PID_FLOW, cat, name)
    }

    /// Opens a phase span on an explicit track group.
    pub fn phase_on(&self, pid: u32, cat: &str, name: &str) -> PhaseGuard {
        let open = self
            .with_inner(|i| {
                i.seq += 1;
                let depth = i.pending.len() as u32;
                let start = i.seq;
                i.pending
                    .push((cat.to_string(), name.to_string(), pid, start, depth));
            })
            .is_some();
        PhaseGuard {
            tracer: self.clone(),
            open,
        }
    }

    fn end_phase(&self) {
        self.with_inner(|i| {
            i.seq += 1;
            let end = i.seq;
            if let Some((cat, name, pid, start, depth)) = i.pending.pop() {
                i.events.push(TraceEvent {
                    name,
                    cat,
                    pid,
                    tid: depth,
                    ts_us: start as f64,
                    dur_us: (end - start) as f64,
                    args: Vec::new(),
                });
            }
        });
    }

    /// Number of spans recorded so far (0 for a disabled tracer, always).
    pub fn span_count(&self) -> usize {
        self.with_inner(|i| i.events.len()).unwrap_or(0)
    }

    /// Snapshot of the recorded spans.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.with_inner(|i| i.events.clone()).unwrap_or_default()
    }
}

/// RAII guard closing a phase span opened by [`Tracer::phase`].
pub struct PhaseGuard {
    tracer: Tracer,
    open: bool,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if self.open {
            self.tracer.end_phase();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.span(1, 0, "kernel", "k", 0.0, 1.0);
        t.instant(1, 0, "shed", "s", 2.0);
        {
            let _g = t.phase("compile", "import");
        }
        assert!(!t.is_enabled());
        assert_eq!(t.span_count(), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.alloc_pid("dev"), 0);
    }

    #[test]
    fn spans_record_microsecond_timestamps() {
        let t = Tracer::enabled();
        t.span(3, 1, "write", "input", 0.5e-6, 2.5e-6);
        let ev = &t.events()[0];
        assert!((ev.ts_us - 0.5).abs() < 1e-12);
        assert!((ev.dur_us - 2.0).abs() < 1e-12);
        assert_eq!((ev.pid, ev.tid), (3, 1));
    }

    #[test]
    fn phases_nest_by_guard_scope() {
        let t = Tracer::enabled();
        {
            let _outer = t.phase("compile", "flow");
            let _inner = t.phase("compile", "synthesis");
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        // Inner closes first and sits one level deeper.
        assert_eq!(evs[0].name, "synthesis");
        assert_eq!(evs[0].tid, 1);
        assert_eq!(evs[1].name, "flow");
        assert_eq!(evs[1].tid, 0);
        // Containment: outer covers inner on the phase clock.
        assert!(evs[1].ts_us <= evs[0].ts_us);
        assert!(evs[1].ts_us + evs[1].dur_us >= evs[0].ts_us + evs[0].dur_us);
    }

    #[test]
    fn clones_share_the_buffer_and_pids_are_unique() {
        let t = Tracer::enabled();
        let u = t.clone();
        let a = t.alloc_pid("dev-a");
        let b = u.alloc_pid("dev-b");
        assert_ne!(a, b);
        u.span(a, 0, "kernel", "k", 0.0, 1.0);
        assert_eq!(t.span_count(), 1);
    }
}
