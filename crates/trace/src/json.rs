//! A minimal JSON reader — just enough to validate exported traces and
//! recompute profile breakdowns from them, without external dependencies.
//!
//! Supports the full JSON grammar except that numbers are always parsed as
//! `f64` (sufficient for trace timestamps and metric values).

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our traces;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let j = Json::parse(
            r#"{"a": [1, 2.5, -3e-2], "b": {"c": "x\ny", "d": true, "e": null}, "f": []}"#,
        )
        .unwrap();
        let a = j.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].as_f64(), Some(-0.03));
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(j.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(j.get("b").unwrap().get("e"), Some(&Json::Null));
        assert_eq!(j.get("f").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "[1] x", "tru"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let j = Json::parse(r#""Aé""#).unwrap();
        assert_eq!(j.as_str(), Some("Aé"));
    }
}
