//! # fpgaccel-trace
//!
//! End-to-end observability for the compilation flow, the discrete-event
//! runtime and the serving layer — the first-class version of the thesis'
//! diagnostic instrument, the OpenCL event profiler (§5.2 / Figure 6.2).
//!
//! Three pillars, all dependency-free and deterministic:
//!
//! * **[`Tracer`]** — lightweight span recording. Timestamps come from the
//!   caller (the simulated clock for runtime/serving spans, a monotonic
//!   phase counter for compile-time spans), never from `Instant::now`, so
//!   traces of simulated runs reproduce byte for byte. A disabled tracer
//!   is a `None` handle: recording is a branch, no allocation, no lock.
//! * **[`chrome`]** — export of a traced run as Chrome trace-event JSON,
//!   loadable in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!   Every simulated OpenCL event appears with its four profiling
//!   timestamps (queued/submit/start/end) as nested slices on
//!   per-device/per-queue tracks.
//! * **[`metrics`]** — a unified registry of counters, gauges and
//!   histograms with label sets, rendered as Prometheus text exposition or
//!   JSON. The serving layer's `ServiceMetrics`, deployment-cache hit/miss
//!   counters, queue depths, shed counters and per-device utilization all
//!   publish here.
//!
//! The [`json`] module is a minimal JSON reader used to validate exported
//! traces and to recompute profile breakdowns *from the export itself*
//! (the golden test for the Figure 6.2 timeline).
//!
//! Three further instruments make the observability continuous:
//!
//! * **[`flight`]** — an anomaly flight recorder: a bounded ring of
//!   recent operational events that freezes into a JSON [`Postmortem`]
//!   when a timeout, quarantine, rollback or SLO breach fires.
//! * **[`profile`]** — a hot-path self-profiler measuring the *host*
//!   cost (wall time, allocations, span-recording overhead) of the
//!   simulation and dispatch loops, exported through the [`Registry`].
//! * **[`alloc`]** — a counting global allocator feeding the profiler's
//!   allocation columns when installed in a binary.

#![warn(missing_docs)]

pub mod alloc;
pub mod chrome;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod tracer;

pub use chrome::chrome_trace_json;
pub use flight::{FlightEvent, FlightRecorder, Postmortem};
pub use metrics::Registry;
pub use profile::HotPathProfiler;
pub use tracer::{PhaseGuard, TraceEvent, Tracer, PID_FLEET, PID_FLOW, PID_SERVE, PID_TUNE};
