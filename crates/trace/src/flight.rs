//! The anomaly flight recorder: a bounded ring of recent operational
//! events that snapshots into a postmortem when something goes wrong.
//!
//! Serving runs emit thousands of routine events (completions, sheds,
//! health transitions); keeping them all would unbounded-grow a
//! long-lived process, but throwing them away leaves an incident with no
//! context. The [`FlightRecorder`] keeps only the newest `capacity`
//! events — like an aircraft flight recorder's loop tape — and on a
//! *trigger* (batch timeout, device quarantine/loss, rollout rollback,
//! SLO burn-rate breach) freezes the ring into a [`Postmortem`]: the
//! trigger plus the chronological event window leading up to it,
//! serializable as a self-contained JSON file.
//!
//! Like [`Tracer`](crate::Tracer), the recorder is a cheap cloneable
//! handle and the disabled variant costs one branch per call. All
//! timestamps are caller-supplied simulated seconds, so postmortems of
//! simulated incidents reproduce byte for byte.

use crate::chrome::{escape, number};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Postmortems retained per recorder; later triggers only count drops.
/// An incident cascade (a lost device timing out many batches) should
/// keep the first few full snapshots, not OOM on hundreds.
const MAX_POSTMORTEMS: usize = 8;

/// One entry of the flight ring.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// When, simulated seconds.
    pub t_s: f64,
    /// Emitting lane (e.g. `serve`, `rollout`, `slo`).
    pub lane: String,
    /// Event kind (e.g. `completion`, `shed`, `hang-detected`, `lost`).
    pub kind: String,
    /// Who it happened to (a device name, model name, or `req <id>`).
    pub subject: String,
    /// Free-form context.
    pub detail: String,
}

/// A frozen incident snapshot: the trigger plus the event window that
/// led up to it, in recording order.
#[derive(Clone, Debug)]
pub struct Postmortem {
    /// Trigger time, simulated seconds.
    pub t_s: f64,
    /// What fired the snapshot: `timeout`, `quarantine`, `device-lost`,
    /// `rollback` or `slo-breach`.
    pub trigger: String,
    /// The triggering subject (device, model, ...).
    pub subject: String,
    /// Free-form trigger context.
    pub detail: String,
    /// Events that aged out of the ring before the trigger (how much of
    /// the run's history the window does *not* cover).
    pub dropped: u64,
    /// The retained event window, oldest first.
    pub events: Vec<FlightEvent>,
}

impl Postmortem {
    /// Renders the postmortem as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "{{\"t_s\":{},\"lane\":\"{}\",\"kind\":\"{}\",\"subject\":\"{}\",\
                     \"detail\":\"{}\"}}",
                    number(e.t_s),
                    escape(&e.lane),
                    escape(&e.kind),
                    escape(&e.subject),
                    escape(&e.detail)
                )
            })
            .collect();
        format!(
            "{{\n  \"schema_version\": 1,\n  \"trigger\": {{\"t_s\": {}, \"kind\": \"{}\", \
             \"subject\": \"{}\", \"detail\": \"{}\"}},\n  \"dropped\": {},\n  \
             \"events\": [\n    {}\n  ]\n}}\n",
            number(self.t_s),
            escape(&self.trigger),
            escape(&self.subject),
            escape(&self.detail),
            self.dropped,
            events.join(",\n    ")
        )
    }
}

#[derive(Default)]
struct FlightInner {
    capacity: usize,
    ring: VecDeque<FlightEvent>,
    dropped: u64,
    postmortems: Vec<Postmortem>,
    /// Triggers past [`MAX_POSTMORTEMS`] (counted, not snapshotted).
    suppressed: u64,
}

/// A bounded ring of recent operational events with trigger-driven
/// postmortem snapshots. Clones share the same ring.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Mutex<FlightInner>>>,
}

impl FlightRecorder {
    /// A recording flight recorder retaining the newest `capacity` events.
    pub fn enabled(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Some(Arc::new(Mutex::new(FlightInner {
                capacity: capacity.max(1),
                ..FlightInner::default()
            }))),
        }
    }

    /// A no-op recorder: every call is a single branch.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    /// Whether events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut FlightInner) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|m| f(&mut m.lock().expect("flight recorder poisoned")))
    }

    /// Appends an event to the ring, evicting the oldest past capacity.
    pub fn record(&self, t_s: f64, lane: &str, kind: &str, subject: &str, detail: &str) {
        self.with_inner(|i| {
            if i.ring.len() == i.capacity {
                i.ring.pop_front();
                i.dropped += 1;
            }
            i.ring.push_back(FlightEvent {
                t_s,
                lane: lane.to_string(),
                kind: kind.to_string(),
                subject: subject.to_string(),
                detail: detail.to_string(),
            });
        });
    }

    /// Freezes the current ring into a [`Postmortem`]. Returns whether a
    /// snapshot was taken (`false` when disabled or past the per-run
    /// postmortem cap — the trigger is still counted).
    pub fn trigger(&self, t_s: f64, kind: &str, subject: &str, detail: &str) -> bool {
        self.with_inner(|i| {
            if i.postmortems.len() >= MAX_POSTMORTEMS {
                i.suppressed += 1;
                return false;
            }
            i.postmortems.push(Postmortem {
                t_s,
                trigger: kind.to_string(),
                subject: subject.to_string(),
                detail: detail.to_string(),
                dropped: i.dropped,
                events: i.ring.iter().cloned().collect(),
            });
            true
        })
        .unwrap_or(false)
    }

    /// Snapshots taken so far, in trigger order.
    pub fn postmortems(&self) -> Vec<Postmortem> {
        self.with_inner(|i| i.postmortems.clone())
            .unwrap_or_default()
    }

    /// Triggers suppressed past the postmortem cap.
    pub fn suppressed(&self) -> u64 {
        self.with_inner(|i| i.suppressed).unwrap_or(0)
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.with_inner(|i| i.ring.len()).unwrap_or(0)
    }

    /// Whether the ring is empty (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn disabled_recorder_records_and_triggers_nothing() {
        let f = FlightRecorder::disabled();
        f.record(0.0, "serve", "completion", "req 1", "");
        assert!(!f.trigger(1.0, "timeout", "dev", ""));
        assert!(!f.is_enabled());
        assert!(f.is_empty());
        assert!(f.postmortems().is_empty());
    }

    #[test]
    fn ring_keeps_only_the_newest_events_and_counts_drops() {
        let f = FlightRecorder::enabled(3);
        for i in 0..5 {
            f.record(i as f64, "serve", "completion", &format!("req {i}"), "");
        }
        assert_eq!(f.len(), 3);
        f.trigger(5.0, "timeout", "s10sx-0", "batch hung");
        let pm = &f.postmortems()[0];
        assert_eq!(pm.dropped, 2);
        assert_eq!(
            pm.events.iter().map(|e| e.t_s).collect::<Vec<_>>(),
            [2.0, 3.0, 4.0]
        );
        assert_eq!(pm.trigger, "timeout");
    }

    #[test]
    fn postmortems_are_capped_but_triggers_counted() {
        let f = FlightRecorder::enabled(4);
        f.record(0.0, "serve", "shed", "req 0", "");
        for k in 0..(MAX_POSTMORTEMS + 3) {
            f.trigger(k as f64, "timeout", "dev", "");
        }
        assert_eq!(f.postmortems().len(), MAX_POSTMORTEMS);
        assert_eq!(f.suppressed(), 3);
    }

    #[test]
    fn postmortem_json_parses_and_reconstructs_the_timeline() {
        let f = FlightRecorder::enabled(8);
        f.record(0.1, "serve", "completion", "req 1", "device \"s10sx-0\"");
        f.record(0.2, "serve", "hang-detected", "s10sx-0", "watchdog\nfired");
        f.trigger(0.25, "quarantine", "s10sx-0", "reprogramming");
        let j = Json::parse(&f.postmortems()[0].to_json()).expect("valid JSON");
        assert_eq!(j.get("schema_version").unwrap().as_f64(), Some(1.0));
        let trig = j.get("trigger").unwrap();
        assert_eq!(trig.get("kind").unwrap().as_str(), Some("quarantine"));
        let events = j.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        // Chronological order survives the round trip.
        assert!(events[0].get("t_s").unwrap().as_f64() < events[1].get("t_s").unwrap().as_f64());
        assert_eq!(
            events[1].get("kind").unwrap().as_str(),
            Some("hang-detected")
        );
    }

    #[test]
    fn clones_share_the_ring() {
        let f = FlightRecorder::enabled(4);
        let g = f.clone();
        g.record(1.0, "slo", "alert", "lenet5", "");
        assert_eq!(f.len(), 1);
    }
}
