//! Segment planner: groups fusable layers into channel-connected pipeline
//! segments, assigns inter-stage FIFO depths, and charges the whole plan
//! against the device resource budget at once. Over-budget plans degrade
//! gracefully — one node at a time, from the end whose severed channel edge
//! re-introduces the least DRAM traffic — into staged execution.

use fpgaccel_device::{OverBudget, Resources};

/// One kernel node of the (topologically ordered) network chain, as seen by
/// the planner. Callers lower their graph into this shape; the planner never
/// inspects ops directly.
#[derive(Clone, Debug)]
pub struct ChainNode {
    /// Stable graph node id, echoed back in the plan.
    pub id: usize,
    /// Human-readable layer name for fallback reports.
    pub name: String,
    /// Elements the node writes per image (its output feature map).
    pub out_numel: usize,
    /// Input elements the node must observe before emitting its first
    /// output — the consumer lookahead window (e.g. `f` input rows for a
    /// convolution, the whole input for a dense layer).
    pub fill_elems: usize,
    /// Whether this node consumes exactly the previous chain node's output,
    /// that output has no other consumer, and the node has no side inputs
    /// (residual adds). Only then can the edge into it become a channel.
    pub linear: bool,
}

/// How deep to make each inter-stage FIFO relative to the feature map it
/// carries. Deeper channels decouple stages fully but cost on-chip RAM;
/// shallower channels back-pressure the producer and cost throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepthPolicy {
    /// FIFO holds the producer's whole output: full decoupling, maximum RAM.
    Full,
    /// FIFO holds `num/den` of the producer's output (at least one element).
    Fraction {
        /// Numerator of the fraction.
        num: usize,
        /// Denominator of the fraction (must be non-zero).
        den: usize,
    },
    /// Fixed element count regardless of feature-map size.
    Fixed(usize),
    /// FIFO holds `factor` consumer fill windows. `FillMultiple(2)` is the
    /// double-buffered sweet spot of the runtime's stall model: the consumer
    /// drains one window while the producer refills the next, so refill
    /// stalls vanish at minimal RAM. Factors above 2 buy nothing; factor 1
    /// trades stalls for half the FIFO RAM.
    FillMultiple(usize),
}

impl DepthPolicy {
    /// Depth for an edge whose producer emits `produced` elements and whose
    /// consumer needs `fill` elements of lookahead. Never below the fill
    /// window (a starved consumer would deadlock a real FIFO), never above
    /// the full feature map (deeper buys nothing), never zero.
    pub fn depth(self, produced: usize, fill: usize) -> usize {
        let base = produced.max(1);
        let want = match self {
            DepthPolicy::Full => base,
            DepthPolicy::Fraction { num, den } => (base * num / den.max(1)).max(1),
            DepthPolicy::Fixed(d) => d.max(1),
            DepthPolicy::FillMultiple(factor) => (fill * factor.max(1)).max(1),
        };
        want.max(fill).min(base)
    }
}

/// Planner knobs. Both fields are searchable by the auto-tuner: depth trades
/// BRAM for back-pressure stalls, the stage cap trades segment length for
/// fit probability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineOpts {
    /// Inter-stage FIFO sizing rule.
    pub depth: DepthPolicy,
    /// Longest run of layers allowed in one pipelined segment.
    pub max_stages: usize,
}

impl Default for PipelineOpts {
    fn default() -> Self {
        PipelineOpts {
            depth: DepthPolicy::FillMultiple(2),
            max_stages: 32,
        }
    }
}

/// Prices candidate placements. Implemented by the compiler core (which can
/// lower nodes and consult the AOC synthesis model); kept as a trait so this
/// crate stays independent of the core, mirroring `fpgaccel-tune`'s
/// `Evaluate` pattern.
pub trait Estimator {
    /// Resource cost of running node `id` as a dedicated pipeline stage.
    /// `chan_in`/`chan_out` give the FIFO depths of its channel endpoints
    /// (`None` = that side goes through global memory); the cost must
    /// include the FIFO storage for declared channels.
    fn stage_cost(
        &self,
        id: usize,
        chan_in: Option<usize>,
        chan_out: Option<usize>,
    ) -> Result<Resources, String>;

    /// Resource cost of executing the node set `ids` staged — through the
    /// shared pool of parameterized, time-multiplexed kernels. Priced as a
    /// set because staged nodes share grouped kernels.
    fn staged_cost(&self, ids: &[usize]) -> Result<Resources, String>;
}

/// A run of chain nodes that streams through channels as one deployment of
/// concurrently resident stages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Node ids, in execution order.
    pub ids: Vec<usize>,
    /// FIFO depth (elements) of each internal edge; `depths.len() == ids.len() - 1`.
    pub depths: Vec<usize>,
    /// Estimated resource cost of all stages in this segment.
    pub cost: Resources,
}

/// One entry of the final placement, in network order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanItem {
    /// A channel-connected pipelined segment.
    Pipelined(Segment),
    /// A maximal run of consecutive staged (layer-by-layer) node ids.
    Staged(Vec<usize>),
}

/// Why a node (or run of nodes) ended up staged instead of pipelined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The pipeline did not fit the device; carries the structured
    /// per-resource over-budget report at the demotion decision.
    OverBudget(OverBudget),
    /// The node cannot stream (fan-out, side inputs, no streamable
    /// neighbor); the string says which rule failed.
    NotStreamable(String),
}

impl std::fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FallbackReason::OverBudget(over) => write!(f, "{over}"),
            FallbackReason::NotStreamable(why) => write!(f, "not streamable: {why}"),
        }
    }
}

/// A recorded degradation: which nodes fell back to staged execution, why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fallback {
    /// Names of the demoted nodes, in chain order.
    pub nodes: Vec<String>,
    /// The structured reason.
    pub reason: FallbackReason,
}

/// The planner's output: a placement of every chain node, the degradations
/// taken to reach it, and the aggregate accounting the reports and metrics
/// are built from.
#[derive(Clone, Debug)]
pub struct PipelinePlan {
    /// Placement in network order (pipelined segments interleaved with
    /// staged runs).
    pub items: Vec<PlanItem>,
    /// Every degradation from pipelined to staged, with structured reasons.
    pub fallbacks: Vec<Fallback>,
    /// Nodes executing as pipeline stages.
    pub pipelined_nodes: usize,
    /// Nodes executing staged.
    pub staged_nodes: usize,
    /// Total elements crossing inter-stage channels per image.
    pub channel_elems: u64,
    /// DRAM elements eliminated per image (one write + one read per
    /// channel-crossing element).
    pub dram_elems_saved: u64,
    /// Estimated kernel resource cost of the whole placement (pipeline
    /// stages plus the staged kernel pool).
    pub total_cost: Resources,
    /// `Some` if even the fully degraded plan exceeds the budget (the model
    /// itself does not fit the device).
    pub over_budget: Option<OverBudget>,
}

impl PipelinePlan {
    /// Pipelined segments, in network order.
    pub fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.items.iter().filter_map(|it| match it {
            PlanItem::Pipelined(s) => Some(s),
            PlanItem::Staged(_) => None,
        })
    }

    /// Deepest FIFO in the plan, in elements (0 if nothing is pipelined).
    pub fn max_channel_depth(&self) -> usize {
        self.segments()
            .flat_map(|s| s.depths.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

/// Planner failure (an [`Estimator`] refused to price a placement).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineError(pub String);

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline planning failed: {}", self.0)
    }
}

impl std::error::Error for PipelineError {}

/// A candidate segment during planning: a contiguous index range into the
/// chain, remembering which original run it came from for fallback
/// coalescing.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    start: usize,
    end: usize, // exclusive
    origin: usize,
}

fn component(r: Resources, limiting: &str) -> u64 {
    match limiting {
        "BRAM" => r.ram,
        "logic (ALUTs)" => r.alut,
        "registers (FFs)" => r.ff,
        _ => r.dsp,
    }
}

fn edge_depths(chain: &[ChainNode], start: usize, end: usize, policy: DepthPolicy) -> Vec<usize> {
    (start..end.saturating_sub(1))
        .map(|j| policy.depth(chain[j].out_numel, chain[j + 1].fill_elems))
        .collect()
}

fn segment_cost(
    chain: &[ChainNode],
    cand: &Candidate,
    depths: &[usize],
    est: &dyn Estimator,
) -> Result<Resources, PipelineError> {
    let mut total = Resources::default();
    for (k, j) in (cand.start..cand.end).enumerate() {
        let chan_in = if k > 0 { Some(depths[k - 1]) } else { None };
        let chan_out = if k + 1 < cand.end - cand.start {
            Some(depths[k])
        } else {
            None
        };
        let cost = est
            .stage_cost(chain[j].id, chan_in, chan_out)
            .map_err(PipelineError)?;
        total = total.add(cost);
    }
    Ok(total)
}

/// Plan the placement of `chain` onto a device with `budget` resources left
/// for kernels. Returns the placement plus the structured degradation trail;
/// only [`Estimator`] failures are hard errors — an impossible budget yields
/// a fully staged plan with `over_budget` set, not an `Err`.
pub fn plan(
    chain: &[ChainNode],
    est: &dyn Estimator,
    budget: Resources,
    opts: PipelineOpts,
) -> Result<PipelinePlan, PipelineError> {
    let max_stages = opts.max_stages.max(1);

    // Phase 1: maximal streamable runs. An edge j -> j+1 can become a
    // channel iff node j+1 is `linear`; a run breaks wherever it cannot.
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for j in 1..=chain.len() {
        if j == chain.len() || !chain[j].linear {
            runs.push((start, j));
            start = j;
        }
    }

    // Phase 2: chunk runs at the stage cap (balanced so no chunk is starved)
    // and separate pipeline candidates from structurally staged nodes.
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut staged: Vec<usize> = Vec::new(); // chain indices
    let mut fallbacks: Vec<Fallback> = Vec::new();
    for &(s, e) in &runs {
        let len = e - s;
        if len < 2 {
            staged.push(s);
            fallbacks.push(Fallback {
                nodes: vec![chain[s].name.clone()],
                reason: FallbackReason::NotStreamable(
                    "no streamable neighbor (fan-out, side input, or isolated layer)".into(),
                ),
            });
            continue;
        }
        let chunks = len.div_ceil(max_stages);
        let base = len / chunks;
        let extra = len % chunks;
        let mut at = s;
        for c in 0..chunks {
            let take = base + usize::from(c < extra);
            let origin = candidates.len();
            if take < 2 {
                staged.push(at);
                fallbacks.push(Fallback {
                    nodes: vec![chain[at].name.clone()],
                    reason: FallbackReason::NotStreamable(
                        "stage cap left an isolated layer".into(),
                    ),
                });
            } else {
                candidates.push(Candidate {
                    start: at,
                    end: at + take,
                    origin,
                });
            }
            at += take;
        }
    }

    // Phase 3: charge the whole plan at once and demote until it fits. Each
    // demotion peels one node off the worst segment, from the end whose
    // severed channel edge carries the fewest elements (least DRAM
    // re-introduced) — the split point is a plan decision.
    let mut demoted: Vec<(usize, Vec<String>, OverBudget)> = Vec::new(); // per-origin trail
    let mut final_over: Option<OverBudget> = None;
    loop {
        let mut seg_costs: Vec<Resources> = Vec::with_capacity(candidates.len());
        for cand in &candidates {
            let depths = edge_depths(chain, cand.start, cand.end, opts.depth);
            seg_costs.push(segment_cost(chain, cand, &depths, est)?);
        }
        let mut total = Resources::default();
        for c in &seg_costs {
            total = total.add(*c);
        }
        if !staged.is_empty() {
            let ids: Vec<usize> = staged.iter().map(|&j| chain[j].id).collect();
            total = total.add(est.staged_cost(&ids).map_err(PipelineError)?);
        }
        let over = match total.check_fits(budget) {
            Ok(()) => break,
            Err(over) => over,
        };
        if candidates.is_empty() {
            // Fully degraded and still over budget: the model itself does
            // not fit. Report it; synthesis downstream will refuse too.
            final_over = Some(over);
            break;
        }
        // Worst segment by the limiting resource.
        let worst = (0..candidates.len())
            .max_by_key(|&i| component(seg_costs[i], over.limiting))
            .expect("candidates is non-empty");
        let cand = &mut candidates[worst];
        let origin = cand.origin;
        let (idx, emptied) = if cand.end - cand.start <= 2 {
            // Severing the only edge dissolves the segment; demote both.
            (cand.start, true)
        } else {
            let head_edge = chain[cand.start].out_numel;
            let tail_edge = chain[cand.end - 2].out_numel;
            if head_edge < tail_edge {
                let idx = cand.start;
                cand.start += 1;
                (idx, false)
            } else {
                cand.end -= 1;
                (cand.end, false)
            }
        };
        let mut names = vec![chain[idx].name.clone()];
        staged.push(idx);
        if emptied {
            let other = cand.end - 1;
            names.push(chain[other].name.clone());
            staged.push(other);
            candidates.remove(worst);
        }
        match demoted.iter_mut().find(|(o, ..)| *o == origin) {
            Some((_, trail, _)) => trail.extend(names),
            None => demoted.push((origin, names, over)),
        }
    }

    // Phase 3b: the greedy demotion loop can overshoot — the step that
    // crossed back under the budget line may have dissolved a whole segment,
    // or ping-ponged between segments and stopped with headroom to spare.
    // Grow surviving segments back one node at a time while the whole plan
    // still fits; every regrown node is struck from the fallback trail.
    if final_over.is_none() {
        let total_of =
            |candidates: &[Candidate], staged: &[usize]| -> Result<Resources, PipelineError> {
                let mut total = Resources::default();
                for cand in candidates {
                    let depths = edge_depths(chain, cand.start, cand.end, opts.depth);
                    total = total.add(segment_cost(chain, cand, &depths, est)?);
                }
                if !staged.is_empty() {
                    let ids: Vec<usize> = staged.iter().map(|&j| chain[j].id).collect();
                    total = total.add(est.staged_cost(&ids).map_err(PipelineError)?);
                }
                Ok(total)
            };
        let mut grew = true;
        while grew {
            grew = false;
            for i in 0..candidates.len() {
                for head in [false, true] {
                    let cand = candidates[i];
                    if cand.end - cand.start >= max_stages {
                        continue;
                    }
                    // The candidate edge must be channelizable and the node
                    // on its far side currently staged (not in a segment).
                    let idx = if head {
                        match cand.start.checked_sub(1) {
                            Some(idx) if chain[cand.start].linear => idx,
                            _ => continue,
                        }
                    } else {
                        let idx = cand.end;
                        if idx >= chain.len() || !chain[idx].linear {
                            continue;
                        }
                        idx
                    };
                    if !staged.contains(&idx) {
                        continue;
                    }
                    let mut trial = candidates.clone();
                    if head {
                        trial[i].start -= 1;
                    } else {
                        trial[i].end += 1;
                    }
                    let trial_staged: Vec<usize> =
                        staged.iter().copied().filter(|&j| j != idx).collect();
                    if total_of(&trial, &trial_staged)?.check_fits(budget).is_ok() {
                        candidates = trial;
                        staged = trial_staged;
                        let name = &chain[idx].name;
                        for (_, trail, _) in &mut demoted {
                            trail.retain(|n| n != name);
                        }
                        demoted.retain(|(_, trail, _)| !trail.is_empty());
                        fallbacks.retain(|f| !(f.nodes.len() == 1 && f.nodes[0] == *name));
                        grew = true;
                    }
                }
            }
        }
    }

    // Coalesce the demotion trail into one structured fallback per segment
    // that shrank, carrying the over-budget report that triggered it.
    for (_, nodes, over) in demoted {
        fallbacks.push(Fallback {
            nodes,
            reason: FallbackReason::OverBudget(over),
        });
    }

    // Phase 4: materialize the placement in network order.
    let mut placement: Vec<Option<usize>> = vec![None; chain.len()]; // index into candidates
    for (i, cand) in candidates.iter().enumerate() {
        placement[cand.start..cand.end].fill(Some(i));
    }
    let mut items: Vec<PlanItem> = Vec::new();
    let mut channel_elems = 0u64;
    let mut total_cost = Resources::default();
    let mut pipelined_nodes = 0usize;
    let mut j = 0usize;
    while j < chain.len() {
        match placement[j] {
            Some(i) => {
                let cand = &candidates[i];
                let depths = edge_depths(chain, cand.start, cand.end, opts.depth);
                let cost = segment_cost(chain, cand, &depths, est)?;
                channel_elems += chain[cand.start..cand.end - 1]
                    .iter()
                    .map(|n| n.out_numel as u64)
                    .sum::<u64>();
                pipelined_nodes += cand.end - cand.start;
                total_cost = total_cost.add(cost);
                items.push(PlanItem::Pipelined(Segment {
                    ids: (cand.start..cand.end).map(|k| chain[k].id).collect(),
                    depths,
                    cost,
                }));
                j = cand.end;
            }
            None => {
                let from = j;
                while j < chain.len() && placement[j].is_none() {
                    j += 1;
                }
                items.push(PlanItem::Staged((from..j).map(|k| chain[k].id).collect()));
            }
        }
    }
    let staged_nodes = chain.len() - pipelined_nodes;
    if staged_nodes > 0 {
        let ids: Vec<usize> = (0..chain.len())
            .filter(|&k| placement[k].is_none())
            .map(|k| chain[k].id)
            .collect();
        total_cost = total_cost.add(est.staged_cost(&ids).map_err(PipelineError)?);
    }

    Ok(PipelinePlan {
        items,
        fallbacks,
        pipelined_nodes,
        staged_nodes,
        channel_elems,
        dram_elems_saved: 2 * channel_elems,
        total_cost,
        over_budget: final_over,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mock estimator: every stage costs `stage` (plus 1 RAM block per 512
    /// elements of declared FIFO depth); the staged pool costs `pool` plus
    /// `per_staged` per node.
    struct Mock {
        stage: Resources,
        pool: Resources,
        per_staged: Resources,
    }

    impl Estimator for Mock {
        fn stage_cost(
            &self,
            _id: usize,
            chan_in: Option<usize>,
            chan_out: Option<usize>,
        ) -> Result<Resources, String> {
            let fifo = (chan_in.unwrap_or(0) + chan_out.unwrap_or(0)) as u64;
            Ok(self.stage.add(Resources {
                ram: fifo.div_ceil(512),
                ..Default::default()
            }))
        }

        fn staged_cost(&self, ids: &[usize]) -> Result<Resources, String> {
            Ok(self.pool.add(self.per_staged.scale(ids.len() as u64)))
        }
    }

    fn mock() -> Mock {
        Mock {
            stage: Resources {
                alut: 100,
                ff: 200,
                ram: 4,
                dsp: 8,
            },
            pool: Resources {
                alut: 50,
                ff: 100,
                ram: 2,
                dsp: 4,
            },
            per_staged: Resources {
                alut: 10,
                ff: 20,
                ram: 1,
                dsp: 1,
            },
        }
    }

    fn node(id: usize, out: usize, fill: usize, linear: bool) -> ChainNode {
        ChainNode {
            id,
            name: format!("n{id}"),
            out_numel: out,
            fill_elems: fill,
            linear,
        }
    }

    fn big() -> Resources {
        Resources {
            alut: 1 << 20,
            ff: 1 << 21,
            ram: 1 << 16,
            dsp: 1 << 14,
        }
    }

    #[test]
    fn whole_chain_becomes_one_segment_under_a_generous_budget() {
        let chain = vec![
            node(0, 1024, 96, true),
            node(1, 512, 64, true),
            node(2, 10, 512, true),
        ];
        let plan = plan(&chain, &mock(), big(), PipelineOpts::default()).unwrap();
        assert_eq!(plan.items.len(), 1);
        assert_eq!(plan.pipelined_nodes, 3);
        assert_eq!(plan.staged_nodes, 0);
        assert!(plan.fallbacks.is_empty());
        assert!(plan.over_budget.is_none());
        match &plan.items[0] {
            PlanItem::Pipelined(seg) => {
                assert_eq!(seg.ids, vec![0, 1, 2]);
                // Edge 0: two 64-element fill windows of node 1.
                // Edge 1: two 512-element windows, capped at the 512
                // elements the producer ever emits.
                assert_eq!(seg.depths, vec![128, 512]);
            }
            other => panic!("expected a pipelined segment, got {other:?}"),
        }
        assert_eq!(plan.channel_elems, 1024 + 512);
        assert_eq!(plan.dram_elems_saved, 2 * (1024 + 512));
    }

    #[test]
    fn depth_policy_respects_fill_floor_and_full_cap() {
        assert_eq!(
            DepthPolicy::Fraction { num: 1, den: 8 }.depth(1024, 96),
            128
        );
        assert_eq!(
            DepthPolicy::Fraction { num: 1, den: 8 }.depth(1024, 300),
            300
        );
        assert_eq!(DepthPolicy::Fixed(4096).depth(1024, 96), 1024);
        assert_eq!(DepthPolicy::Full.depth(1024, 96), 1024);
        assert_eq!(DepthPolicy::Fixed(0).depth(8, 0), 1);
        assert_eq!(DepthPolicy::FillMultiple(2).depth(1024, 96), 192);
        assert_eq!(DepthPolicy::FillMultiple(2).depth(1024, 700), 1024);
        assert_eq!(DepthPolicy::FillMultiple(0).depth(1024, 96), 96);
    }

    #[test]
    fn non_streamable_node_splits_the_chain() {
        // Node 2 has a side input (residual): the run breaks there, but the
        // downstream pair can still stream between themselves.
        let chain = vec![
            node(0, 256, 32, true),
            node(1, 256, 32, true),
            node(2, 256, 32, false),
            node(3, 128, 32, true),
        ];
        let plan = plan(&chain, &mock(), big(), PipelineOpts::default()).unwrap();
        let segs: Vec<_> = plan.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].ids, vec![0, 1]);
        assert_eq!(segs[1].ids, vec![2, 3]);
        assert_eq!(plan.staged_nodes, 0);
    }

    #[test]
    fn stage_cap_chunks_long_runs_evenly() {
        let chain: Vec<_> = (0..6).map(|i| node(i, 256, 32, true)).collect();
        let opts = PipelineOpts {
            max_stages: 4,
            ..Default::default()
        };
        let plan = plan(&chain, &mock(), big(), opts).unwrap();
        let sizes: Vec<_> = plan.segments().map(|s| s.ids.len()).collect();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn over_budget_demotes_the_cheaper_dram_edge_first() {
        // Four stages cost 32 DSPs; budget allows 3 stages + the staged
        // pool. The tail edge (node 2 -> 3) carries fewer elements than the
        // head edge (node 0 -> 1), so node 3 is demoted.
        let chain = vec![
            node(0, 4096, 32, true),
            node(1, 2048, 32, true),
            node(2, 64, 32, true),
            node(3, 10, 64, true),
        ];
        let budget = Resources {
            alut: 1 << 20,
            ff: 1 << 21,
            ram: 1 << 16,
            dsp: 30,
        };
        let plan = plan(&chain, &mock(), budget, PipelineOpts::default()).unwrap();
        assert_eq!(plan.pipelined_nodes, 3);
        assert_eq!(plan.staged_nodes, 1);
        let segs: Vec<_> = plan.segments().collect();
        assert_eq!(segs[0].ids, vec![0, 1, 2]);
        assert_eq!(plan.fallbacks.len(), 1);
        assert_eq!(plan.fallbacks[0].nodes, vec!["n3".to_string()]);
        match &plan.fallbacks[0].reason {
            FallbackReason::OverBudget(over) => {
                assert_eq!(over.limiting, "DSP blocks");
                assert!(over.requested.dsp > over.available.dsp);
            }
            other => panic!("expected an over-budget reason, got {other:?}"),
        }
        assert!(plan.over_budget.is_none());
    }

    #[test]
    fn hopeless_budget_degrades_to_fully_staged_with_a_report() {
        let chain: Vec<_> = (0..4).map(|i| node(i, 256, 32, true)).collect();
        let budget = Resources {
            alut: 60,
            ff: 120,
            ram: 3,
            dsp: 2,
        };
        let plan = plan(&chain, &mock(), budget, PipelineOpts::default()).unwrap();
        assert_eq!(plan.pipelined_nodes, 0);
        assert_eq!(plan.staged_nodes, 4);
        assert_eq!(plan.items.len(), 1);
        assert!(matches!(plan.items[0], PlanItem::Staged(ref ids) if ids.len() == 4));
        assert!(plan.over_budget.is_some());
        assert!(!plan.fallbacks.is_empty());
    }

    #[test]
    fn channel_accounting_covers_only_internal_edges() {
        let chain = vec![
            node(0, 100, 8, true),
            node(1, 50, 8, true),
            node(2, 25, 8, false), // breaks the run
            node(3, 12, 8, true),
        ];
        let plan = plan(&chain, &mock(), big(), PipelineOpts::default()).unwrap();
        // Internal edges: 0->1 (100 elems) and 2->3 (25 elems).
        assert_eq!(plan.channel_elems, 125);
        // Edge 0->1: two 8-element fill windows of node 1.
        assert_eq!(plan.max_channel_depth(), 16);
    }
}
