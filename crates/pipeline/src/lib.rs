//! # fpgaccel-pipeline
//!
//! Streaming dataflow planner (§4.6–§4.7 taken whole-network): instead of
//! launching one kernel per layer through global memory, a *pipeline plan*
//! maps a maximal fused segment of the network onto a single deployment of
//! channel-connected autorun stages. Feature maps cross between stages
//! through on-chip FIFOs — the DRAM round trip between adjacent layers
//! disappears — at the price of every stage's logic being resident on the
//! device at once.
//!
//! The planner therefore answers a *budget* question: which contiguous runs
//! of layers stream through channels, at what FIFO depths, and which layers
//! degrade gracefully to staged (layer-by-layer) execution because the whole
//! pipeline does not fit the Table 6.2 resource inventory. The split point
//! is a plan decision: when a segment must shrink, the node whose severed
//! channel edge re-introduces the *least* DRAM traffic is demoted first.
//!
//! The crate is deliberately independent of the compiler core: callers
//! describe the network as a [`ChainNode`] list and price candidate
//! placements through the [`Estimator`] trait, mirroring how `fpgaccel-tune`
//! stays decoupled through its `Evaluate` trait.

#![warn(missing_docs)]

pub mod metrics;
pub mod planner;

pub use metrics::record_plan_metrics;
pub use planner::{
    plan, ChainNode, DepthPolicy, Estimator, Fallback, FallbackReason, PipelineError, PipelineOpts,
    PipelinePlan, PlanItem, Segment,
};
