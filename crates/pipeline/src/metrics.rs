//! `pipeline_*` metrics: every plan records its shape and degradations into
//! the shared [`fpgaccel_trace::metrics::Registry`], so serving dashboards
//! and experiments see pipeline placement decisions next to latency.

use fpgaccel_trace::metrics::Registry;

use crate::planner::{PipelinePlan, PlanItem};

/// Record the placement decisions of `plan` for `model` into `reg`.
///
/// Counters accumulate across plans (one deployment may be planned several
/// times during a sweep); gauges hold the most recent plan's shape.
pub fn record_plan_metrics(reg: &Registry, model: &str, plan: &PipelinePlan) {
    let labels = &[("model", model)][..];
    let segments = plan.segments().count() as f64;
    let staged_runs = plan
        .items
        .iter()
        .filter(|it| matches!(it, PlanItem::Staged(_)))
        .count() as f64;
    reg.counter_add(
        "pipeline_segments_total",
        "Channel-connected pipelined segments planned",
        labels,
        segments,
    );
    reg.counter_add(
        "pipeline_stages_total",
        "Kernel nodes placed as pipeline stages",
        labels,
        plan.pipelined_nodes as f64,
    );
    reg.counter_add(
        "pipeline_staged_nodes_total",
        "Kernel nodes degraded to staged (layer-by-layer) execution",
        labels,
        plan.staged_nodes as f64,
    );
    reg.counter_add(
        "pipeline_fallbacks_total",
        "Degradations from pipelined to staged placement, any reason",
        labels,
        plan.fallbacks.len() as f64,
    );
    reg.gauge_set(
        "pipeline_staged_runs_count",
        "Staged runs interleaved with pipelined segments in the last plan",
        labels,
        staged_runs,
    );
    reg.gauge_set(
        "pipeline_channel_elements",
        "Elements crossing inter-stage channels per image in the last plan",
        labels,
        plan.channel_elems as f64,
    );
    reg.gauge_set(
        "pipeline_dram_saved_elements",
        "DRAM elements eliminated per image by the last plan",
        labels,
        plan.dram_elems_saved as f64,
    );
    reg.gauge_set(
        "pipeline_max_channel_depth_elements",
        "Deepest inter-stage FIFO (elements) in the last plan",
        labels,
        plan.max_channel_depth() as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Fallback, FallbackReason, PipelinePlan, PlanItem, Segment};
    use fpgaccel_device::Resources;

    #[test]
    fn plans_land_in_the_registry() {
        let plan = PipelinePlan {
            items: vec![
                PlanItem::Pipelined(Segment {
                    ids: vec![0, 1],
                    depths: vec![128],
                    cost: Resources::default(),
                }),
                PlanItem::Staged(vec![2]),
            ],
            fallbacks: vec![Fallback {
                nodes: vec!["n2".into()],
                reason: FallbackReason::NotStreamable("fan-out".into()),
            }],
            pipelined_nodes: 2,
            staged_nodes: 1,
            channel_elems: 1024,
            dram_elems_saved: 2048,
            total_cost: Resources::default(),
            over_budget: None,
        };
        let reg = Registry::new();
        record_plan_metrics(&reg, "lenet", &plan);
        let labels = &[("model", "lenet")][..];
        assert_eq!(reg.value("pipeline_segments_total", labels), Some(1.0));
        assert_eq!(reg.value("pipeline_stages_total", labels), Some(2.0));
        assert_eq!(reg.value("pipeline_staged_nodes_total", labels), Some(1.0));
        assert_eq!(reg.value("pipeline_fallbacks_total", labels), Some(1.0));
        assert_eq!(reg.value("pipeline_channel_elements", labels), Some(1024.0));
        assert_eq!(
            reg.value("pipeline_max_channel_depth_elements", labels),
            Some(128.0)
        );
    }
}
