//! Guard for the quantized-inference flow: the `quant` experiment report —
//! per-rung differential verdicts, the per-layer worst-case-error table,
//! the precision ladder, and the mixed-precision search — must stay
//! byte-identical to the committed reference in `docs/quant_golden.txt`.
//! Seeded calibration makes every number deterministic; any drift in the
//! quantizer, the tolerance model, or the narrow-MAC kernels shows up here
//! as a diff.

#[test]
fn quant_report_matches_the_golden_output_byte_for_byte() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/quant_golden.txt");
    let golden = std::fs::read_to_string(golden_path).expect("golden output present");
    // `repro quant` prints the report with one trailing println newline.
    let actual = format!("{}\n", fpgaccel_bench::quant::quant());
    assert_eq!(
        actual, golden,
        "the quant report diverged from docs/quant_golden.txt — quantization grids, \
         tolerances, and the mixed-precision search must stay deterministic"
    );
}
