//! Guard for the `dse` → tuner-enumerative-mode refactor: the Table 6.6 /
//! Figure 6.3 report must stay byte-identical to the committed reference
//! output in `docs/repro_output.txt`.

#[test]
fn fig6_3_report_matches_the_golden_output_byte_for_byte() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/repro_output.txt");
    let golden = std::fs::read_to_string(golden_path).expect("golden output present");
    let start = golden
        .find("### Table 6.6")
        .expect("golden file contains the Table 6.6 section");
    let end = start
        + golden[start..]
            .find("\n### Table 6.7")
            .expect("golden file contains the following section");
    let expected = golden[start..end].trim_end_matches('\n');
    let actual = fpgaccel_bench::experiments::fig6_3();
    assert_eq!(
        actual.trim_end_matches('\n'),
        expected,
        "fig6_3 diverged from docs/repro_output.txt after the DSE refactor"
    );
}
