//! Pins the committed bench baseline `BENCH_core.json`: regenerating the
//! record on this source tree must reproduce it byte for byte, its schema
//! must stay stable, and the comparator must pass the committed baseline
//! while flagging a perturbed one.
//!
//! If a performance-relevant change legitimately moves a metric, rerun
//! `FPGACCEL_BENCH_OUT=BENCH_core.json repro bench` from the repository
//! root and commit the refreshed baseline alongside the change.

use fpgaccel_obs::{collect, compare, BenchRecord, SCHEMA_VERSION};
use fpgaccel_trace::json::Json;

fn committed() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    std::fs::read_to_string(path).expect("committed BENCH_core.json exists at the repo root")
}

#[test]
fn regenerated_record_is_byte_identical_to_the_committed_baseline() {
    assert_eq!(
        collect().to_json(),
        committed(),
        "the bench matrix drifted from BENCH_core.json — if the change is \
         intentional, regenerate and commit the baseline"
    );
}

#[test]
fn committed_baseline_schema_is_pinned() {
    let j = Json::parse(&committed()).expect("baseline parses as JSON");
    assert_eq!(
        j.get("schema_version").and_then(|v| v.as_f64()),
        Some(SCHEMA_VERSION as f64)
    );
    assert_eq!(j.get("workload").and_then(|v| v.as_str()), Some("core-v4"));
    let metrics = j
        .get("metrics")
        .and_then(|v| v.as_array())
        .expect("baseline has a metrics array");
    assert!(!metrics.is_empty());
    for m in metrics {
        for key in ["id", "unit", "direction"] {
            assert!(
                m.get(key).and_then(|v| v.as_str()).is_some(),
                "metric missing string field {key}"
            );
        }
        for key in ["value", "tolerance"] {
            assert!(
                m.get(key).and_then(|v| v.as_f64()).is_some(),
                "metric missing numeric field {key}"
            );
        }
    }
}

#[test]
fn comparator_passes_the_committed_baseline_and_flags_a_perturbed_one() {
    let base = BenchRecord::parse(&committed()).expect("baseline record parses");
    let current = collect();
    let clean = compare(&base, &current);
    assert!(
        clean.pass(),
        "fresh record must pass against the committed baseline: {:?} regressions, {:?} missing",
        clean.regressions().len(),
        clean.missing
    );

    // Perturb the current record the way a real regression would look:
    // p99 degrades 50% and a pipeline speedup collapses.
    let mut perturbed = current.clone();
    for m in &mut perturbed.metrics {
        match m.id.as_str() {
            "serve.load1x.p99_ms" => m.value *= 1.5,
            "pipeline.LeNet-5.S10SX.speedup" => m.value *= 0.5,
            _ => {}
        }
    }
    let v = compare(&base, &perturbed);
    assert!(!v.pass());
    let ids: Vec<&str> = v.regressions().iter().map(|d| d.id.as_str()).collect();
    assert!(ids.contains(&"serve.load1x.p99_ms"));
    assert!(ids.contains(&"pipeline.LeNet-5.S10SX.speedup"));

    // Dropping a metric entirely is a coverage loss, not a silent pass.
    let mut shrunk = current.clone();
    shrunk.metrics.retain(|m| m.id != "serve.load2x.shed_rate");
    let v = compare(&base, &shrunk);
    assert!(!v.pass());
    assert_eq!(v.missing, ["serve.load2x.shed_rate"]);
}
