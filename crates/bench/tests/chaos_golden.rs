//! Guard for the rollout refactor of the serving stack: the `chaos`
//! experiment report (committed fault schedule, default sweep budget)
//! must stay byte-identical to the committed reference in
//! `docs/chaos_golden.txt`. Rollout machinery only runs when a rollout
//! is scheduled, so the chaos report must not move.

#[test]
fn chaos_report_matches_the_golden_output_byte_for_byte() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/chaos_golden.txt");
    let golden = std::fs::read_to_string(golden_path).expect("golden output present");
    // `repro chaos` prints the report with one trailing println newline.
    let actual = format!("{}\n", fpgaccel_bench::chaos::chaos());
    assert_eq!(
        actual, golden,
        "the chaos report diverged from docs/chaos_golden.txt — the rollout layer must be \
         inert when no rollout is scheduled"
    );
}
