//! Guard for the fault-injection refactor of the serving stack: with no
//! injector installed, the `serve` experiment report must stay
//! byte-identical to the committed reference in `docs/serve_golden.txt`
//! (captured before the fault layer existed).

#[test]
fn serve_report_matches_the_golden_output_byte_for_byte() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/serve_golden.txt");
    let golden = std::fs::read_to_string(golden_path).expect("golden output present");
    // `repro serve` prints the report with one trailing println newline.
    let actual = format!("{}\n", fpgaccel_bench::serving::serve());
    assert_eq!(
        actual, golden,
        "the serve report diverged from docs/serve_golden.txt — the fault layer must be \
         a byte-level no-op when disabled"
    );
}
