//! Guard for the streaming dataflow executor: the `pipeline` experiment
//! report (planner placement decisions, tuned FIFO policies, over-budget
//! degradations, throughput table) must stay byte-identical to the
//! committed reference in `docs/pipeline_golden.txt`. Any change to the
//! segment planner, the channel depth tuner or the AOC resource model
//! shows up here first.

#[test]
fn pipeline_report_matches_the_golden_output_byte_for_byte() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../docs/pipeline_golden.txt"
    );
    let golden = std::fs::read_to_string(golden_path).expect("golden output present");
    // `repro pipeline` prints the report with one trailing println newline.
    let actual = format!("{}\n", fpgaccel_bench::pipeline::pipeline());
    assert_eq!(
        actual, golden,
        "the pipeline report diverged from docs/pipeline_golden.txt — regenerate it with \
         `cargo run --release -p fpgaccel-bench --bin repro -- pipeline` if the planner \
         change is intentional"
    );
}
