//! Golden tests for the timeline export: the Chrome trace written for
//! Figure 6.2 must be valid JSON, and a `Breakdown` recomputed from the
//! exported baseline-LeNet timeline must reproduce the live run — the
//! overhead-dominated shape of §6.3.1 included.

use fpgaccel_bench::tracing;
use fpgaccel_core::OptimizationConfig;
use fpgaccel_device::FpgaPlatform;
use fpgaccel_runtime::Breakdown;
use fpgaccel_trace::json::Json;

#[test]
fn exported_baseline_timeline_reproduces_figure_6_2() {
    let (json, stats) = tracing::fig6_2_cell(FpgaPlatform::Arria10Gx, &OptimizationConfig::base());
    let live = &stats.breakdown;
    let b = Breakdown::from_chrome_trace(&json).expect("exported trace round-trips");
    assert!((b.kernel_s - live.kernel_s).abs() < 1e-9, "kernel_s");
    assert!((b.write_s - live.write_s).abs() < 1e-9, "write_s");
    assert!((b.read_s - live.read_s).abs() < 1e-9, "read_s");
    assert!((b.span_s - live.span_s).abs() < 1e-9, "span_s");
    // The baseline bitstream's defining shape: kernel times are short and
    // most of the span is host overhead (§6.3.1, Figure 6.2).
    assert!(
        b.overhead_fraction() > 0.5,
        "baseline LeNet must be overhead-dominated, got {:.2}",
        b.overhead_fraction()
    );
    assert!(
        (b.overhead_fraction() - live.overhead_fraction()).abs() < 1e-9,
        "overhead fraction drifted through export"
    );
}

#[test]
fn serve_timeline_shows_the_rollout_machinery() {
    let tracer = fpgaccel_trace::Tracer::enabled();
    let r = fpgaccel_bench::serving::traced_run(&tracer);

    // The mid-run MobileNet upgrade promotes without disturbing service.
    assert_eq!(r.rollouts.len(), 1);
    assert_eq!(
        r.rollouts[0].outcome,
        fpgaccel_serve::RolloutOutcome::Promoted
    );
    assert!(r.failures.is_empty());
    assert_eq!(
        r.registry
            .value("serve_rollout_state", &[("model", "MobileNetV1")]),
        Some(4.0),
        "gauge must park at `promoted`"
    );
    assert_eq!(
        r.registry
            .value("serve_rollbacks_total", &[("model", "MobileNetV1")]),
        None,
        "a clean rollout counts no rollback"
    );

    // Wave spans on the rollout lane (tid 48), canary + reprogram spans on
    // the device lanes — all visible in the Perfetto export.
    let spans = tracer.events();
    assert!(spans.iter().any(|e| e.cat == "rollout" && e.tid == 48));
    assert!(spans.iter().any(|e| e.cat == "canary" && e.tid >= 64));
    assert!(spans.iter().any(|e| e.cat == "reprogram" && e.tid >= 64));
    let json = fpgaccel_trace::chrome_trace_json(&tracer);
    let v = Json::parse(&json).expect("valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(events
        .iter()
        .any(|e| { e.get("cat").and_then(Json::as_str) == Some("rollout") }));
}

#[test]
fn trace_experiment_emits_valid_chrome_json_for_every_traceable_id() {
    for id in tracing::TRACEABLE {
        let json = tracing::trace_experiment(id).expect("traceable");
        let v = Json::parse(&json).unwrap_or_else(|e| panic!("{id}: invalid JSON: {e}"));
        assert_eq!(
            v.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms"),
            "{id}: displayTimeUnit"
        );
        let events = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{id}: no traceEvents array"));
        assert!(!events.is_empty(), "{id}: empty trace");
        // Every event carries the mandatory Chrome trace-event fields.
        for e in events {
            assert!(e.get("ph").and_then(Json::as_str).is_some(), "{id}: ph");
            assert!(e.get("pid").and_then(Json::as_f64).is_some(), "{id}: pid");
            assert!(e.get("name").and_then(Json::as_str).is_some(), "{id}: name");
        }
        // Metadata names the tracks, so Perfetto shows readable lanes.
        assert!(
            events
                .iter()
                .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
            "{id}: no track metadata"
        );
    }
}
