//! The `tune` experiment: the auto-scheduler against the hand-tuned
//! Table 6.7 deployment.
//!
//! Cold-searches the MobileNetV1 1x1-convolution tiling space on the
//! Arria 10 GX under a bounded evaluation budget, compares the winner with
//! the thesis' hand-picked `7/8/8` configuration (evaluated by the exact
//! same methodology), persists the tuning database, and then demonstrates
//! the warm path: reloading the database and tuning again without spending
//! a single candidate evaluation.
//!
//! Environment knobs (the report stays byte-identical for fixed values):
//! `FPGACCEL_TUNE_BUDGET` caps candidate evaluations (default 200);
//! `FPGACCEL_TUNE_DB` sets the database path (default `tune_db.json`).

use crate::table::Table;
use fpgaccel_core::bitstreams::mobilenet_tile;
use fpgaccel_core::{tune_model, Flow, FlowEvaluator};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;
use fpgaccel_trace::{Registry, Tracer};
use fpgaccel_tune::{Candidate, Evaluate, SearchConfig, TuningDb};

/// Evaluation budget (`FPGACCEL_TUNE_BUDGET`, default 200 — the bound the
/// acceptance criteria hold the search to).
pub fn budget() -> usize {
    std::env::var("FPGACCEL_TUNE_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

/// Tuning-database path (`FPGACCEL_TUNE_DB`, default `tune_db.json`).
pub fn db_path() -> std::path::PathBuf {
    std::env::var("FPGACCEL_TUNE_DB")
        .unwrap_or_else(|_| "tune_db.json".to_string())
        .into()
}

/// The search configuration the experiment (and CI smoke run) uses.
pub fn search_config() -> SearchConfig {
    SearchConfig {
        max_evaluations: budget(),
        ..SearchConfig::default()
    }
}

/// Runs the auto-tuning experiment report.
pub fn tune() -> String {
    let model = Model::MobileNetV1;
    let platform = FpgaPlatform::Arria10Gx;
    let ms = |s: f64| format!("{:.2} ms", s * 1e3);

    let mut t = Table::new(
        "Auto-tuner vs hand-tuned — MobileNetV1 1x1-conv tiling, Arria 10",
        &[
            "config",
            "W2/C2/C1",
            "1x1 DSPs",
            "fmax",
            "1x1 time/img",
            "net time/img",
            "evals",
        ],
    );

    // The hand-tuned Table 6.7 configuration, measured by the same
    // methodology the tuner's evaluator uses.
    let hand_tile = mobilenet_tile(platform);
    let eval = FlowEvaluator::new(&Flow::new(model, platform));
    let hand = eval
        .evaluate(&Candidate::new(hand_tile))
        .expect("hand-tuned tiling synthesizes");
    let hand_seconds = hand
        .seconds_per_image
        .expect("hand-tuned deployment fits the A10");
    t.row(&[
        "hand-tuned (Table 6.7)".into(),
        format!("{}/{}/{}", hand_tile.0, hand_tile.1, hand_tile.2),
        hand.dsps.to_string(),
        format!("{:.0} MHz", hand.fmax_mhz),
        ms(hand.conv1x1_seconds),
        ms(hand_seconds),
        "-".into(),
    ]);

    // Cold search from an empty database.
    let mut db = TuningDb::new();
    let cold = tune_model(
        model,
        platform,
        search_config(),
        &mut db,
        &Tracer::disabled(),
        &Registry::default(),
    )
    .expect("the A10 1x1 space has feasible candidates");
    t.row(&[
        "auto-tuned (cold search)".into(),
        format!(
            "{}/{}/{}",
            cold.candidate.tile.0, cold.candidate.tile.1, cold.candidate.tile.2
        ),
        cold.dsps.to_string(),
        format!("{:.0} MHz", cold.fmax_mhz),
        ms(cold.conv1x1_seconds),
        ms(cold.seconds_per_image),
        cold.evaluations.to_string(),
    ]);

    // Persist, reload, and tune again: the warm path must not search.
    let path = db_path();
    db.save(&path).expect("tuning database saves");
    let mut reloaded = TuningDb::load(&path).expect("tuning database reloads");
    let warm = tune_model(
        model,
        platform,
        search_config(),
        &mut reloaded,
        &Tracer::disabled(),
        &Registry::default(),
    )
    .expect("warm lookup succeeds");
    assert!(warm.from_cache && warm.evaluations == 0);
    t.row(&[
        "auto-tuned (warm reload)".into(),
        format!(
            "{}/{}/{}",
            warm.candidate.tile.0, warm.candidate.tile.1, warm.candidate.tile.2
        ),
        warm.dsps.to_string(),
        format!("{:.0} MHz", warm.fmax_mhz),
        ms(warm.conv1x1_seconds),
        ms(warm.seconds_per_image),
        "0 (db hit)".into(),
    ]);

    let space_size = eval.space().proposals().map(|p| p.len()).unwrap_or(0);
    format!(
        "{}\nSearch evaluated {} of {} legal candidates (budget {}); best net latency is \
         {:.1}% of hand-tuned.\nTuning database: {} record(s) at {} — warm reload answered \
         from the database with 0 evaluations.\n",
        t.render(),
        cold.evaluations,
        space_size,
        budget(),
        100.0 * cold.seconds_per_image / hand_seconds,
        reloaded.len(),
        path.display(),
    )
}
