//! The `bench` experiment: the continuous performance trajectory.
//!
//! Runs the standardized workload matrix from `fpgaccel-obs` twice (the
//! second pass is the determinism probe — the record must reproduce byte
//! for byte), renders every collected metric, and compares the fresh
//! record against the committed baseline with per-metric tolerance
//! bands. A regression beyond a metric's band fails the verdict, as does
//! a baseline metric that the current run no longer produces.
//!
//! Environment knobs: `FPGACCEL_BENCH_BASELINE` names the committed
//! baseline record (default `BENCH_core.json` in the working directory);
//! `FPGACCEL_BENCH_OUT` names a file to write the fresh record to;
//! `FPGACCEL_BENCH_VERDICT` names a file to write the machine-readable
//! comparison verdict to (for CI: `jq .pass`).

use crate::table::Table;
use fpgaccel_obs::{collect, compare, BenchRecord, BenchVerdict, DeltaStatus};

/// Baseline path (`FPGACCEL_BENCH_BASELINE`, default `BENCH_core.json`).
fn baseline_path() -> String {
    std::env::var("FPGACCEL_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_core.json".into())
}

/// Renders the comparison section of the report.
fn render_verdict(v: &BenchVerdict) -> String {
    let mut t = Table::new(
        "Bench — baseline comparison (per-metric tolerance bands)",
        &["metric", "baseline", "current", "change", "band", "status"],
    );
    for d in &v.deltas {
        t.row(&[
            d.id.clone(),
            format!("{:.6}", d.baseline),
            format!("{:.6}", d.current),
            format!("{:+.2}%", 100.0 * d.rel_change),
            format!("±{:.0}%", 100.0 * d.tolerance),
            d.status.label().to_string(),
        ]);
    }
    let mut lines = vec![t.render()];
    for id in &v.missing {
        lines.push(format!(
            "MISSING from current run: {id} (coverage loss fails)"
        ));
    }
    for id in &v.added {
        lines.push(format!("new metric (not in baseline): {id}"));
    }
    let within = v
        .deltas
        .iter()
        .filter(|d| d.status == DeltaStatus::Pass)
        .count();
    lines.push(format!(
        "Verdict: {} — {within}/{} within band, {} regressed, {} improved, {} missing.",
        if v.pass() { "PASS" } else { "REGRESSED" },
        v.deltas.len(),
        v.regressions().len(),
        v.improvements().len(),
        v.missing.len(),
    ));
    lines.join("\n")
}

/// The `bench` experiment report.
pub fn bench() -> String {
    let rec = collect();
    let rerun = collect();
    let deterministic = rec.to_json() == rerun.to_json();

    let mut matrix = Table::new(
        format!(
            "Bench trajectory — workload {} (schema v{})",
            rec.workload,
            fpgaccel_obs::SCHEMA_VERSION
        ),
        &["metric", "value", "unit", "direction", "band"],
    );
    for m in &rec.metrics {
        matrix.row(&[
            m.id.clone(),
            format!("{:.6}", m.value),
            m.unit.clone(),
            m.direction.label().to_string(),
            format!("±{:.0}%", 100.0 * m.tolerance),
        ]);
    }

    let path = baseline_path();
    let comparison = match std::fs::read_to_string(&path) {
        Ok(text) => match BenchRecord::parse(&text) {
            Ok(base) => {
                let v = compare(&base, &rec);
                if let Ok(out) = std::env::var("FPGACCEL_BENCH_VERDICT") {
                    std::fs::write(&out, v.to_json()).expect("bench verdict artifact writes");
                }
                render_verdict(&v)
            }
            Err(e) => format!("Baseline {path} is unreadable ({e}); comparison skipped."),
        },
        Err(_) => format!("Baseline {path} not found; comparison skipped."),
    };

    if let Ok(out) = std::env::var("FPGACCEL_BENCH_OUT") {
        std::fs::write(&out, rec.to_json()).expect("bench record artifact writes");
    }

    format!(
        "Continuous performance trajectory — standardized bench matrix\n{}\n{comparison}\n\
         Determinism: collecting the matrix twice is {}.\n\
         Metrics: {} across compile, pipeline, serve and fleet stages; artifact schema v{}.\n",
        matrix.render(),
        if deterministic {
            "byte-identical"
        } else {
            "DIVERGENT"
        },
        rec.metrics.len(),
        fpgaccel_obs::SCHEMA_VERSION,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_report_is_deterministic() {
        assert_eq!(bench(), bench());
    }
}
