//! The `fleet` experiment: sharded fleet serving at datacenter scale.
//!
//! A heterogeneous fleet (2:2:1 Arria 10 GX / Stratix 10 SX / Stratix 10
//! MX, 500 boards by default) is placed, sharded, and driven end to end:
//!
//! * **Placement** — demand for all four evaluation networks is packed
//!   onto the inventory by the placement optimizer (most-constrained
//!   model first, fastest class first; the ResNets fit no Arria 10).
//!   The plan is optimized cold exactly once and every fleet start-up —
//!   the experiment builds the fleet twice — warm-reloads it from the
//!   tuning database with zero feasibility probes.
//! * **Multi-tenant QoS** — three tenants share the fleet; one offers
//!   10× its budget. The surge is shed at the fleet door, weighted-fair,
//!   while the well-behaved tenants never shed anywhere and every
//!   intra-budget admit completes.
//! * **Routing** — each model's consistent-hash router spreads admitted
//!   traffic over its serving shards with bounded-load overflow.
//! * **Fleet rollout** — MobileNet is upgraded to the auto-tuned folded
//!   configuration shard by shard. One shard is sabotaged (a reprogram
//!   failure plus a corrupted canary shadow batch): its first attempt
//!   rolls back — freezing a flight-recorder postmortem — and its
//!   scheduled retry promotes, so every shard ends upgraded.
//!
//! The whole scenario is a pure function of its seeds: the cold and the
//! warm run must produce byte-identical digests.
//!
//! Environment knobs: `FPGACCEL_FLEET_DEVICES` scales the fleet (CI runs
//! 64), `FPGACCEL_FLEET_REPORT` names a JSON file for the machine-readable
//! summary.

use crate::rollout::json_str;
use crate::table::Table;
use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_core::{OptimizationConfig, TilingPreset};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_fault::{shadow_target, FaultEvent, FaultKind, FaultPlan};
use fpgaccel_fleet::{
    plan_placement, DeviceClass, Fleet, FleetConfig, FleetRollout, FleetRunResult, FleetSpec,
    ModelDemand, PlacementPlan, TenantLoad, TenantPolicy,
};
use fpgaccel_serve::{AdmissionPolicy, DeploymentCache, RolloutPolicy, ServeConfig};
use fpgaccel_tensor::models::Model;
use fpgaccel_tune::TuningDb;

/// Scenario seed (routers, tenant traces, routing keys).
const FLEET_SEED: u64 = 0xF1EE7;
/// Committed sabotage fault-plan seed (provenance only).
const SABOTAGE_SEED: u64 = 0x5AB0;

/// Arrivals the offered load is sized to produce per fleet device, so
/// wall clock stays flat as `FPGACCEL_FLEET_DEVICES` scales.
const ARRIVALS_PER_DEVICE: f64 = 60.0;

/// Demand as a fraction of each model's full-fleet capacity (what the
/// whole inventory could serve if dedicated to that one model).
const DEMAND_SHARE: [(Model, f64); 4] = [
    (Model::LeNet5, 0.30),
    (Model::MobileNetV1, 0.45),
    (Model::ResNet18, 0.18),
    (Model::ResNet34, 0.10),
];
/// Capacity slack the placement targets above demand.
const HEADROOM: f64 = 0.15;

/// Default fleet size; CI smokes the same scenario at 64.
const DEFAULT_DEVICES: usize = 500;

fn fleet_devices() -> usize {
    std::env::var("FPGACCEL_FLEET_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 10)
        .unwrap_or(DEFAULT_DEVICES)
}

/// Calibrated steady-state rate of one device, requests/second — `None`
/// when the model compiles on no such board (e.g. ResNets on Arria 10).
fn probe_rate(cache: &mut DeploymentCache, model: Model, platform: FpgaPlatform) -> Option<f64> {
    let d = cache
        .get_or_compile(model, platform, &optimized_config(model, platform))
        .ok()?;
    let lm = cache.calibration(&d, 16);
    Some(16.0 / lm.seconds(16))
}

/// The 2:2:1 heterogeneous inventory with demand derived from probed
/// per-class rates, so the spec scales with the device count.
fn build_spec(devices: usize) -> FleetSpec {
    let a10 = devices * 2 / 5;
    let sx = devices * 2 / 5;
    let mx = devices - a10 - sx;
    let classes = vec![
        DeviceClass {
            platform: FpgaPlatform::Arria10Gx,
            count: a10,
        },
        DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: sx,
        },
        DeviceClass {
            platform: FpgaPlatform::Stratix10Mx,
            count: mx,
        },
    ];
    let mut cache = DeploymentCache::new();
    let demands = DEMAND_SHARE
        .iter()
        .map(|&(model, share)| {
            let capacity: f64 = classes
                .iter()
                .filter_map(|c| Some(c.count as f64 * probe_rate(&mut cache, model, c.platform)?))
                .sum();
            ModelDemand {
                model,
                rate_rps: share * capacity,
            }
        })
        .collect();
    FleetSpec {
        classes,
        demands,
        headroom: HEADROOM,
        domains: 1,
    }
}

/// Deep-queue, no-deadline shard serving: admitted traffic completes even
/// through rollout waves — the acceptance bar is the QoS door, not queue
/// overflow.
fn deep_queue() -> ServeConfig {
    ServeConfig {
        admission: AdmissionPolicy {
            queue_capacity: 1 << 14,
            default_deadline_s: None,
        },
        ..ServeConfig::default()
    }
}

/// The rollout target: the auto-tuned folded MobileNet shape.
fn tuned_config() -> OptimizationConfig {
    let mut cfg = OptimizationConfig::folded(TilingPreset::Custom1x1 { tile: (7, 8, 8) });
    cfg.label = "Folded-Tuned".into();
    cfg
}

/// Rate the plan actually placed for one model, requests/second.
fn placed_rps(plan: &PlacementPlan, model: Model) -> f64 {
    plan.assignments
        .iter()
        .filter(|a| a.model == model)
        .map(|a| a.replicas as f64 * a.device_rate_rps)
        .sum()
}

/// The three tenants, sized off the placed per-model capacities:
///
/// * `anchor` (weight 2) offers 30% of every model's placed rate, well
///   inside its budget.
/// * `batch` (weight 1) offers 20% of the LeNet and MobileNet rates.
/// * `burst` (weight 1) buys 4% of fleet capacity and offers **10×** its
///   budget on LeNet — the surge the QoS door must absorb.
fn tenants_for(plan: &PlacementPlan) -> Vec<TenantLoad> {
    let capacity = plan.total_rate_rps;
    let anchor_offered: Vec<(Model, f64)> = Model::ALL
        .iter()
        .map(|&m| (m, 0.30 * placed_rps(plan, m)))
        .collect();
    let batch_offered: Vec<(Model, f64)> = [Model::LeNet5, Model::MobileNetV1]
        .iter()
        .map(|&m| (m, 0.20 * placed_rps(plan, m)))
        .collect();
    let budget = |offered: &[(Model, f64)]| 1.5 * offered.iter().map(|&(_, r)| r).sum::<f64>();
    let burst_budget = 0.04 * capacity;
    vec![
        TenantLoad {
            policy: TenantPolicy {
                name: "anchor".into(),
                weight: 2.0,
                budget_rps: budget(&anchor_offered),
                burst: 60.0,
            },
            offered: anchor_offered,
        },
        TenantLoad {
            policy: TenantPolicy {
                name: "batch".into(),
                weight: 1.0,
                budget_rps: budget(&batch_offered),
                burst: 60.0,
            },
            offered: batch_offered,
        },
        TenantLoad {
            policy: TenantPolicy {
                name: "burst".into(),
                weight: 1.0,
                budget_rps: burst_budget,
                burst: 60.0,
            },
            offered: vec![(Model::LeNet5, 10.0 * burst_budget)],
        },
    ]
}

/// The fixed scenario one `fleet_at` call runs twice.
struct Scenario {
    devices: usize,
    spec: FleetSpec,
    tenants: Vec<TenantLoad>,
    duration_s: f64,
    rollout_start_s: f64,
    shards: usize,
}

fn fleet_config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        seed: FLEET_SEED,
        serve: deep_queue(),
        ..FleetConfig::default()
    }
}

/// Builds the fleet (warm-reloading the placement), schedules the
/// staggered MobileNet rollout, sabotages the first serving shard, and
/// runs the tenant load. Returns the result and the serving-shard count.
fn run_fleet(sc: &Scenario, db: &mut TuningDb) -> (FleetRunResult, usize) {
    let mut fleet = Fleet::build(&sc.spec, fleet_config(sc.shards), db).unwrap();
    assert!(
        fleet.plan().from_cache && fleet.plan().evaluations == 0,
        "every fleet start-up must warm-reload the cached placement"
    );
    let serving = fleet.shards_serving(Model::MobileNetV1);
    assert!(!serving.is_empty(), "MobileNet must be served somewhere");
    let victim = serving[0];
    let start = sc.rollout_start_s;
    fleet.schedule_rollout(FleetRollout {
        model: Model::MobileNetV1,
        to: tuned_config(),
        start_s: start,
        stagger_s: 0.01,
        // Well after the sabotaged attempt's rollback settles; rollout
        // timers past the last arrival still run to completion.
        retry_at_s: start + 1.0,
        policy: RolloutPolicy::default(),
    });
    let device = fleet
        .device_serving(victim, Model::MobileNetV1)
        .expect("the victim shard serves MobileNet");
    fleet.sabotage_shard(
        victim,
        FaultPlan::new(
            SABOTAGE_SEED,
            vec![
                FaultEvent {
                    at_s: start,
                    target: device.clone(),
                    kind: FaultKind::ReprogramFail,
                },
                FaultEvent {
                    at_s: start,
                    target: shadow_target(&device),
                    kind: FaultKind::TransferCorrupt,
                },
            ],
        ),
    );
    (fleet.run(&sc.tenants, sc.duration_s), serving.len())
}

/// True when every device serving MobileNet ended on the upgrade target.
fn all_upgraded(r: &FleetRunResult) -> bool {
    r.shards.iter().all(|shard| {
        shard.devices.iter().all(|d| {
            d.deployments
                .iter()
                .all(|(m, label)| *m != Model::MobileNetV1 || label == "Folded-Tuned")
        })
    })
}

/// The machine-readable summary written to `FPGACCEL_FLEET_REPORT` for
/// the CI smoke job.
fn json_report(
    sc: &Scenario,
    cold: &PlacementPlan,
    r: &FleetRunResult,
    serving_shards: usize,
    deterministic: bool,
) -> String {
    let assignments: Vec<String> = r
        .plan
        .assignments
        .iter()
        .map(|a| {
            format!(
                "{{\"model\":{},\"class\":{},\"replicas\":{},\"device_rps\":{:.3}}}",
                json_str(a.model.name()),
                json_str(a.platform.label()),
                a.replicas,
                a.device_rate_rps,
            )
        })
        .collect();
    let tenants: Vec<String> = r
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"name\":{},\"offered\":{},\"admitted_in_budget\":{},\
                 \"admitted_over_budget\":{},\"shed_fleet\":{},\"shed_shard\":{},\
                 \"completed\":{},\"completion_rate\":{:.6},\
                 \"in_budget_completion_rate\":{:.6}}}",
                json_str(&t.name),
                t.offered,
                t.admitted_in_budget,
                t.admitted_over_budget,
                t.shed_fleet,
                t.shed_shard,
                t.completed,
                t.completion_rate(),
                t.in_budget_completion_rate(),
            )
        })
        .collect();
    format!(
        "{{\n  \"seed\": {FLEET_SEED},\n  \"devices\": {},\n  \"shards\": {},\n  \
         \"duration_s\": {:.6},\n  \
         \"placement\": {{\"evaluations_cold\": {}, \"warm_reload\": {}, \
         \"devices_used\": {}, \"capacity_rps\": {:.1}, \"assignments\": [{}]}},\n  \
         \"tenants\": [{}],\n  \
         \"rollout\": {{\"serving_shards\": {serving_shards}, \"rollbacks\": {}, \
         \"promotions\": {}, \"postmortems\": {}, \"upgraded\": {}}},\n  \
         \"router\": {{\"routed\": {}, \"overflowed\": {}, \"p50_ms\": {:.3}, \
         \"p99_ms\": {:.3}}},\n  \"deterministic\": {deterministic}\n}}\n",
        sc.devices,
        sc.shards,
        sc.duration_s,
        cold.evaluations,
        r.plan.from_cache,
        r.plan.devices_used(),
        r.plan.total_rate_rps,
        assignments.join(", "),
        tenants.join(", "),
        r.rollbacks(),
        r.promotions(),
        r.postmortems(),
        all_upgraded(r),
        r.routed,
        r.overflowed,
        r.latency.quantile(0.50) * 1e3,
        r.latency.quantile(0.99) * 1e3,
    )
}

/// Runs the full scenario at `devices` boards and renders the report.
fn fleet_at(devices: usize) -> String {
    let shards = (devices / 16).clamp(2, 20);
    let spec = build_spec(devices);

    // Cold placement: optimized exactly once, cached under the spec's
    // digest. Both fleet builds below warm-reload it.
    let mut db = TuningDb::new();
    let cold = plan_placement(&spec, &mut db, &mut DeploymentCache::new()).unwrap();
    assert!(
        !cold.from_cache && cold.evaluations > 0,
        "first plan is cold"
    );

    let tenants = tenants_for(&cold);
    let offered_rps: f64 = tenants
        .iter()
        .flat_map(|t| t.offered.iter().map(|&(_, r)| r))
        .sum();
    let duration_s = ARRIVALS_PER_DEVICE * devices as f64 / offered_rps;
    let sc = Scenario {
        devices,
        spec,
        tenants,
        duration_s,
        rollout_start_s: 0.25 * duration_s,
        shards,
    };

    let (r, serving_shards) = run_fleet(&sc, &mut db);
    let (second, _) = run_fleet(&sc, &mut db);
    let deterministic = r.digest() == second.digest();

    // The acceptance bars, asserted hard: a broken fleet must fail the
    // experiment, not render a plausible table.
    assert!(deterministic, "cold and warm runs must match byte for byte");
    assert!(all_upgraded(&r), "every shard must end on the upgrade");
    assert_eq!(r.rollbacks(), 1, "exactly the sabotaged attempt rolls back");
    assert_eq!(
        r.promotions(),
        serving_shards,
        "every serving shard promotes"
    );
    assert!(r.postmortems() >= 1, "the rollback freezes a postmortem");
    for t in &r.tenants {
        assert_eq!(
            t.in_budget_completion_rate(),
            1.0,
            "{}: every intra-budget admit completes",
            t.name
        );
        if t.name == "burst" {
            assert!(t.shed_fleet > 0, "the 10x surge must shed at the door");
        } else {
            assert_eq!(t.shed_fleet, 0, "{} shed at the fleet door", t.name);
            assert_eq!(t.shed_shard, 0, "{} shed inside a shard", t.name);
            assert!(t.completion_rate() >= 0.99, "{} completion", t.name);
        }
    }

    let mut placement = Table::new(
        format!(
            "Fleet placement — {} boards, {} shards (cold: {} probes; reruns warm-reload)",
            sc.devices, sc.shards, cold.evaluations
        ),
        &["model", "class", "replicas", "device rps", "placed rps"],
    );
    for a in &r.plan.assignments {
        placement.row(&[
            a.model.name().into(),
            a.platform.label().into(),
            a.replicas.to_string(),
            format!("{:.1}", a.device_rate_rps),
            format!("{:.1}", a.replicas as f64 * a.device_rate_rps),
        ]);
    }

    let mut qos = Table::new(
        "Multi-tenant QoS — one tenant surging 10x its budget",
        &[
            "tenant",
            "offered",
            "in-budget",
            "over-budget",
            "shed@fleet",
            "shed@shard",
            "completed",
            "in-budget completion",
        ],
    );
    for t in &r.tenants {
        qos.row(&[
            t.name.clone(),
            t.offered.to_string(),
            t.admitted_in_budget.to_string(),
            t.admitted_over_budget.to_string(),
            t.shed_fleet.to_string(),
            t.shed_shard.to_string(),
            t.completed.to_string(),
            format!("{:.1}%", 100.0 * t.in_budget_completion_rate()),
        ]);
    }

    let mut classes = Table::new(
        "Device classes — fleet-scope aggregates (per-device series stay shard-scoped)",
        &["class", "boards", "busy s", "utilization"],
    );
    for c in &sc.spec.classes {
        let label = c.platform.label();
        let v = |name: &str| r.registry.value(name, &[("class", label)]).unwrap_or(0.0);
        classes.row(&[
            label.into(),
            format!("{:.0}", v("fleet_class_devices_count")),
            format!("{:.4}", v("fleet_class_busy_seconds")),
            format!("{:.1}%", 100.0 * v("fleet_class_utilization_ratio")),
        ]);
    }

    if let Ok(path) = std::env::var("FPGACCEL_FLEET_REPORT") {
        std::fs::write(
            &path,
            json_report(&sc, &cold, &r, serving_shards, deterministic),
        )
        .expect("fleet report artifact writes");
    }

    format!(
        "Fleet — sharded serving with placement, QoS, and a fleet-wide rollout \
         (seed {FLEET_SEED:#x}, {} boards)\n{}\n{}\n{}\n\
         Router: {} routed, {} overflowed past their home shard ({:.2}%); end-to-end \
         p50 {:.2} ms, p99 {:.2} ms.\n\
         Rollout: MobileNet -> Folded-Tuned across {} serving shard(s); the sabotaged \
         shard rolled back once ({} postmortem(s) frozen) and its retry promoted — \
         {} promotion(s), every shard upgraded.\n\
         Determinism: the cold and the warm-reloaded fleet runs are {} \
         (placement reloads from the tuning database with 0 probes).",
        sc.devices,
        placement.render(),
        qos.render(),
        classes.render(),
        r.routed,
        r.overflowed,
        100.0 * r.overflowed as f64 / r.routed.max(1) as f64,
        r.latency.quantile(0.50) * 1e3,
        r.latency.quantile(0.99) * 1e3,
        serving_shards,
        r.postmortems(),
        r.promotions(),
        if deterministic {
            "identical"
        } else {
            "DIVERGENT"
        },
    )
}

/// The `fleet` experiment report.
pub fn fleet() -> String {
    fleet_at(fleet_devices())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_report_is_deterministic_at_smoke_scale() {
        // The experiment self-asserts the QoS, rollout, and warm-reload
        // bars; here it must also reproduce byte for byte at CI scale.
        assert_eq!(fleet_at(48), fleet_at(48));
    }
}
