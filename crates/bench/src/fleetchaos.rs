//! The `fleetchaos` experiment: fleet-scale resilience under a seeded
//! correlated domain outage.
//!
//! The same heterogeneous inventory as the `fleet` experiment (2:2:1
//! Arria 10 GX / Stratix 10 SX / Stratix 10 MX, 500 boards by default) is
//! placed at ~60% demand so every shard carries standby spares, racked
//! one failure domain per shard, and driven through a generated fault
//! plan ([`FaultPlan::generate`]) that lands, mid-run:
//!
//! * **one correlated domain burst** — a brownout of clustered transfer
//!   stalls on the victim rack's boards, then the whole domain goes dark
//!   ([`FaultKind::DomainOutage`]): every serving board ends `Lost`;
//! * **two persistent device slowdowns** ([`FaultKind::DeviceSlow`]) on
//!   other shards — degraded, not hung, so the watchdog never fires.
//!
//! The resilience stack must absorb all of it with **zero in-budget
//! loss**:
//!
//! * the victim shard's **circuit breaker** trips on capacity-attributed
//!   straggler predictions and ejects it from every model's ring
//!   (bounded-load overflow absorbs its keys);
//! * the **failover replay** re-issues everything the dead shard had in
//!   flight to the next ring shard, and **hedged requests** cover the
//!   detection window and the post-heal guard window;
//! * **self-healing re-placement** re-runs the placement optimizer over
//!   the surviving inventory (warm from the tuning database) and adopts
//!   the victim shard's spare boards through the rollout wave machinery,
//!   after which the breaker probes the shard half-open and closes;
//! * batch timeouts on the dying shard freeze **flight-recorder
//!   postmortems**.
//!
//! The whole scenario is a pure function of its seeds: the cold and the
//! warm run must produce byte-identical digests.
//!
//! Environment knobs: `FPGACCEL_FLEETCHAOS_DEVICES` scales the fleet (CI
//! runs 64), `FPGACCEL_FLEETCHAOS_REPORT` names a JSON file for the
//! machine-readable summary.

use crate::rollout::json_str;
use crate::table::Table;
use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_device::FpgaPlatform;
use fpgaccel_fault::{FaultKind, FaultPlan, FaultSpec};
use fpgaccel_fleet::{
    plan_placement, DeviceClass, Fleet, FleetConfig, FleetRunResult, FleetSpec, HealthPolicy,
    ModelDemand, PlacementPlan, TenantLoad, TenantPolicy,
};
use fpgaccel_serve::{AdmissionPolicy, DeploymentCache, ServeConfig};
use fpgaccel_tensor::models::Model;
use fpgaccel_tune::TuningDb;

/// Scenario seed (routers, tenant traces, routing keys).
const FLEET_SEED: u64 = 0xF1EE7C;
/// Seed of the generated chaos fault plan (chosen so the correlated
/// burst lands in the first third of the window — the run must also fit
/// the quarantine, the heal waves, and the breaker's re-close).
const FAULT_SEED: u64 = 0xBEEF2;

/// Arrivals the offered load is sized to produce per fleet device — 10×
/// the `fleet` experiment's, because the simulated span must be long
/// enough to fit the whole resilience arc (outage → quarantine → heal
/// waves → breaker re-close) between the first and the last arrival.
const ARRIVALS_PER_DEVICE: f64 = 600.0;

/// Demand as a fraction of each model's full-fleet capacity — ~60% of the
/// `fleet` experiment's load, so every shard carries the standby spares
/// the self-healing re-placement adopts.
const DEMAND_SHARE: [(Model, f64); 4] = [
    (Model::LeNet5, 0.18),
    (Model::MobileNetV1, 0.27),
    (Model::ResNet18, 0.11),
    (Model::ResNet34, 0.06),
];
/// Capacity slack the placement targets above demand.
const HEADROOM: f64 = 0.15;

/// Default fleet size; CI smokes the same scenario at 64.
const DEFAULT_DEVICES: usize = 500;

fn fleet_devices() -> usize {
    std::env::var("FPGACCEL_FLEETCHAOS_DEVICES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 10)
        .unwrap_or(DEFAULT_DEVICES)
}

/// Calibrated steady-state rate of one device, requests/second.
fn probe_rate(cache: &mut DeploymentCache, model: Model, platform: FpgaPlatform) -> Option<f64> {
    let d = cache
        .get_or_compile(model, platform, &optimized_config(model, platform))
        .ok()?;
    let lm = cache.calibration(&d, 16);
    Some(16.0 / lm.seconds(16))
}

/// The 2:2:1 inventory at ~60% demand, racked one domain per shard.
fn build_spec(devices: usize, domains: usize) -> FleetSpec {
    let a10 = devices * 2 / 5;
    let sx = devices * 2 / 5;
    let mx = devices - a10 - sx;
    let classes = vec![
        DeviceClass {
            platform: FpgaPlatform::Arria10Gx,
            count: a10,
        },
        DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: sx,
        },
        DeviceClass {
            platform: FpgaPlatform::Stratix10Mx,
            count: mx,
        },
    ];
    let mut cache = DeploymentCache::new();
    let demands = DEMAND_SHARE
        .iter()
        .map(|&(model, share)| {
            let capacity: f64 = classes
                .iter()
                .filter_map(|c| Some(c.count as f64 * probe_rate(&mut cache, model, c.platform)?))
                .sum();
            ModelDemand {
                model,
                rate_rps: share * capacity,
            }
        })
        .collect();
    FleetSpec {
        classes,
        demands,
        headroom: HEADROOM,
        domains,
    }
}

/// Deep-queue, no-deadline shard serving: the acceptance bar is that
/// every in-budget admit completes *somewhere*, however late the outage
/// makes it — nothing may be silently dropped inside a shard.
fn deep_queue() -> ServeConfig {
    ServeConfig {
        admission: AdmissionPolicy {
            queue_capacity: 1 << 14,
            default_deadline_s: None,
        },
        ..ServeConfig::default()
    }
}

/// Rate the plan actually placed for one model, requests/second.
fn placed_rps(plan: &PlacementPlan, model: Model) -> f64 {
    plan.assignments
        .iter()
        .filter(|a| a.model == model)
        .map(|a| a.replicas as f64 * a.device_rate_rps)
        .sum()
}

/// The same three-tenant mix as the `fleet` experiment: two well-behaved
/// tenants plus one surging 10× its budget — the QoS door must keep
/// shedding the surge while the outage plays out, and hedged duplicates
/// must never double-count against anyone's budget.
fn tenants_for(plan: &PlacementPlan) -> Vec<TenantLoad> {
    let capacity = plan.total_rate_rps;
    let anchor_offered: Vec<(Model, f64)> = Model::ALL
        .iter()
        .map(|&m| (m, 0.30 * placed_rps(plan, m)))
        .collect();
    let batch_offered: Vec<(Model, f64)> = [Model::LeNet5, Model::MobileNetV1]
        .iter()
        .map(|&m| (m, 0.20 * placed_rps(plan, m)))
        .collect();
    let budget = |offered: &[(Model, f64)]| 1.5 * offered.iter().map(|&(_, r)| r).sum::<f64>();
    let burst_budget = 0.04 * capacity;
    vec![
        TenantLoad {
            policy: TenantPolicy {
                name: "anchor".into(),
                weight: 2.0,
                budget_rps: budget(&anchor_offered),
                burst: 60.0,
            },
            offered: anchor_offered,
        },
        TenantLoad {
            policy: TenantPolicy {
                name: "batch".into(),
                weight: 1.0,
                budget_rps: budget(&batch_offered),
                burst: 60.0,
            },
            offered: batch_offered,
        },
        TenantLoad {
            policy: TenantPolicy {
                name: "burst".into(),
                weight: 1.0,
                budget_rps: burst_budget,
                burst: 60.0,
            },
            offered: vec![(Model::LeNet5, 10.0 * burst_budget)],
        },
    ]
}

/// The fixed scenario one `fleetchaos_at` call runs twice.
struct Scenario {
    devices: usize,
    spec: FleetSpec,
    tenants: Vec<TenantLoad>,
    duration_s: f64,
    shards: usize,
}

/// Builds the fleet (warm-reloading the placement), picks the victim
/// shard, arms the generated chaos plan, and runs the tenant load.
/// Returns the result, the victim shard, and the outage instant.
fn run_fleetchaos(sc: &Scenario, db: &mut TuningDb) -> (FleetRunResult, usize, f64) {
    let cfg = FleetConfig {
        shards: sc.shards,
        seed: FLEET_SEED,
        serve: deep_queue(),
        // Aggressive re-probing: the run is sub-second, so a breached
        // shard is probed back every 20 ms instead of the default 250.
        health: HealthPolicy {
            cooldown_s: 0.02,
            ..HealthPolicy::default()
        },
        // Long enough for the victim boards' quarantine (batch timeout +
        // exhausted reprogram budget) to declare them Lost before the
        // adoption waves start.
        heal_delay_s: 0.1,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::build(&sc.spec, cfg, db).unwrap();
    assert!(
        fleet.plan().from_cache && fleet.plan().evaluations == 0,
        "every fleet start-up must warm-reload the cached placement"
    );

    // The victim: a MobileNet-serving shard every one of whose models is
    // also served elsewhere, so hedges and replays always have a live
    // ring target.
    let serving_by_model: Vec<(Model, Vec<usize>)> = Model::ALL
        .iter()
        .map(|&m| (m, fleet.shards_serving(m)))
        .collect();
    let victim = *serving_by_model
        .iter()
        .find(|(m, _)| *m == Model::MobileNetV1)
        .map(|(_, s)| s)
        .expect("MobileNet is served")
        .iter()
        .find(|&&s| {
            serving_by_model
                .iter()
                .all(|(_, shards)| !shards.contains(&s) || shards.len() >= 2)
        })
        .expect("some MobileNet shard has failover targets for all its models");
    let domain = fleet.domain_of(victim);

    // The generated chaos plan: one correlated burst against the victim
    // rack, two persistent slowdowns spread over other shards' serving
    // boards.
    let slow_targets: Vec<String> = (0..fleet.shards())
        .filter(|&s| s != victim)
        .filter_map(|s| fleet.device_serving(s, Model::MobileNetV1))
        .collect();
    let plan = FaultPlan::generate(
        FAULT_SEED,
        &FaultSpec {
            targets: slow_targets,
            duration_s: sc.duration_s,
            hangs: 0,
            stalls: 0,
            corruptions: 0,
            reprogram_fails: 0,
            synth_flakes: 0,
            domains: vec![(domain, fleet.domain_members(&fleet.domain_of(victim)))],
            domain_bursts: 1,
            slowdowns: 2,
        },
    );
    let outage_s = plan
        .events
        .iter()
        .find(|e| e.kind == FaultKind::DomainOutage)
        .map(|e| e.at_s)
        .expect("the burst schedules a domain outage");
    fleet.arm(plan);
    (fleet.run(&sc.tenants, sc.duration_s), victim, outage_s)
}

/// The machine-readable summary written to `FPGACCEL_FLEETCHAOS_REPORT`
/// for the CI smoke job.
fn json_report(
    sc: &Scenario,
    r: &FleetRunResult,
    victim: usize,
    outage_s: f64,
    deterministic: bool,
) -> String {
    let tenants: Vec<String> = r
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"name\":{},\"offered\":{},\"admitted_in_budget\":{},\
                 \"admitted_over_budget\":{},\"shed_fleet\":{},\"shed_shard\":{},\
                 \"completed\":{},\"in_budget_completion_rate\":{:.6}}}",
                json_str(&t.name),
                t.offered,
                t.admitted_in_budget,
                t.admitted_over_budget,
                t.shed_fleet,
                t.shed_shard,
                t.completed,
                t.in_budget_completion_rate(),
            )
        })
        .collect();
    let heals: Vec<String> = r
        .heals
        .iter()
        .map(|h| {
            format!(
                "{{\"t_s\":{:.6},\"shard\":{},\"domain\":{},\"lost\":{},\
                 \"adopted\":{},\"plan_evaluations\":{},\"restore_latency_s\":{:.6},\
                 \"failed\":{}}}",
                h.t_s,
                h.shard,
                json_str(&h.domain),
                h.lost.len(),
                h.adopted.len(),
                h.plan_evaluations,
                if h.restore_s.is_finite() {
                    h.restore_s - h.t_s
                } else {
                    -1.0
                },
                h.error.is_some(),
            )
        })
        .collect();
    format!(
        "{{\n  \"seed\": {FLEET_SEED},\n  \"fault_seed\": {FAULT_SEED},\n  \
         \"devices\": {},\n  \"shards\": {},\n  \"domains\": {},\n  \
         \"duration_s\": {:.6},\n  \
         \"outage\": {{\"domain\": \"dom-{}\", \"shard\": {victim}, \"at_s\": {:.6}}},\n  \
         \"resilience\": {{\"hedges\": {}, \"hedge_wins\": {}, \"hedge_suppressed\": {}, \
         \"replays\": {}, \"forced_routes\": {}, \
         \"breaker\": {{\"open\": {}, \"half_open\": {}, \"closed\": {}}}, \
         \"heals\": [{}], \"postmortems\": {}}},\n  \
         \"tenants\": [{}],\n  \"deterministic\": {deterministic}\n}}\n",
        sc.devices,
        sc.shards,
        sc.shards,
        sc.duration_s,
        victim % sc.shards,
        outage_s,
        r.hedges,
        r.hedge_wins,
        r.hedge_suppressed,
        r.replays,
        r.forced_routes,
        r.breaker_transitions_to("open"),
        r.breaker_transitions_to("half-open"),
        r.breaker_transitions_to("closed"),
        heals.join(", "),
        r.postmortems(),
        tenants.join(", "),
    )
}

/// Runs the full scenario at `devices` boards and renders the report.
fn fleetchaos_at(devices: usize) -> String {
    let shards = (devices / 16).clamp(2, 20);
    let spec = build_spec(devices, shards);

    let mut db = TuningDb::new();
    let cold = plan_placement(&spec, &mut db, &mut DeploymentCache::new()).unwrap();
    assert!(
        !cold.from_cache && cold.evaluations > 0,
        "first plan is cold"
    );

    let tenants = tenants_for(&cold);
    let offered_rps: f64 = tenants
        .iter()
        .flat_map(|t| t.offered.iter().map(|&(_, r)| r))
        .sum();
    let duration_s = ARRIVALS_PER_DEVICE * devices as f64 / offered_rps;
    let sc = Scenario {
        devices,
        spec,
        tenants,
        duration_s,
        shards,
    };

    let (r, victim, outage_s) = run_fleetchaos(&sc, &mut db);
    let (second, _, _) = run_fleetchaos(&sc, &mut db);
    let deterministic = r.digest() == second.digest();

    // The acceptance bars, asserted hard: a fleet that loses in-budget
    // traffic to the outage must fail the experiment, not render a
    // plausible table.
    assert!(deterministic, "cold and warm runs must match byte for byte");
    for t in &r.tenants {
        assert_eq!(
            t.in_budget_completion_rate(),
            1.0,
            "{}: every intra-budget admit completes through the outage",
            t.name
        );
    }
    assert!(
        r.tenants
            .iter()
            .any(|t| t.name == "burst" && t.shed_fleet > 0),
        "the 10x surge still sheds at the QoS door during the outage"
    );
    assert!(r.hedges > 0, "straggler predictions must fire hedges");
    assert!(
        r.replays > 0,
        "the failover replay must re-issue in-flight work"
    );
    let heal = r.heals.first().expect("the outage triggers a heal");
    assert_eq!(heal.shard, victim, "the heal targets the victim shard");
    assert!(heal.error.is_none(), "surviving inventory fits the demand");
    assert!(
        !heal.adopted.is_empty(),
        "the heal adopts standby spares into serving"
    );
    assert!(
        r.breaker_transitions_to("open") >= 1
            && r.breaker_transitions_to("half-open") >= 1
            && r.breaker_transitions_to("closed") >= 1,
        "the breaker must walk open -> half-open -> closed"
    );
    assert!(
        r.postmortems() >= 1,
        "shard loss freezes flight-recorder postmortems"
    );

    let mut resilience = Table::new(
        format!(
            "Resilience — dom-{} dark at {:.3} s ({} boards lost, {} spares adopted)",
            victim % sc.shards,
            outage_s,
            heal.lost.len(),
            heal.adopted.len()
        ),
        &["mechanism", "count", "notes"],
    );
    resilience.row(&[
        "hedged requests".into(),
        r.hedges.to_string(),
        format!(
            "{} won, {} duplicates suppressed",
            r.hedge_wins, r.hedge_suppressed
        ),
    ]);
    resilience.row(&[
        "failover replays".into(),
        r.replays.to_string(),
        "in-flight work re-issued at breaker open".into(),
    ]);
    resilience.row(&[
        "breaker transitions".into(),
        format!(
            "{}/{}/{}",
            r.breaker_transitions_to("open"),
            r.breaker_transitions_to("half-open"),
            r.breaker_transitions_to("closed")
        ),
        "open / half-open / closed".into(),
    ]);
    resilience.row(&[
        "heals".into(),
        r.heals.len().to_string(),
        format!(
            "restore latency {:.3} s, {} placement probes",
            heal.restore_s - heal.t_s,
            heal.plan_evaluations
        ),
    ]);
    resilience.row(&[
        "postmortems".into(),
        r.postmortems().to_string(),
        "frozen on shard-loss batch timeouts".into(),
    ]);

    let mut qos = Table::new(
        "Multi-tenant QoS through the outage — hedges never touch budgets",
        &[
            "tenant",
            "offered",
            "in-budget",
            "over-budget",
            "shed@fleet",
            "shed@shard",
            "completed",
            "in-budget completion",
        ],
    );
    for t in &r.tenants {
        qos.row(&[
            t.name.clone(),
            t.offered.to_string(),
            t.admitted_in_budget.to_string(),
            t.admitted_over_budget.to_string(),
            t.shed_fleet.to_string(),
            t.shed_shard.to_string(),
            t.completed.to_string(),
            format!("{:.1}%", 100.0 * t.in_budget_completion_rate()),
        ]);
    }

    if let Ok(path) = std::env::var("FPGACCEL_FLEETCHAOS_REPORT") {
        std::fs::write(&path, json_report(&sc, &r, victim, outage_s, deterministic))
            .expect("fleetchaos report artifact writes");
    }

    format!(
        "Fleetchaos — correlated domain outage, breakers, hedging, and self-healing \
         re-placement (seed {FLEET_SEED:#x}, fault seed {FAULT_SEED:#x}, {} boards, \
         {} shards = {} domains)\n{}\n{}\n\
         Outage: dom-{} (shard {victim}) dark at {:.3} s of {:.3} s; {} serving board(s) \
         lost, {} spare(s) adopted by the heal, breaker parked open until restore \
         (+{:.3} s) and probed back closed.\n\
         Completion: 100% of in-budget traffic for every tenant; {} hedge(s), {} \
         replay(s), {} suppressed duplicate(s) — none double-counted in any budget.\n\
         Determinism: the cold and the warm-reloaded runs are {}.",
        sc.devices,
        sc.shards,
        sc.shards,
        resilience.render(),
        qos.render(),
        victim % sc.shards,
        outage_s,
        sc.duration_s,
        heal.lost.len(),
        heal.adopted.len(),
        heal.restore_s - heal.t_s,
        r.hedges,
        r.replays,
        r.hedge_suppressed,
        if deterministic {
            "identical"
        } else {
            "DIVERGENT"
        },
    )
}

/// The `fleetchaos` experiment report.
pub fn fleetchaos() -> String {
    fleetchaos_at(fleet_devices())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleetchaos_absorbs_the_outage_at_smoke_scale() {
        // The experiment self-asserts the acceptance bars — 100%
        // in-budget completion, the breaker cycle, the heal, and the
        // cold/warm byte-identity — so rendering without a panic IS the
        // test.
        let report = fleetchaos_at(48);
        assert!(report.contains("100% of in-budget traffic"));
        assert!(report.contains("identical"));
    }
}
