//! The `pipeline` experiment: streaming dataflow execution vs staged.
//!
//! For each (model, platform) configuration the experiment compiles the
//! staged baseline (layer-by-layer through global memory), auto-tunes the
//! dataflow planner's FIFO depth policy and stage cap with
//! [`fpgaccel_core::tune_pipeline`], deploys the winning pipeline of
//! channel-connected autorun stages, and simulates both on the same batch.
//! The report shows the throughput win and the DRAM round trips the
//! channels eliminate, prints every placement decision the planner took,
//! and details the A10 MobileNet segments that do *not* fit — each demoted
//! to staged execution with the structured per-resource over-budget
//! reason. The tuning database round-trips through JSON and the second
//! tuning pass is served entirely from it.
//!
//! Environment knob: `FPGACCEL_PIPELINE_REPORT` names a JSON file to write
//! the machine-readable summary to (for CI).

use crate::table::Table;
use fpgaccel_core::bitstreams::{mobilenet_tile, optimized_config};
use fpgaccel_core::{
    tune_pipeline, BatchStats, Deployment, ExecutionPlan, Flow, OptimizationConfig, TilingPreset,
};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_pipeline::{
    record_plan_metrics, FallbackReason, PipelineOpts, PipelinePlan, PlanItem,
};
use fpgaccel_tensor::models::Model;
use fpgaccel_trace::{Registry, Tracer};
use fpgaccel_tune::pipeline::policy_id;
use fpgaccel_tune::TuningDb;

/// Images per simulated batch (enough to amortize the pipeline fill).
const BATCH: usize = 32;

/// The evaluated configurations. The A10 doubles as the over-budget
/// demonstration: two MobileNet segments exceed its BRAM budget and the
/// planner degrades them to staged execution.
const CONFIGS: [(Model, FpgaPlatform); 4] = [
    (Model::LeNet5, FpgaPlatform::Stratix10Sx),
    (Model::MobileNetV1, FpgaPlatform::Stratix10Sx),
    (Model::MobileNetV1, FpgaPlatform::Stratix10Mx),
    (Model::MobileNetV1, FpgaPlatform::Arria10Gx),
];

/// The staged (layer-by-layer) baseline: every activation tensor makes a
/// full global-memory round trip between layers.
fn staged_config(model: Model, platform: FpgaPlatform) -> OptimizationConfig {
    match model {
        Model::LeNet5 => OptimizationConfig::folded(TilingPreset::Naive),
        _ => optimized_config(model, platform),
    }
}

/// The dataflow base configuration the planner knobs are tuned on top of.
fn dataflow_base(model: Model, platform: FpgaPlatform) -> OptimizationConfig {
    match model {
        Model::LeNet5 => OptimizationConfig::dataflow(TilingPreset::Naive),
        _ => OptimizationConfig::dataflow(TilingPreset::MobileNet {
            one_by_one: mobilenet_tile(platform),
        }),
    }
}

/// One configuration's measured outcome.
struct Outcome {
    model: Model,
    platform: FpgaPlatform,
    staged: BatchStats,
    pipelined: BatchStats,
    summary: PipelinePlan,
    opts: PipelineOpts,
    evaluations: usize,
    deployment: Deployment,
}

impl Outcome {
    fn speedup(&self) -> f64 {
        self.staged.seconds / self.pipelined.seconds
    }

    fn over_budget_fallbacks(&self) -> usize {
        self.summary
            .fallbacks
            .iter()
            .filter(|f| matches!(f.reason, FallbackReason::OverBudget(_)))
            .count()
    }
}

/// Compiles, tunes and simulates one configuration against `db`.
fn run_config(
    model: Model,
    platform: FpgaPlatform,
    db: &mut TuningDb,
    registry: &Registry,
) -> Outcome {
    let tracer = Tracer::disabled();
    let flow = Flow::new(model, platform);
    let staged_dep = flow
        .compile(&staged_config(model, platform))
        .expect("staged baseline compiles");
    let staged = staged_dep.simulate_batch(BATCH);

    let base = dataflow_base(model, platform);
    let tuned = tune_pipeline(&flow, base.clone(), db, &tracer, registry)
        .expect("at least one pipeline candidate plans");
    let deployment = flow
        .compile(&base.with_pipeline(tuned.opts))
        .expect("tuned pipeline compiles");
    let pipelined = deployment.simulate_batch(BATCH);
    let ExecutionPlan::Dataflow(plan) = &deployment.plan else {
        unreachable!("dataflow config produces a dataflow plan");
    };
    record_plan_metrics(registry, model.name(), &plan.summary);
    Outcome {
        model,
        platform,
        staged,
        pipelined,
        summary: plan.summary.clone(),
        opts: tuned.opts,
        evaluations: tuned.record.evaluations,
        deployment,
    }
}

/// `first..last (n)` for a run of node ids, resolved to layer names.
fn span_label(dep: &Deployment, ids: &[usize]) -> String {
    let name = |id: usize| dep.graph.nodes[id].name.clone();
    match ids {
        [] => "-".into(),
        [only] => name(*only),
        _ => format!(
            "{}..{} ({})",
            name(ids[0]),
            name(*ids.last().unwrap()),
            ids.len()
        ),
    }
}

/// Escapes a string for embedding in the JSON artifact.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The machine-readable summary written to `FPGACCEL_PIPELINE_REPORT` for
/// the CI smoke job.
fn json_report(outcomes: &[Outcome], warm_hits: usize, deterministic: bool) -> String {
    let configs: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"model\":{},\"platform\":{},\"staged_seconds_per_image\":{:.9},\
                 \"pipelined_seconds_per_image\":{:.9},\"staged_fps\":{:.3},\
                 \"pipelined_fps\":{:.3},\"speedup\":{:.4},\"policy\":{},\"max_stages\":{},\
                 \"pipelined_stages\":{},\"staged_nodes\":{},\"fallbacks\":{},\
                 \"over_budget_fallbacks\":{},\"dram_elems_saved\":{}}}",
                json_str(o.model.name()),
                json_str(&format!("{:?}", o.platform)),
                o.staged.seconds / BATCH as f64,
                o.pipelined.seconds / BATCH as f64,
                o.staged.fps,
                o.pipelined.fps,
                o.speedup(),
                json_str(&policy_id(o.opts.depth)),
                o.opts.max_stages,
                o.summary.pipelined_nodes,
                o.summary.staged_nodes,
                o.summary.fallbacks.len(),
                o.over_budget_fallbacks(),
                o.summary.dram_elems_saved,
            )
        })
        .collect();
    let oversize: usize = outcomes.iter().map(Outcome::over_budget_fallbacks).sum();
    let all_faster = outcomes
        .iter()
        .all(|o| o.pipelined.seconds <= o.staged.seconds);
    format!(
        "{{\n  \"batch\": {BATCH},\n  \"configs\": [{}],\n  \
         \"all_pipelined_not_slower\": {all_faster},\n  \"oversize_fallbacks\": {oversize},\n  \
         \"warm_db_hits\": {warm_hits},\n  \"deterministic\": {deterministic}\n}}\n",
        configs.join(", "),
    )
}

/// Runs the experiment and renders the report (see the module docs).
pub fn pipeline() -> String {
    let registry = Registry::default();
    let mut db = TuningDb::new();
    let outcomes: Vec<Outcome> = CONFIGS
        .iter()
        .map(|&(m, p)| run_config(m, p, &mut db, &registry))
        .collect();

    // Determinism probe: the smallest configuration re-tuned into a fresh
    // database and re-simulated must reproduce byte for byte.
    let probe = {
        let (m, p) = CONFIGS[0];
        let mut fresh = TuningDb::new();
        run_config(m, p, &mut fresh, &Registry::default())
    };
    let row_of = |o: &Outcome| {
        format!(
            "{:?}/{:?} {:.6}/{:.6} {} {:?}",
            o.model, o.platform, o.staged.seconds, o.pipelined.seconds, o.evaluations, o.opts
        )
    };
    let deterministic = row_of(&probe) == row_of(&outcomes[0]);

    // The database round-trips through its JSON rendering; a second tuning
    // pass over every configuration must be served from it without any
    // search.
    let reloaded = TuningDb::from_json(&db.to_json()).expect("tuning database round-trips");
    let mut warm = reloaded.clone();
    let warm_hits = CONFIGS
        .iter()
        .filter(|&&(m, p)| {
            let flow = Flow::new(m, p);
            tune_pipeline(
                &flow,
                dataflow_base(m, p),
                &mut warm,
                &Tracer::disabled(),
                &registry,
            )
            .map(|t| t.from_cache)
            .unwrap_or(false)
        })
        .count();

    let mut perf = Table::new(
        format!("Dataflow pipeline vs staged execution (batch {BATCH})"),
        &[
            "model",
            "platform",
            "staged FPS",
            "pipelined FPS",
            "speedup",
            "policy",
            "stages",
            "staged nodes",
            "fallbacks",
            "DRAM elems saved/img",
        ],
    );
    for o in &outcomes {
        perf.row(&[
            o.model.name().into(),
            format!("{}", o.platform),
            format!("{:.1}", o.staged.fps),
            format!("{:.1}", o.pipelined.fps),
            format!("{:.2}x", o.speedup()),
            format!("{} cap {}", policy_id(o.opts.depth), o.opts.max_stages),
            o.summary.pipelined_nodes.to_string(),
            o.summary.staged_nodes.to_string(),
            o.summary.fallbacks.len().to_string(),
            o.summary.dram_elems_saved.to_string(),
        ]);
    }

    let mut decisions = Table::new(
        "Planner placement decisions",
        &["config", "item", "placement", "nodes", "detail"],
    );
    for o in &outcomes {
        for (i, item) in o.summary.items.iter().enumerate() {
            let (kind, ids, detail) = match item {
                PlanItem::Pipelined(seg) => (
                    "pipelined",
                    &seg.ids,
                    if seg.depths.is_empty() {
                        "single stage".to_string()
                    } else {
                        format!(
                            "FIFO depths {}..{} elems",
                            seg.depths.iter().min().unwrap(),
                            seg.depths.iter().max().unwrap()
                        )
                    },
                ),
                PlanItem::Staged(ids) => ("staged", ids, "global-memory round trips".to_string()),
            };
            decisions.row(&[
                format!("{}/{}", o.model.name(), o.platform),
                format!("#{i}"),
                kind.into(),
                span_label(&o.deployment, ids),
                detail,
            ]);
        }
    }

    let mut oversize = Table::new(
        "Over-budget segments degraded to staged execution (requested/available)",
        &[
            "config", "nodes", "limiting", "BRAM", "ALUTs", "FFs", "DSPs",
        ],
    );
    for o in &outcomes {
        for f in &o.summary.fallbacks {
            let FallbackReason::OverBudget(over) = &f.reason else {
                continue;
            };
            let cell = |i: usize| {
                let (_, req, avail) = over.rows()[i];
                format!("{req}/{avail}")
            };
            oversize.row(&[
                format!("{}/{}", o.model.name(), o.platform),
                if f.nodes.len() <= 4 {
                    f.nodes.join(", ")
                } else {
                    format!(
                        "{} … (+{} more)",
                        f.nodes[..4].join(", "),
                        f.nodes.len() - 4
                    )
                },
                over.limiting.into(),
                cell(0),
                cell(1),
                cell(2),
                cell(3),
            ]);
        }
    }

    let metric = |name: &str, model: &str| {
        registry
            .value(name, &[("model", model)])
            .unwrap_or_default()
    };
    let metrics_line = format!(
        "Metrics: pipeline_stages_total {}={:.0} {}={:.0} (across platforms), \
         pipeline_fallbacks_total {}={:.0}, pipeline_tune_evaluations_total \
         mobilenet_v1/Arria10Gx={:.0}.",
        Model::LeNet5.name(),
        metric("pipeline_stages_total", Model::LeNet5.name()),
        Model::MobileNetV1.name(),
        metric("pipeline_stages_total", Model::MobileNetV1.name()),
        Model::MobileNetV1.name(),
        metric("pipeline_fallbacks_total", Model::MobileNetV1.name()),
        registry
            .value(
                "pipeline_tune_evaluations_total",
                &[("model", "mobilenet_v1"), ("platform", "Arria10Gx")],
            )
            .unwrap_or_default(),
    );

    if let Ok(path) = std::env::var("FPGACCEL_PIPELINE_REPORT") {
        std::fs::write(&path, json_report(&outcomes, warm_hits, deterministic))
            .expect("pipeline report artifact writes");
    }

    let saved: u64 = outcomes.iter().map(|o| o.summary.dram_elems_saved).sum();
    format!(
        "Streaming dataflow pipeline — channel-connected autorun stages\n{}\n{}\n{}\n\
         {metrics_line}\n\
         Every configuration runs strictly faster pipelined than staged: inter-stage \
         activations stream through on-chip channels instead of global memory, eliminating \
         {saved} DRAM round-trip elements per image across the four deployments. The two \
         A10 MobileNet segments above exceed the device budget and degrade gracefully to \
         staged execution with the structured per-resource reason.\n\
         Tuning database: winners for {}/{} configurations served from the JSON round-tripped \
         database on the second pass (no search re-ran).\n\
         Determinism: re-tuning and re-simulating {} from a fresh database is {}.",
        perf.render(),
        decisions.render(),
        oversize.render(),
        warm_hits,
        CONFIGS.len(),
        CONFIGS[0].0.name(),
        if deterministic {
            "byte-identical"
        } else {
            "DIVERGENT"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_beats_staged_everywhere_and_a10_reports_over_budget() {
        let registry = Registry::default();
        let mut db = TuningDb::new();
        let lenet = run_config(Model::LeNet5, FpgaPlatform::Stratix10Sx, &mut db, &registry);
        assert!(lenet.pipelined.seconds < lenet.staged.seconds);
        assert!(lenet.summary.dram_elems_saved > 0);
        let a10 = run_config(
            Model::MobileNetV1,
            FpgaPlatform::Arria10Gx,
            &mut db,
            &registry,
        );
        assert!(a10.pipelined.seconds < a10.staged.seconds);
        assert!(
            a10.over_budget_fallbacks() >= 1,
            "the A10 must demote at least one over-budget segment"
        );
        for f in &a10.summary.fallbacks {
            if let FallbackReason::OverBudget(over) = &f.reason {
                let (req, avail) = over.limit();
                assert!(req > avail, "structured reason carries the violation");
                assert!(!f.nodes.is_empty());
            }
        }
    }

    #[test]
    fn pipeline_report_is_deterministic() {
        assert_eq!(pipeline(), pipeline());
    }
}
