//! The `quant` experiment: first-class quantized inference.
//!
//! Exercises the calibration-based quantization flow end to end on
//! LeNet-5 (S10SX): the differential verification harness compares the
//! quantized host grids against the f32 reference per rung and per layer,
//! every rung's compiled narrow-MAC kernels re-verify through the IR
//! interpreter, the resource/precision ladder prices each rung's
//! deployment, and the greedy per-layer mixed-precision search finds an
//! assignment under a 5% error budget (cold, then warm from the tuning
//! database without spending an evaluation).
//!
//! Environment knobs: `FPGACCEL_QUANT_REPORT` writes a machine-readable
//! JSON report (the CI quant-smoke lane jq-validates it); the stdout
//! report itself is byte-identical run to run (`docs/quant_golden.txt`).

use crate::table::{f, pct, Table};
use fpgaccel_core::{
    tune_precision, verify_deployment, Deployment, Flow, OptimizationConfig, QuantSpec,
};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;
use fpgaccel_tensor::quant::{diff_outputs, DiffReport, QuantPrecision};
use fpgaccel_trace::{Registry, Tracer};
use fpgaccel_tune::TuningDb;

/// Error budget the mixed-precision search runs under (worst per-layer
/// element error vs f32, same bound the core acceptance tests use).
const MIXED_BUDGET: f64 = 0.05;

/// Images per simulated batch for the ladder throughput column.
const LADDER_BATCH: usize = 100;

/// One precision rung of the differential harness: the quantized LeNet
/// deployment, its host-grid differential report, and whether the compiled
/// kernels (run through the IR interpreter) also verified.
struct Rung {
    precision: QuantPrecision,
    report: DiffReport,
    kernels_verified: bool,
    deployment: Deployment,
}

fn run_rung(precision: QuantPrecision) -> Rung {
    let spec = QuantSpec::new(precision);
    let flow = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx);
    let deployment = flow
        .compile(&OptimizationConfig::folded_base().with_quant(spec))
        .expect("quantized LeNet-5 fits the S10SX");
    // Probe with a calibration-batch member: the per-layer bounds assume
    // saturation-free coverage of the calibrated ranges.
    let probe = &flow.calibration_batch(&spec)[0];
    let kernels_verified = verify_deployment(&deployment, probe, 1e-3).is_ok();
    let got = deployment
        .quantized()
        .expect("deployment carries its quantization")
        .execute_all(probe)
        .expect("quantized host execution succeeds");
    let reference = deployment.graph.execute_all(probe);
    let q = deployment.quant.as_ref().expect("quantized deployment");
    let report = diff_outputs(&deployment.graph, &q.calib, q.precision, &got, &reference);
    Rung {
        precision,
        report,
        kernels_verified,
        deployment,
    }
}

/// Canonical rendering of a differential report, used for the determinism
/// digest: every layer's worst element, byte for byte.
fn report_digest(r: &DiffReport) -> String {
    r.layers
        .iter()
        .map(|l| format!("{} {} {:.6e} {:.6e};", l.node_id, l.node, l.err, l.tol))
        .collect()
}

fn json_str(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the quantized-inference experiment report.
pub fn quant() -> String {
    let spec = QuantSpec::new(QuantPrecision::Int8);
    let rungs: Vec<Rung> = QuantPrecision::ALL.into_iter().map(run_rung).collect();

    // Per-rung summary: worst layer of each differential report plus the
    // compiled-kernel verdict.
    let mut summary = Table::new(
        "Differential verification — LeNet-5 quantized vs f32 (S10SX, calibration probe)",
        &[
            "precision",
            "layers",
            "worst layer",
            "worst |err|",
            "tol",
            "err/tol",
            "kernels",
            "pass",
        ],
    );
    for r in &rungs {
        let w = r.report.worst().expect("LeNet has layers");
        summary.row(&[
            r.precision.name().into(),
            r.report.layers.len().to_string(),
            format!("{} ({})", w.node, w.kind),
            format!("{:.3e}", w.err),
            format!("{:.3e}", w.tol),
            format!("{:.3}", w.err / w.tol.max(f32::MIN_POSITIVE)),
            if r.kernels_verified {
                "verified".into()
            } else {
                "FAILED".into()
            },
            if r.report.pass() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }

    // Per-layer worst-case error, one row per layer, one err/tol pair per
    // rung — the table the golden test pins.
    let mut layers = Table::new(
        "Per-layer worst-case error vs f32 — LeNet-5 (|err| / tolerance)",
        &["layer", "kind", "fp16", "int16", "int8"],
    );
    for (i, base) in rungs[0].report.layers.iter().enumerate() {
        let mut row = vec![base.node.clone(), base.kind.into()];
        for r in &rungs {
            let l = &r.report.layers[i];
            row.push(format!("{:.2e} / {:.2e}", l.err, l.tol));
        }
        layers.row(&row);
    }

    // Resource/precision ladder: the f32 primary plus every quantized rung,
    // priced by the AOC model — the same ladder a brownout pool stages.
    let f32_deployment = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
        .compile(&OptimizationConfig::folded_base())
        .expect("f32 LeNet-5 fits the S10SX");
    let f32_fps = f32_deployment.simulate_batch(LADDER_BATCH).fps;
    let mut ladder = Table::new(
        "Precision ladder — LeNet-5 folded deployments (S10SX)",
        &["rung", "precision", "DSP", "RAM", "FPS", "vs f32"],
    );
    let mut ladder_json = Vec::new();
    let mut ladder_row = |rung: usize, name: &str, d: &Deployment| {
        let (_, ram, dsp) = d.bitstream.utilization;
        let fps = d.simulate_batch(LADDER_BATCH).fps;
        ladder.row(&[
            rung.to_string(),
            name.into(),
            pct(dsp),
            pct(ram),
            f(fps),
            format!("{:.2}x", fps / f32_fps),
        ]);
        ladder_json.push(format!(
            "{{\"rung\":{rung},\"precision\":{},\"dsp_pct\":{:.3},\"ram_pct\":{:.3},\
             \"fps\":{:.3}}}",
            json_str(name),
            dsp,
            ram,
            fps
        ));
    };
    ladder_row(0, "f32", &f32_deployment);
    for (i, r) in rungs.iter().enumerate() {
        ladder_row(i + 1, r.precision.name(), &r.deployment);
    }

    // Mixed precision: greedy per-layer demotion under the error budget,
    // cold from an empty database, then warm from the record it wrote.
    let flow = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx);
    let mut db = TuningDb::new();
    let registry = Registry::default();
    let cold = tune_precision(
        &flow,
        &spec,
        MIXED_BUDGET,
        &mut db,
        &Tracer::disabled(),
        &registry,
    )
    .expect("mixed-precision search succeeds on LeNet-5");
    let warm = tune_precision(
        &flow,
        &spec,
        MIXED_BUDGET,
        &mut db,
        &Tracer::disabled(),
        &registry,
    )
    .expect("warm mixed-precision lookup succeeds");
    assert!(
        warm.from_cache && warm.assignment == cold.assignment,
        "the warm path must serve the cold search's record from the database"
    );
    let mut mixed = Table::new(
        "Mixed precision — greedy per-layer demotion, 5% error budget (LeNet-5, S10SX)",
        &[
            "path",
            "DSPs",
            "baseline DSPs",
            "demoted",
            "worst err",
            "evals",
        ],
    );
    mixed.row(&[
        "cold search".into(),
        cold.record.dsps.to_string(),
        cold.record.baseline_dsps.to_string(),
        format!("{}/{}", cold.record.demoted(), cold.record.assignment.len()),
        format!("{:.3e}", cold.record.worst_error),
        cold.record.evaluations.to_string(),
    ]);
    mixed.row(&[
        "warm (db hit)".into(),
        warm.record.dsps.to_string(),
        warm.record.baseline_dsps.to_string(),
        format!("{}/{}", warm.record.demoted(), warm.record.assignment.len()),
        format!("{:.3e}", warm.record.worst_error),
        "0".into(),
    ]);
    let demoted: Vec<String> = cold
        .record
        .assignment
        .iter()
        .filter(|(_, p)| p != "F32")
        .map(|(layer, p)| format!("{layer}->{p}"))
        .collect();

    // Determinism: the int8 rung rerun from scratch must reproduce every
    // per-layer worst element byte for byte (seeded calibration batch =>
    // same grids => same errors).
    let rerun = run_rung(QuantPrecision::Int8);
    let int8 = rungs
        .iter()
        .find(|r| r.precision == QuantPrecision::Int8)
        .expect("int8 rung ran");
    let deterministic = report_digest(&rerun.report) == report_digest(&int8.report);

    if let Ok(path) = std::env::var("FPGACCEL_QUANT_REPORT") {
        let precisions: Vec<String> = rungs
            .iter()
            .map(|r| {
                let w = r.report.worst().expect("LeNet has layers");
                format!(
                    "{{\"precision\":{},\"layers\":{},\"worst_layer\":{},\
                     \"worst_err\":{:.6e},\"worst_tol\":{:.6e},\"within\":{},\
                     \"kernels_verified\":{}}}",
                    json_str(r.precision.name()),
                    r.report.layers.len(),
                    json_str(&w.node),
                    w.err,
                    w.tol,
                    r.report.pass(),
                    r.kernels_verified
                )
            })
            .collect();
        let report = format!(
            "{{\n  \"seed\": {},\n  \"deterministic\": {},\n  \"precisions\": [{}],\n  \
             \"ladder\": [{}],\n  \"mixed\": {{\"baseline_dsps\":{},\"dsps\":{},\
             \"demoted\":{},\"layers\":{},\"worst_error\":{:.6e},\"error_budget\":{},\
             \"evaluations\":{},\"warm_from_cache\":{}}}\n}}\n",
            spec.calibration_seed,
            deterministic,
            precisions.join(","),
            ladder_json.join(","),
            cold.record.baseline_dsps,
            cold.record.dsps,
            cold.record.demoted(),
            cold.record.assignment.len(),
            cold.record.worst_error,
            cold.record.error_budget,
            cold.record.evaluations,
            warm.from_cache
        );
        std::fs::write(&path, report).expect("quant report artifact writes");
    }

    format!(
        "Quantized inference — calibration, differential verification, mixed precision \
         (seed {:#x})\n{}\n{}\n{}\n{}\nDemoted layers: {}.\n\
         Every rung's host grids stay inside the documented (rtol, atol) envelope and the \
         compiled narrow-MAC kernels re-verify through the IR interpreter; int8 packs two \
         MACs per DSP, which is what moves the ladder's DSP column. The greedy search \
         demotes every layer whose differential stays under the budget ({} of {} on \
         LeNet-5), saving {} modeled DSP block(s) against the all-f32 baseline at a worst \
         per-layer error of {:.3e}.\n\
         Determinism: two runs of the int8 differential are {} (seeded calibration => \
         same grids => same errors, byte for byte).",
        spec.calibration_seed,
        summary.render(),
        layers.render(),
        ladder.render(),
        mixed.render(),
        demoted.join(", "),
        cold.record.demoted(),
        cold.record.assignment.len(),
        cold.record.baseline_dsps - cold.record.dsps,
        cold.record.worst_error,
        if deterministic {
            "identical"
        } else {
            "DIVERGENT"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rung_passes_and_the_report_is_deterministic() {
        let a = quant();
        assert!(!a.contains("FAILED") && !a.contains("| NO"), "{a}");
        assert!(a.contains("identical"), "{a}");
        assert_eq!(a, quant(), "quant report must be byte-identical run to run");
    }
}
