//! # fpgaccel-bench
//!
//! The benchmark harness regenerating every table and figure of the thesis
//! evaluation (Chapter 6 + Appendix A). The `repro` binary prints each
//! experiment side by side with the thesis-reported values from [`paper`];
//! the wall-clock benches under `benches/` measure the real Rust substrate.
//!
//! Run `cargo run -p fpgaccel-bench --bin repro --release -- all` to
//! regenerate everything, or pass an experiment id (`fig6_1`, `tab6_9`,
//! `appendix_a`, ...).

#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod fleet;
pub mod fleetchaos;
pub mod log;
pub mod paper;
pub mod pipeline;
pub mod quant;
pub mod rollout;
pub mod serving;
pub mod table;
pub mod timing;
pub mod tracing;
pub mod trajectory;
pub mod tune;
