//! The `rollout` experiment: safe live upgrades of a serving pool.
//!
//! The three-device serve pool runs the co-served LeNet+MobileNet mix
//! while three rollouts execute against live traffic: a MobileNet upgrade
//! to the auto-tuned folded configuration that a committed fault plan
//! sabotages (one reprogram failure absorbed by retry, then a corrupted
//! canary shadow batch forcing an automatic rollback), a clean retry of
//! the same upgrade that promotes wave by wave, and a canary-verified
//! LeNet upgrade checked against the host reference. Every request
//! completes — drained devices hand their traffic to the rest of the pool
//! — and the whole scenario reproduces byte for byte.
//!
//! A second section browns MobileNet out under overload: with a
//! pre-deployed Int8 variant staged, the server trades precision for
//! availability and sheds strictly less than the same trace without
//! brownout.
//!
//! Environment knob: `FPGACCEL_ROLLOUT_REPORT` names a JSON file to write
//! the machine-readable summary to (for CI).

use crate::serving::{batched, build_pool_injected, mixed_trace};
use crate::table::Table;
use fpgaccel_aoc::{AocOptions, Precision};
use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_core::{OptimizationConfig, TilingPreset};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_fault::{shadow_target, FaultEvent, FaultInjector, FaultKind, FaultPlan};
use fpgaccel_serve::{
    AdmissionPolicy, BatchPolicy, BrownoutPolicy, DevicePool, Request, RolloutOutcome,
    RolloutPolicy, RolloutSpec, RunResult, ServeConfig, Server,
};
use fpgaccel_tensor::{data, models::Model};
use fpgaccel_trace::Tracer;
use fpgaccel_tune::TuningDb;

/// Seed recorded on the committed plan (provenance only — the schedule is
/// hand-written).
const ROLLOUT_SEED: u64 = 0x5AFE;

/// When the sabotaged MobileNet upgrade starts.
const UPGRADE_1_S: f64 = 0.05;
/// When the clean retry starts.
const UPGRADE_2_S: f64 = 0.18;
/// When the canary-verified LeNet upgrade starts.
const UPGRADE_3_S: f64 = 0.30;

/// The auto-tuned folded MobileNet configuration (the warm
/// `Flow::with_tuned_config` shape: A10 Table 6.6 tile, F32).
fn tuned_config() -> OptimizationConfig {
    let mut cfg = OptimizationConfig::folded(TilingPreset::Custom1x1 { tile: (7, 8, 8) });
    cfg.label = "Folded-Tuned".into();
    cfg.aoc = AocOptions::with_precision(Precision::F32);
    cfg
}

/// The committed sabotage: the first reprogram attempt of the upgrade
/// fails (absorbed by retry), and the canary's shadow read-back is
/// corrupted — targeted at `s10sx-0#shadow` so production batches cannot
/// consume the event — forcing an automatic rollback.
pub fn committed_plan() -> FaultPlan {
    FaultPlan::new(
        ROLLOUT_SEED,
        vec![
            FaultEvent {
                at_s: UPGRADE_1_S,
                target: "s10sx-0".into(),
                kind: FaultKind::ReprogramFail,
            },
            FaultEvent {
                at_s: UPGRADE_1_S,
                target: shadow_target("s10sx-0"),
                kind: FaultKind::TransferCorrupt,
            },
        ],
    )
}

/// The three scheduled rollouts of the committed scenario.
fn rollout_specs() -> Vec<RolloutSpec> {
    let mut lenet_v2 = optimized_config(Model::LeNet5, FpgaPlatform::Stratix10Sx);
    lenet_v2.label = format!("{}-v2", lenet_v2.label);
    vec![
        RolloutSpec {
            at_s: UPGRADE_1_S,
            model: Model::MobileNetV1,
            to: tuned_config(),
            verify_input: None,
            adopt: Vec::new(),
            policy: RolloutPolicy::default(),
        },
        RolloutSpec {
            at_s: UPGRADE_2_S,
            model: Model::MobileNetV1,
            to: tuned_config(),
            verify_input: None,
            adopt: Vec::new(),
            policy: RolloutPolicy::default(),
        },
        RolloutSpec {
            at_s: UPGRADE_3_S,
            model: Model::LeNet5,
            to: lenet_v2,
            verify_input: Some(data::synthetic_digit(3, 7)),
            adopt: Vec::new(),
            policy: RolloutPolicy::default(),
        },
    ]
}

/// The serve workload with deadlines stripped: the rollout scenario
/// measures completion through upgrades, so a request delayed by a
/// draining device still counts as served.
fn rollout_trace(pool: &DevicePool, mult: f64) -> Vec<Request> {
    let mut trace = mixed_trace(pool, mult);
    for r in &mut trace {
        r.deadline_s = None;
    }
    trace
}

/// Offered load relative to full-pool capacity, with headroom for the
/// drained devices' traffic to land elsewhere.
const ROLLOUT_LOAD: f64 = 0.75;

fn run_committed(tracer: &Tracer) -> (usize, RunResult) {
    let injector = FaultInjector::new(committed_plan());
    let pool = build_pool_injected(&Tracer::disabled(), &injector);
    let trace = rollout_trace(&pool, ROLLOUT_LOAD);
    let offered = trace.len();
    let mut server = Server::new(
        pool,
        ServeConfig {
            batch: batched(),
            // Deep queue, no deadlines: during a wave the surviving
            // devices fall behind by design — requests queue up and drain
            // after promotion instead of shedding, so the acceptance bar
            // is 100% of offered load completed through the upgrade.
            admission: AdmissionPolicy {
                queue_capacity: 4096,
                default_deadline_s: None,
            },
            fault: Default::default(),
            brownout: Default::default(),
        },
    )
    .with_tracer(tracer);
    for spec in rollout_specs() {
        server.schedule_rollout(spec);
    }
    (offered, server.run_open_loop(trace))
}

/// A stable single-line digest of a committed run, for the determinism
/// check.
fn digest(offered: usize, r: &RunResult) -> String {
    let rollouts: Vec<String> = r
        .rollouts
        .iter()
        .flat_map(|rep| {
            rep.events
                .iter()
                .map(|e| format!("{:.9}:{}:{}", e.t_s, e.device, e.action))
        })
        .collect();
    let devices: Vec<String> = r
        .devices
        .iter()
        .flat_map(|d| {
            d.deployments
                .iter()
                .map(|(m, l)| format!("{}:{}:{l}", d.device, m.name()))
        })
        .collect();
    format!(
        "offered={offered} completed={} shed={} failed={} rollouts=[{}] devices=[{}]",
        r.metrics.completed,
        r.metrics.shed(),
        r.failures.len(),
        rollouts.join(","),
        devices.join(",")
    )
}

// ---------------------------------------------------------------------------
// Brownout sub-experiment
// ---------------------------------------------------------------------------

/// MobileNet on the two Stratix 10 parts, with the Int8 relaxed-precision
/// variant pre-deployed as the brownout fallback.
fn brownout_pool() -> DevicePool {
    let mut pool = DevicePool::new();
    for p in [FpgaPlatform::Stratix10Sx, FpgaPlatform::Stratix10Mx] {
        let d = pool.add_device(p);
        let cfg = optimized_config(Model::MobileNetV1, p);
        pool.deploy(d, Model::MobileNetV1, &cfg).unwrap();
        let mut int8 = cfg.clone();
        int8.aoc = AocOptions::with_precision(Precision::Int8);
        int8.label = format!("{}-Int8", int8.label);
        pool.deploy_brownout(d, Model::MobileNetV1, &TuningDb::new(), &int8)
            .unwrap();
    }
    pool
}

struct BrownoutOutcome {
    offered: usize,
    completed: u64,
    shed: usize,
    brownout_served: f64,
    switches_enter: f64,
    switches_exit: f64,
}

/// Runs the overload trace with brownout `enabled` or not. The offered
/// rate sits between the pool's full-precision and Int8 capacities, so
/// the primary deployment falls behind while the relaxed-precision
/// variant keeps up.
fn brownout_run(enabled: bool) -> BrownoutOutcome {
    let pool = brownout_pool();
    let (mut f32_rate, mut int8_rate, mut max_img) = (0.0f64, 0.0f64, 0.0f64);
    for d in pool.devices() {
        let f = d.latency_model(Model::MobileNetV1).unwrap().seconds(4) / 4.0;
        let i = d
            .brownout_latency_model(Model::MobileNetV1)
            .unwrap()
            .seconds(4)
            / 4.0;
        f32_rate += 1.0 / f;
        int8_rate += 1.0 / i;
        max_img = max_img.max(f);
    }
    let spacing = 2.0 / (f32_rate + int8_rate);
    let deadline = 8.0 * max_img;
    let offered = 161usize;
    let mut reqs: Vec<Request> = (0..offered - 1)
        .map(|i| Request {
            id: i as u64,
            model: Model::MobileNetV1,
            arrival_s: i as f64 * spacing,
            deadline_s: Some(deadline),
            input: None,
        })
        .collect();
    // One straggler after the burst: the idle gap exceeds
    // `promote_idle_s`, so the browned-out pool promotes back to full
    // precision and the straggler is served at f32.
    reqs.push(Request {
        id: offered as u64,
        model: Model::MobileNetV1,
        arrival_s: (offered - 2) as f64 * spacing + 300.0 * max_img,
        deadline_s: Some(deadline),
        input: None,
    });
    let r = Server::new(
        pool,
        ServeConfig {
            batch: BatchPolicy {
                max_batch: 4,
                max_wait_s: spacing,
            },
            admission: AdmissionPolicy {
                queue_capacity: 64,
                default_deadline_s: None,
            },
            fault: Default::default(),
            brownout: BrownoutPolicy {
                enabled,
                trigger_sheds: 4,
                window_s: 40.0 * spacing,
                promote_idle_s: 60.0 * max_img,
            },
        },
    )
    .run_open_loop(reqs);
    let lbl = |dir: &str| {
        r.registry
            .value(
                "serve_brownout_switches_total",
                &[("model", "MobileNetV1"), ("direction", dir)],
            )
            .unwrap_or(0.0)
    };
    BrownoutOutcome {
        offered,
        completed: r.metrics.completed,
        shed: r.sheds.len(),
        brownout_served: r
            .registry
            .value("serve_requests_brownout_total", &[("model", "MobileNetV1")])
            .unwrap_or(0.0),
        switches_enter: lbl("enter"),
        switches_exit: lbl("exit"),
    }
}

/// Escapes a string for embedding in the JSON artifact.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The machine-readable summary written to `FPGACCEL_ROLLOUT_REPORT` for
/// the CI smoke job.
fn json_report(
    offered: usize,
    r: &RunResult,
    deterministic: bool,
    off: &BrownoutOutcome,
    on: &BrownoutOutcome,
) -> String {
    let rollouts: Vec<String> = r
        .rollouts
        .iter()
        .map(|rep| {
            format!(
                "{{\"model\":{},\"to\":{},\"outcome\":{},\"waves\":{},\"converted\":{},\
                 \"lost\":{},\"canary_failure\":{}}}",
                json_str(rep.model.name()),
                json_str(&rep.to_label),
                json_str(rep.outcome.label()),
                rep.waves,
                rep.devices_converted,
                rep.devices_lost,
                rep.canary_failure
                    .as_ref()
                    .map(|f| json_str(f.label()))
                    .unwrap_or_else(|| "null".into()),
            )
        })
        .collect();
    let rollbacks = r
        .rollouts
        .iter()
        .filter(|rep| rep.outcome == RolloutOutcome::RolledBack)
        .count();
    let promoted = r
        .rollouts
        .iter()
        .filter(|rep| rep.outcome == RolloutOutcome::Promoted)
        .count();
    format!(
        "{{\n  \"seed\": {ROLLOUT_SEED},\n  \"offered\": {offered},\n  \"completed\": {},\n  \
         \"shed\": {},\n  \"failed\": {},\n  \"completion_rate\": {:.6},\n  \
         \"rollbacks\": {rollbacks},\n  \"promoted\": {promoted},\n  \
         \"deterministic\": {deterministic},\n  \"rollouts\": [{}],\n  \
         \"brownout\": {{\"sheds_disabled\": {}, \"sheds_enabled\": {}, \
         \"brownout_served\": {:.0}, \"switches_enter\": {:.0}, \"switches_exit\": {:.0}}}\n}}\n",
        r.metrics.completed,
        r.metrics.shed(),
        r.failures.len(),
        r.metrics.completed as f64 / offered as f64,
        rollouts.join(", "),
        off.shed,
        on.shed,
        on.brownout_served,
        on.switches_enter,
        on.switches_exit,
    )
}

/// The `rollout` experiment report.
pub fn rollout() -> String {
    // The committed scenario, traced, run twice for the determinism check.
    let tracer = Tracer::enabled();
    let (offered, r) = run_committed(&tracer);
    let (_, second) = run_committed(&Tracer::disabled());
    let deterministic = digest(offered, &r) == digest(offered, &second);

    let plan = committed_plan();

    let mut outcomes = Table::new(
        "Rollouts — live upgrades against the committed sabotage (0.75x load)",
        &[
            "rollout",
            "model",
            "target",
            "outcome",
            "waves",
            "converted",
            "lost",
            "canary failure",
            "t0 ms",
            "t1 ms",
        ],
    );
    for (k, rep) in r.rollouts.iter().enumerate() {
        outcomes.row(&[
            format!("#{}", k + 1),
            rep.model.name().into(),
            rep.to_label.clone(),
            rep.outcome.label().into(),
            rep.waves.to_string(),
            rep.devices_converted.to_string(),
            rep.devices_lost.to_string(),
            rep.canary_failure
                .as_ref()
                .map(|f| f.label().to_string())
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", rep.started_s * 1e3),
            format!("{:.1}", rep.finished_s * 1e3),
        ]);
    }

    let mut log = Table::new(
        "Rollouts — event log (committed scenario)",
        &["rollout", "t ms", "device", "action", "detail"],
    );
    for (k, rep) in r.rollouts.iter().enumerate() {
        for e in &rep.events {
            log.row(&[
                format!("#{}", k + 1),
                format!("{:.3}", e.t_s * 1e3),
                e.device.clone(),
                e.action.clone(),
                e.detail.clone(),
            ]);
        }
    }

    let mut serving = Table::new(
        "Rollouts — end-of-run serving state",
        &["device", "health", "model", "configuration"],
    );
    for d in &r.devices {
        for (m, label) in &d.deployments {
            serving.row(&[
                d.device.clone(),
                d.health.into(),
                m.name().into(),
                label.clone(),
            ]);
        }
    }

    // Rollout machinery visible in the trace export.
    let spans = tracer.events();
    let span_count = |cat: &str| spans.iter().filter(|e| e.cat == cat).count();
    let span_line = format!(
        "Trace: {} rollout, {} canary, {} reprogram span(s)/marker(s).",
        span_count("rollout"),
        span_count("canary"),
        span_count("reprogram"),
    );

    // Brownout: the identical overload trace with and without the
    // pre-deployed Int8 variant allowed to serve.
    let off = brownout_run(false);
    let on = brownout_run(true);
    assert!(
        on.shed < off.shed,
        "brownout must shed strictly less than shedding through overload ({} vs {})",
        on.shed,
        off.shed
    );
    let mut brownout = Table::new(
        "Brownout — MobileNet overload, Int8 variant staged on both Stratix 10s",
        &[
            "run",
            "offered",
            "completed",
            "shed",
            "int8-served",
            "switches",
            "completion",
        ],
    );
    for (label, o) in [("shed-only", &off), ("brownout", &on)] {
        brownout.row(&[
            label.into(),
            o.offered.to_string(),
            o.completed.to_string(),
            o.shed.to_string(),
            format!("{:.0}", o.brownout_served),
            format!("{:.0} in / {:.0} out", o.switches_enter, o.switches_exit),
            format!("{:.1}%", 100.0 * o.completed as f64 / o.offered as f64),
        ]);
    }

    if let Ok(path) = std::env::var("FPGACCEL_ROLLOUT_REPORT") {
        std::fs::write(&path, json_report(offered, &r, deterministic, &off, &on))
            .expect("rollout report artifact writes");
    }

    format!(
        "Rollouts — safe live upgrades (seed {ROLLOUT_SEED:#x})\n{}\n{}\n{}\n{}\n{span_line}\n\
         Committed scenario: upgrade #1 absorbs a reprogram failure, then its corrupted canary \
         shadow batch forces an automatic rollback; the clean retry #2 and the canary-verified \
         LeNet upgrade #3 promote. {} of {} offered requests completed ({:.1}%) — drained \
         devices hand their traffic to the rest of the pool.\n\
         Determinism: two runs of the committed scenario are {} (same seed => same sabotage \
         => same rollback, byte for byte).\n{}\n\
         Brownout: under the same overload the browned-out server sheds {} request(s) against \
         {} without it, serving {:.0} request(s) on the relaxed-precision variant and promoting \
         back to full precision once load subsides.",
        plan.render(),
        outcomes.render(),
        log.render(),
        serving.render(),
        r.metrics.completed,
        offered,
        100.0 * r.metrics.completed as f64 / offered as f64,
        if deterministic {
            "identical"
        } else {
            "DIVERGENT"
        },
        brownout.render(),
        on.shed,
        off.shed,
        on.brownout_served,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_scenario_rolls_back_once_then_promotes_cleanly() {
        let (offered, r) = run_committed(&Tracer::disabled());
        assert_eq!(
            r.metrics.completed as usize + r.metrics.shed() as usize + r.failures.len(),
            offered
        );
        assert_eq!(
            r.metrics.completed as usize, offered,
            "the deadline-free scenario must complete 100% of the offered load"
        );
        let outcomes: Vec<RolloutOutcome> = r.rollouts.iter().map(|rep| rep.outcome).collect();
        assert_eq!(
            outcomes,
            [
                RolloutOutcome::RolledBack,
                RolloutOutcome::Promoted,
                RolloutOutcome::Promoted
            ]
        );
        // The sabotaged upgrade absorbed one reprogram failure first.
        assert!(r.rollouts[0]
            .events
            .iter()
            .any(|e| e.action == "reprogram-fail"));
        assert_eq!(
            r.rollouts[0].canary_failure,
            Some(fpgaccel_serve::CanaryFailure::ReadbackCorrupt)
        );
        assert_eq!(r.rollouts[0].devices_lost, 0);
        // The retry leaves both MobileNet devices on the tuned config.
        for d in &r.devices {
            for (m, label) in &d.deployments {
                if *m == Model::MobileNetV1 {
                    assert_eq!(label, "Folded-Tuned", "{}", d.device);
                }
                if *m == Model::LeNet5 {
                    assert!(label.ends_with("-v2"), "{}: {label}", d.device);
                }
            }
        }
        assert_eq!(
            r.registry
                .value("serve_rollbacks_total", &[("model", "MobileNetV1")]),
            Some(1.0)
        );
        // Gauges park at the final state per model.
        assert_eq!(
            r.registry
                .value("serve_rollout_state", &[("model", "MobileNetV1")]),
            Some(4.0)
        );
        assert_eq!(
            r.registry
                .value("serve_rollout_state", &[("model", "LeNet-5")]),
            Some(4.0)
        );
    }

    #[test]
    fn rollout_report_is_deterministic() {
        assert_eq!(rollout(), rollout());
    }
}
