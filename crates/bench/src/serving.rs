//! The `serve` experiment: the multi-device serving subsystem under
//! increasing offered load.
//!
//! LeNet-5 and MobileNetV1 are co-served across the three evaluation FPGAs
//! (LeNet everywhere, MobileNet on the two Stratix 10 parts). Each model
//! gets its own seeded open-loop Poisson stream scaled to a multiple of
//! that model's pool capacity — MobileNet is ~200x more expensive per
//! image, so a uniform mix would only measure MobileNet drowning. The
//! report shows dynamic batching beating unbatched dispatch at the same
//! offered load, and admission control shedding past saturation while the
//! served tail stays deadline-bounded. Everything runs in simulated time,
//! so the tables are deterministic.

use crate::table::Table;
use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_device::FpgaPlatform;
use fpgaccel_serve::loadgen::{open_loop_poisson, with_deadline};
use fpgaccel_serve::{
    AdmissionPolicy, BatchPolicy, DevicePool, Request, RunResult, ServeConfig, Server,
};
use fpgaccel_tensor::models::Model;
use fpgaccel_trace::Tracer;

const SEED: u64 = 0x5E21;
/// Simulated trace duration per run, seconds.
const TRACE_S: f64 = 0.4;
/// Per-model completion deadlines, seconds (about 15x a single-batch
/// execution on the slowest serving device).
const LENET_DEADLINE_S: f64 = 0.05;
const MOBILENET_DEADLINE_S: f64 = 4.0;

const SERVED: [Model; 2] = [Model::LeNet5, Model::MobileNetV1];

pub(crate) fn batched() -> BatchPolicy {
    BatchPolicy {
        max_batch: 8,
        max_wait_s: 2e-3,
    }
}

pub(crate) fn admission() -> AdmissionPolicy {
    AdmissionPolicy {
        queue_capacity: 64,
        default_deadline_s: None,
    }
}

/// Builds the three-device pool serving both models.
pub fn build_pool() -> DevicePool {
    build_pool_traced(&Tracer::disabled())
}

/// [`build_pool`] recording deploy and compile spans on `tracer`.
pub fn build_pool_traced(tracer: &Tracer) -> DevicePool {
    build_pool_injected(tracer, &fpgaccel_fault::FaultInjector::disabled())
}

/// [`build_pool_traced`] with a fault injector installed *before* the
/// deploys, so synthesis flakes in the plan hit the deploy path.
pub(crate) fn build_pool_injected(
    tracer: &Tracer,
    injector: &fpgaccel_fault::FaultInjector,
) -> DevicePool {
    let mut pool = DevicePool::new();
    pool.set_tracer(tracer);
    pool.set_fault_injector(injector);
    for p in [
        FpgaPlatform::Stratix10Sx,
        FpgaPlatform::Stratix10Mx,
        FpgaPlatform::Arria10Gx,
    ] {
        let d = pool.add_device(p);
        pool.deploy(d, Model::LeNet5, &optimized_config(Model::LeNet5, p))
            .unwrap();
        if p != FpgaPlatform::Arria10Gx {
            pool.deploy(
                d,
                Model::MobileNetV1,
                &optimized_config(Model::MobileNetV1, p),
            )
            .unwrap();
        }
    }
    pool
}

/// Steady-state pool capacity for one model, requests/second. Each device
/// contributes its marginal per-image rate, its time split evenly across
/// the models it serves — so a total offered load of 1.0x keeps every
/// device exactly busy.
pub fn model_capacity_rps(pool: &DevicePool, model: Model) -> f64 {
    pool.devices()
        .iter()
        .filter_map(|d| {
            let lm = d.latency_model(model)?;
            let sharing = SERVED
                .iter()
                .filter(|&&m| d.latency_model(m).is_some())
                .count();
            Some(1.0 / (sharing as f64 * lm.per_image_s))
        })
        .sum()
}

/// One Poisson stream per model at `mult` times that model's capacity,
/// merged into a single trace with unique ids and per-model deadlines.
pub(crate) fn mixed_trace(pool: &DevicePool, mult: f64) -> Vec<Request> {
    let mut trace = Vec::new();
    for (slot, (&model, deadline)) in SERVED
        .iter()
        .zip([LENET_DEADLINE_S, MOBILENET_DEADLINE_S])
        .enumerate()
    {
        let rate = mult * model_capacity_rps(pool, model);
        let n = ((rate * TRACE_S).ceil() as usize).max(1);
        let mut stream = with_deadline(
            open_loop_poisson(SEED ^ slot as u64, rate, n, &[model]),
            deadline,
        );
        for r in &mut stream {
            r.id = r.id * SERVED.len() as u64 + slot as u64;
        }
        trace.extend(stream);
    }
    trace
}

fn serve_trace(trace: Vec<Request>, batch: BatchPolicy) -> RunResult {
    Server::new(
        build_pool(),
        ServeConfig {
            batch,
            admission: admission(),
            fault: Default::default(),
            brownout: Default::default(),
        },
    )
    .run_open_loop(trace)
}

/// One fully traced serving run — the co-served mix at 1.0x offered
/// load, deploys included, plus a clean mid-run MobileNet rollout to the
/// auto-tuned folded configuration — recording spans on `tracer`. This is
/// the timeline behind `repro trace serve`: the rollout's drain, canary
/// and per-wave spans land on their own lane next to the device lanes.
pub fn traced_run(tracer: &Tracer) -> RunResult {
    let pool = build_pool_traced(tracer);
    let trace = mixed_trace(&pool, 1.0);
    let mut tuned =
        fpgaccel_core::OptimizationConfig::folded(fpgaccel_core::TilingPreset::Custom1x1 {
            tile: (7, 8, 8),
        });
    tuned.label = "Folded-Tuned".into();
    Server::new(
        pool,
        ServeConfig {
            batch: batched(),
            admission: admission(),
            fault: Default::default(),
            brownout: Default::default(),
        },
    )
    .with_tracer(tracer)
    .with_rollout(fpgaccel_serve::RolloutSpec {
        at_s: TRACE_S / 2.0,
        model: Model::MobileNetV1,
        to: tuned,
        verify_input: None,
        adopt: Vec::new(),
        policy: fpgaccel_serve::RolloutPolicy::default(),
    })
    .run_open_loop(trace)
}

fn ms(s: f64) -> String {
    format!("{:.2}", s * 1e3)
}

/// The `serve` experiment report.
pub fn serve() -> String {
    let pool = build_pool();
    let cap_lenet = model_capacity_rps(&pool, Model::LeNet5);
    let cap_mobilenet = model_capacity_rps(&pool, Model::MobileNetV1);

    // Part 1 — dynamic batching vs batch=1 dispatch on a LeNet stream at
    // the pool's marginal capacity. Batching amortizes per-batch fill and
    // host cost; unbatched dispatch pays it per request and saturates
    // early, shedding the difference.
    let lenet_trace = |mult: f64| {
        let rate = mult * cap_lenet * 2.0; // LeNet alone: no device sharing
        let n = ((rate * TRACE_S).ceil() as usize).max(1);
        with_deadline(
            open_loop_poisson(SEED, rate, n, &[Model::LeNet5]),
            LENET_DEADLINE_S,
        )
    };
    let mut head = Table::new(
        "Serving — dynamic batching vs unbatched dispatch (LeNet at 1.0x capacity)",
        &[
            "policy",
            "completed",
            "shed",
            "achieved rps",
            "p50 ms",
            "p99 ms",
            "mean batch",
        ],
    );
    let mut achieved = [0.0f64; 2];
    for (i, (label, policy)) in [
        ("batch<=8/2ms", batched()),
        ("batch=1", BatchPolicy::unbatched()),
    ]
    .into_iter()
    .enumerate()
    {
        let r = serve_trace(lenet_trace(1.0), policy);
        achieved[i] = r.metrics.throughput_rps();
        head.row(&[
            label.to_string(),
            r.metrics.completed.to_string(),
            r.metrics.shed().to_string(),
            format!("{:.0}", achieved[i]),
            ms(r.metrics.latency.quantile(0.50)),
            ms(r.metrics.latency.quantile(0.99)),
            format!("{:.2}", r.metrics.mean_batch_size()),
        ]);
    }

    // Part 2 — offered-load sweep over the co-served mix.
    let mut sweep = Table::new(
        "Serving — offered-load sweep (3 devices, LeNet+MobileNet co-served)",
        &[
            "load",
            "offered",
            "completed",
            "shed %",
            "achieved rps",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "mean batch",
            "peak queue",
        ],
    );
    for mult in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let trace = mixed_trace(&pool, mult);
        let offered = trace.len();
        let r = serve_trace(trace, batched());
        sweep.row(&[
            format!("{mult:.2}x"),
            offered.to_string(),
            r.metrics.completed.to_string(),
            format!("{:.1}", 100.0 * r.metrics.shed_rate()),
            format!("{:.0}", r.metrics.throughput_rps()),
            ms(r.metrics.latency.quantile(0.50)),
            ms(r.metrics.latency.quantile(0.95)),
            ms(r.metrics.latency.quantile(0.99)),
            format!("{:.2}", r.metrics.mean_batch_size()),
            r.metrics.peak_queue_depth.to_string(),
        ]);
    }

    format!(
        "{}\n{}\nPool: s10sx-0 (LeNet+MobileNet), s10mx-0 (LeNet+MobileNet), a10-0 (LeNet).\n\
         Capacity: LeNet {cap_lenet:.0} rps + MobileNet {cap_mobilenet:.1} rps with devices \
         split evenly between co-served models; deadlines {} ms / {} ms; {TRACE_S} s simulated \
         traces, seed {SEED:#x}.\n\
         Batching gain at saturation: {:.2}x goodput over batch=1 dispatch.\n\
         Past 1.0x the bounded queue and deadlines shed the excess instead of letting the \
         served tail grow without bound.\n",
        head.render(),
        sweep.render(),
        LENET_DEADLINE_S * 1e3,
        MOBILENET_DEADLINE_S * 1e3,
        achieved[0] / achieved[1].max(1e-9),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_beats_unbatched_dispatch() {
        let pool = build_pool();
        let cap = model_capacity_rps(&pool, Model::LeNet5) * 2.0;
        let n = ((cap * TRACE_S).ceil() as usize).max(1);
        let trace = || {
            with_deadline(
                open_loop_poisson(SEED, cap, n, &[Model::LeNet5]),
                LENET_DEADLINE_S,
            )
        };
        let b = serve_trace(trace(), batched());
        let u = serve_trace(trace(), BatchPolicy::unbatched());
        assert!(
            b.metrics.throughput_rps() > 1.2 * u.metrics.throughput_rps(),
            "batched {} rps !>> unbatched {} rps",
            b.metrics.throughput_rps(),
            u.metrics.throughput_rps()
        );
        assert!(b.metrics.mean_batch_size() > 1.2);
        assert!(b.metrics.shed_rate() < u.metrics.shed_rate());
    }

    #[test]
    fn overload_sheds_while_p99_stays_bounded() {
        let pool = build_pool();
        let light = serve_trace(mixed_trace(&pool, 0.5), batched());
        let heavy = serve_trace(mixed_trace(&pool, 2.0), batched());
        assert!(
            light.metrics.shed_rate() < 0.02,
            "light load shed {:.1}%",
            100.0 * light.metrics.shed_rate()
        );
        assert!(
            heavy.metrics.shed_rate() > 0.2,
            "2x overload must shed, got {:.1}%",
            100.0 * heavy.metrics.shed_rate()
        );
        // Admission control keeps the served tail deadline-bounded even at
        // 2x overload (the histogram over-estimates by <10%).
        assert!(
            heavy.metrics.latency.quantile(0.99) <= MOBILENET_DEADLINE_S * 1.1,
            "p99 {} s exceeds the deadline bound",
            heavy.metrics.latency.quantile(0.99)
        );
    }

    #[test]
    fn serve_report_is_deterministic() {
        assert_eq!(serve(), serve());
    }
}
