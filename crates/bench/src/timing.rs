//! A small wall-clock micro-benchmark harness for the `benches/` targets.
//!
//! The workspace builds hermetically (no registry access), so the benches
//! use this self-contained warm-up + median-of-samples loop instead of
//! Criterion. Invoke with `cargo bench`; each bench prints one line per
//! measured function.

use std::time::Instant;

/// Times `f`, printing `name: median per-iteration time` over `samples`
/// samples of `iters` iterations each (after one warm-up sample).
pub fn bench<T, F: FnMut() -> T>(name: &str, iters: usize, samples: usize, mut f: F) {
    let iters = iters.max(1);
    let samples = samples.max(1);
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    println!("{name:<40} {}", humanize(median));
}

fn humanize(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn humanize_picks_sane_units() {
        assert_eq!(humanize(2.5), "2.500 s");
        assert_eq!(humanize(2.5e-3), "2.500 ms");
        assert_eq!(humanize(2.5e-6), "2.500 us");
        assert_eq!(humanize(2.5e-9), "2.5 ns");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut n = 0u64;
        bench("noop", 2, 2, || n += 1);
        assert!(n >= 4);
    }
}
