//! One function per thesis table/figure, each returning a printable report
//! with the thesis-reported values alongside (from [`crate::paper`]).

use crate::paper;
use crate::table::{f, opt, pct, Table};
use fpgaccel_baseline::{reference_fps, Framework, ReferenceEngine};
use fpgaccel_core::bitstreams::{
    baseline_config, lenet_ladder, mobilenet_tile, optimized_config, TABLE_6_6_TILINGS,
};
use fpgaccel_core::dse::sweep_1x1;
use fpgaccel_core::{Deployment, Flow, FlowError, OptimizationConfig};
use fpgaccel_device::{FpgaPlatform, TransferDir};
use fpgaccel_tensor::flops::{format_flops, format_params, graph_flops};
use fpgaccel_tensor::models::Model;

const LENET_BATCH: usize = 500;
const BIG_BATCH: usize = 3;

fn compile(
    model: Model,
    platform: FpgaPlatform,
    cfg: &OptimizationConfig,
) -> Result<Deployment, FlowError> {
    Flow::new(model, platform).compile(cfg)
}

fn batch_for(model: Model) -> usize {
    if model == Model::LeNet5 {
        LENET_BATCH
    } else {
        BIG_BATCH
    }
}

/// Tables 6.1–6.3: platform inventories.
pub fn platforms() -> String {
    let mut t = Table::new(
        "Tables 6.1/6.2 — FPGA platforms",
        &[
            "platform",
            "ALUTs",
            "FFs",
            "RAMs",
            "DSPs",
            "ext BW GB/s",
            "Quartus",
            "base fmax",
        ],
    );
    for p in FpgaPlatform::ALL {
        let m = p.model();
        t.row(&[
            p.label().to_string(),
            m.total.alut.to_string(),
            m.total.ff.to_string(),
            m.total.ram.to_string(),
            m.total.dsp.to_string(),
            f(m.ext_mem_bw / 1e9),
            format!("{}.{}", m.quartus_version / 10, m.quartus_version % 10),
            f(m.base_fmax_mhz),
        ]);
    }
    let cpu = fpgaccel_device::hostref::CpuDescriptor::xeon_8280();
    let gpu = fpgaccel_device::hostref::GpuDescriptor::gtx_1060();
    format!(
        "{}\nTable 6.3 hosts: {} ({} threads); {}\n",
        t.render(),
        cpu.name,
        cpu.total_threads(),
        gpu.name
    )
}

/// Figure 6.1: LeNet FPS per bitstream x platform, serial vs concurrent.
pub fn fig6_1() -> String {
    let mut t = Table::new(
        "Figure 6.1 — LeNet FPS per optimization bitstream (batch steady state)",
        &["platform", "bitstream", "FPS", "FPS [CE]", "fit"],
    );
    for p in FpgaPlatform::ALL {
        for cfg in lenet_ladder() {
            let serial = compile(Model::LeNet5, p, &cfg).expect("LeNet fits");
            let ce = compile(Model::LeNet5, p, &cfg.clone().with_concurrent()).expect("fits");
            t.row(&[
                p.label().to_string(),
                cfg.label.clone(),
                f(serial.simulate_batch(LENET_BATCH).fps),
                f(ce.simulate_batch(LENET_BATCH).fps),
                serial.fit_summary(),
            ]);
        }
    }
    format!(
        "{}\nPaper endpoints: Base 564/524/402 FPS; best (TVM-Autorun+CE) 1706/4917/2653 FPS \
         for S10MX/S10SX/A10.\n",
        t.render()
    )
}

/// Figure 6.2: OpenCL event-profile breakdown, base vs autorun bitstreams.
pub fn fig6_2() -> String {
    let mut t = Table::new(
        "Figure 6.2 — event-profile breakdown (share of device-busy time)",
        &[
            "platform",
            "bitstream",
            "kernel",
            "write",
            "read",
            "host overhead of span",
        ],
    );
    for p in FpgaPlatform::ALL {
        for cfg in [OptimizationConfig::base(), OptimizationConfig::autorun()] {
            let d = compile(Model::LeNet5, p, &cfg).expect("LeNet fits");
            let stats = d.simulate_batch(50);
            let (k, w, r) = stats.breakdown.fractions();
            t.row(&[
                p.label().to_string(),
                cfg.label.clone(),
                pct(k * 100.0),
                pct(w * 100.0),
                pct(r * 100.0),
                pct(stats.breakdown.overhead_fraction() * 100.0),
            ]);
        }
    }
    format!(
        "{}\nPaper: the S10MX spends far more time on writes than the other platforms; for the \
         base bitstreams most of the span is host overhead (\"kernel times are short\").\n",
        t.render()
    )
}

/// Table 6.5: LeNet per-bitstream area/fmax vs paper.
pub fn tab6_5() -> String {
    let mut t = Table::new(
        "Table 6.5 — LeNet bitstream area (model | paper)",
        &[
            "platform",
            "bitstream",
            "logic",
            "RAM",
            "DSP",
            "fmax",
            "paper (logic/RAM/DSP/fmax)",
        ],
    );
    for p in FpgaPlatform::ALL {
        for cfg in lenet_ladder() {
            let d = compile(Model::LeNet5, p, &cfg).expect("fits");
            let (logic, ram, dsp) = d.bitstream.utilization;
            let paper = paper::lenet_area(&cfg.label, p)
                .map(|(l, r, ds, fm)| format!("{l:.0}%/{r:.0}%/{ds:.0}%/{fm:.0}MHz"))
                .unwrap_or_default();
            t.row(&[
                p.label().to_string(),
                cfg.label.clone(),
                pct(logic),
                pct(ram),
                pct(dsp),
                format!("{:.0} MHz", d.bitstream.fmax_mhz),
                paper,
            ]);
        }
    }
    t.render()
}

/// Table 6.6 + Figure 6.3: the 1x1-conv tiling sweep on the Arria 10.
pub fn fig6_3() -> String {
    let mut t = Table::new(
        "Table 6.6 / Figure 6.3 — 1x1-conv tiling sweep, Arria 10 (model | paper)",
        &[
            "cfg",
            "W2/C2/C1",
            "DSPs",
            "fmax",
            "logic",
            "RAM",
            "1x1 time/img",
            "speedup vs base",
            "paper DSP",
            "paper fmax",
        ],
    );
    let points = sweep_1x1(
        Model::MobileNetV1,
        FpgaPlatform::Arria10Gx,
        TABLE_6_6_TILINGS,
    );
    // Base-schedule 1x1 time for the speedup column.
    let base = sweep_base_1x1_seconds();
    for (i, pnt) in points.iter().enumerate() {
        let (w2, c2, c1) = pnt.tile;
        let paper_row = paper::TABLE_6_6[i];
        match &pnt.result {
            Ok(m) => {
                let (logic, ram, _) = m.utilization;
                t.row(&[
                    (i + 1).to_string(),
                    format!("{w2}/{c2}/{c1}"),
                    m.dsps.to_string(),
                    f(m.fmax_mhz),
                    pct(logic),
                    pct(ram),
                    format!("{:.2} ms", m.conv1x1_seconds * 1e3),
                    format!("{:.0}x", base / m.conv1x1_seconds),
                    paper_row.5.to_string(),
                    f(paper_row.6),
                ]);
            }
            Err(e) => {
                t.row(&[
                    (i + 1).to_string(),
                    format!("{w2}/{c2}/{c1}"),
                    format!("FAILED: {e}"),
                ]);
            }
        }
    }
    format!(
        "{}\nPaper: speedups over the base schedule range 64x (cfg 1) to 123x (cfg 7); the base \
         schedule takes 1326 ms for all 1x1 convolutions (Figure 6.3).\n",
        t.render()
    )
}

fn sweep_base_1x1_seconds() -> f64 {
    // The naive 1x1 schedule timed the same way as the sweep points.
    use fpgaccel_aoc::synthesize;
    use fpgaccel_core::kernels::build_folded;
    use fpgaccel_runtime::Sim;
    let graph = Model::MobileNetV1.build().fuse().materialize_padding();
    let mut cfg = OptimizationConfig::folded(fpgaccel_core::TilingPreset::Naive);
    cfg.optimized_schedules = false;
    let plan = build_folded(&graph, &cfg).unwrap();
    let device = FpgaPlatform::Arria10Gx.model();
    let flow = Flow::new(Model::MobileNetV1, FpgaPlatform::Arria10Gx);
    let only_1x1: Vec<_> = plan
        .kernels
        .iter()
        .filter(|k| k.name.starts_with("conv2d_1x1"))
        .cloned()
        .collect();
    let bitstream = synthesize(&only_1x1, &device, &cfg.aoc, &flow.calib).unwrap();
    let mut sim = Sim::new(device, cfg.aoc, flow.calib.clone(), bitstream.fmax_mhz);
    let q = sim.create_queue();
    for inv in plan
        .invocations
        .iter()
        .filter(|i| i.kernel_name.starts_with("conv2d_1x1"))
    {
        sim.enqueue_kernel(
            q,
            bitstream.kernel(&inv.kernel_name),
            &inv.binding,
            &[],
            &[],
        );
    }
    sim.events()
        .iter()
        .map(fpgaccel_runtime::SimEvent::duration)
        .sum()
}

/// Table 6.7: the deployed MobileNet kernel set per platform.
pub fn tab6_7() -> String {
    let mut t = Table::new(
        "Table 6.7 — MobileNet parameterized kernels and unroll factors",
        &["kernel", "tiled dims", "factors (S10MX / S10SX / A10)"],
    );
    let tiles: Vec<String> = FpgaPlatform::ALL
        .iter()
        .map(|&p| {
            let (a, b, c) = mobilenet_tile(p);
            format!("{a}/{b}/{c}")
        })
        .collect();
    t.row(&["1x1 conv".into(), "W2, C2, C1".into(), tiles.join("  ")]);
    t.row_str(&["3x3 conv", "C1, F, F", "3x3x3 (all platforms)"]);
    t.row_str(&["3x3 DW conv s=1", "W2, F, F", "7x3x3"]);
    t.row_str(&["3x3 DW conv s=2", "W2, F, F", "7x3x3"]);
    t.row_str(&["dense", "C1", "32"]);
    t.render()
}

fn op_class_mobilenet(kernel: &str) -> Option<&'static str> {
    if kernel.starts_with("conv2d_1x1") {
        Some("1x1 conv")
    } else if kernel.starts_with("conv2d_dw") {
        Some("3x3 DW conv")
    } else if kernel.starts_with("conv2d_3x3") {
        Some("3x3 conv")
    } else if kernel == "fc" {
        Some("dense")
    } else if kernel.starts_with("pad") {
        Some("pad")
    } else {
        None
    }
}

fn op_class_resnet(kernel: &str) -> Option<&'static str> {
    match kernel {
        k if k.starts_with("conv2d_3x3_s1") => Some("3x3 s=1"),
        k if k.starts_with("conv2d_3x3_s2") => Some("3x3 s=2"),
        k if k.starts_with("conv2d_7x7") => Some("7x7"),
        k if k.starts_with("conv2d_1x1") => Some("1x1"),
        k if k.starts_with("pad") => Some("pad"),
        _ => None,
    }
}

fn per_op_table(
    title: &str,
    model: Model,
    platforms: &[FpgaPlatform],
    class_of: fn(&str) -> Option<&'static str>,
    classes: &[&str],
) -> String {
    let mut t = Table::new(
        title,
        &[
            "op",
            "% of FP ops",
            "GFLOPS per platform",
            "time share per platform",
        ],
    );
    let mut stats = Vec::new();
    for &p in platforms {
        let d = compile(model, p, &optimized_config(model, p)).expect("fits");
        stats.push((p, d.simulate_batch(BIG_BATCH)));
    }
    let total_flops: u64 = stats[0].1.kernel_flops.values().sum();
    for class in classes {
        let mut gflops_cells = Vec::new();
        let mut share_cells = Vec::new();
        let mut flop_share = 0.0;
        for (p, s) in &stats {
            let mut secs = 0.0;
            let mut fl = 0u64;
            for (k, v) in &s.kernel_seconds {
                if class_of(k) == Some(class) {
                    secs += v;
                    fl += s.kernel_flops.get(k).copied().unwrap_or(0);
                }
            }
            let total_secs: f64 = s.kernel_seconds.values().sum();
            gflops_cells.push(format!(
                "{}={}",
                p.label(),
                if secs > 0.0 {
                    f(fl as f64 / secs / 1e9)
                } else {
                    "-".into()
                }
            ));
            share_cells.push(format!("{}={}", p.label(), pct(100.0 * secs / total_secs)));
            flop_share = 100.0 * fl as f64 / total_flops as f64;
        }
        t.row(&[
            class.to_string(),
            pct(flop_share),
            gflops_cells.join(" "),
            share_cells.join(" "),
        ]);
    }
    t.render()
}

/// Table 6.8: MobileNet per-op GFLOPS and runtime shares.
pub fn tab6_8() -> String {
    let ours = per_op_table(
        "Table 6.8 — MobileNet per-op GFLOPS / time share (model)",
        Model::MobileNetV1,
        &FpgaPlatform::ALL,
        op_class_mobilenet,
        &["1x1 conv", "3x3 DW conv", "3x3 conv", "dense", "pad"],
    );
    let mut p = Table::new(
        "Table 6.8 — paper values",
        &[
            "op",
            "% FP ops",
            "S10MX GF",
            "S10SX GF",
            "A10 GF",
            "time shares (MX/SX/A10)",
        ],
    );
    for r in paper::TABLE_6_8 {
        p.row(&[
            r.0.to_string(),
            pct(r.1 * 100.0),
            f(r.2),
            f(r.3),
            f(r.4),
            format!(
                "{} / {} / {}",
                pct(r.5 * 100.0),
                pct(r.6 * 100.0),
                pct(r.7 * 100.0)
            ),
        ]);
    }
    format!("{ours}\n{}", p.render())
}

fn inference_table(model: Model) -> String {
    let g = model.build();
    let mut t = Table::new(
        format!(
            "{} inference: FPS/GFLOPS/area, base vs optimized ({} FP ops, {} params)",
            model.name(),
            format_flops(graph_flops(&g)),
            format_params(g.param_count()),
        ),
        &[
            "platform",
            "config",
            "FPS",
            "GFLOPS",
            "speedup",
            "fit",
            "paper FPS",
        ],
    );
    for p in FpgaPlatform::ALL {
        let mut base_fps = None;
        for (kind, cfg, paper_fps) in [
            ("base", baseline_config(model), paper::base_fps(model, p)),
            (
                "optimized",
                optimized_config(model, p),
                paper::optimized_fps(model, p),
            ),
        ] {
            match compile(model, p, &cfg) {
                Ok(d) => {
                    let s = d.simulate_batch(batch_for(model));
                    if kind == "base" {
                        base_fps = Some(s.fps);
                    }
                    let speedup = match (kind, base_fps) {
                        ("optimized", Some(b)) => format!("{:.0}x", s.fps / b),
                        _ => "-".into(),
                    };
                    t.row(&[
                        p.label().to_string(),
                        kind.to_string(),
                        f(s.fps),
                        f(s.gflops),
                        speedup,
                        d.fit_summary(),
                        opt(paper_fps),
                    ]);
                }
                Err(e) => {
                    let short = match e {
                        FlowError::Synthesis(ref se) => se.to_string(),
                        ref other => other.to_string(),
                    };
                    t.row(&[
                        p.label().to_string(),
                        kind.to_string(),
                        "n/a".into(),
                        "n/a".into(),
                        "-".into(),
                        short,
                        opt(paper_fps),
                    ]);
                }
            }
        }
    }
    t.render()
}

fn comparison_table(model: Model) -> String {
    let mut t = Table::new(
        format!(
            "{} vs reference platforms (FPGA speedup over each framework)",
            model.name()
        ),
        &[
            "platform",
            "FPGA FPS",
            "vs TF-CPU",
            "vs TVM-1T",
            "vs TVM-peak",
            "vs TF-cuDNN",
        ],
    );
    let tf = reference_fps(model, Framework::TfCpu);
    let tvm1 = reference_fps(model, Framework::TvmCpu { threads: 1 });
    let tvm_peak = (1..=56)
        .map(|th| reference_fps(model, Framework::TvmCpu { threads: th }))
        .fold(0.0f64, f64::max);
    let cudnn = reference_fps(model, Framework::TfCudnn);
    for p in FpgaPlatform::ALL {
        match compile(model, p, &optimized_config(model, p)) {
            Ok(d) => {
                let fps = d.simulate_batch(batch_for(model)).fps;
                t.row(&[
                    p.label().to_string(),
                    f(fps),
                    format!("{:.2}x", fps / tf),
                    format!("{:.2}x", fps / tvm1),
                    format!("{:.2}x", fps / tvm_peak),
                    format!("{:.2}x", fps / cudnn),
                ]);
            }
            Err(_) => {
                t.row(&[p.label().to_string(), "does not fit".into()]);
            }
        }
    }
    format!(
        "{}References: TF-CPU {tf} FPS, TVM-1T {tvm1} FPS, TVM-peak {tvm_peak:.1} FPS, \
         TF-cuDNN {cudnn} FPS (Tables 6.10/6.12/6.15).\n",
        t.render()
    )
}

fn thread_sweep_table(model: Model, figure: &str) -> String {
    let mut t = Table::new(
        format!("{figure} — TVM CPU thread sweep, {}", model.name()),
        &["threads", "TVM FPS"],
    );
    for th in [1u32, 2, 4, 8, 16, 32, 56] {
        t.row(&[
            th.to_string(),
            f(reference_fps(model, Framework::TvmCpu { threads: th })),
        ]);
    }
    t.render()
}

/// Table 6.9 + Table 6.10 + Figure 6.4: LeNet inference.
pub fn tab6_9() -> String {
    format!(
        "{}\n{}\n{}",
        inference_table(Model::LeNet5),
        comparison_table(Model::LeNet5),
        thread_sweep_table(Model::LeNet5, "Figure 6.4")
    )
}

/// Table 6.11 + Table 6.12 + Figure 6.5: MobileNet inference.
pub fn tab6_11() -> String {
    format!(
        "{}\n{}\n{}",
        inference_table(Model::MobileNetV1),
        comparison_table(Model::MobileNetV1),
        thread_sweep_table(Model::MobileNetV1, "Figure 6.5")
    )
}

/// Table 6.13: the ResNet parameterized kernel set.
pub fn tab6_13() -> String {
    let mut t = Table::new(
        "Table 6.13 — ResNet parameterized kernels and unroll factors",
        &["kernel", "tiled dims", "unroll factors"],
    );
    t.row_str(&["7x7 conv", "F, F", "7x7"]);
    t.row_str(&["3x3 conv s=1", "W2, C1, F, F", "7/8/3/3"]);
    t.row_str(&["3x3 conv s=2", "W2, C1, F, F", "7/8/3/3"]);
    t.row_str(&["1x1 conv", "C1", "8"]);
    t.row_str(&["3x3 pool", "F, F", "3x3"]);
    t.row_str(&["softmax", "-", "1 (not unrolled)"]);
    t.render()
}

/// Tables 6.14/6.15 + Figures 6.6/6.7: ResNet-18/34 inference.
pub fn tab6_14() -> String {
    let mut out = String::new();
    for m in [Model::ResNet18, Model::ResNet34] {
        out.push_str(&inference_table(m));
        out.push('\n');
        out.push_str(&comparison_table(m));
        out.push('\n');
        out.push_str(&thread_sweep_table(
            m,
            if m == Model::ResNet18 {
                "Figure 6.6"
            } else {
                "Figure 6.7"
            },
        ));
        out.push('\n');
    }
    out
}

/// Table 6.16: ResNet per-op GFLOPS and runtime shares.
pub fn tab6_16() -> String {
    let ours = per_op_table(
        "Table 6.16 — ResNet-34 per-op GFLOPS / time share (model, Stratix boards)",
        Model::ResNet34,
        &[FpgaPlatform::Stratix10Mx, FpgaPlatform::Stratix10Sx],
        op_class_resnet,
        &["3x3 s=1", "3x3 s=2", "7x7", "1x1", "pad"],
    );
    let mut p = Table::new(
        "Table 6.16 — paper values (ResNet-34, S10SX)",
        &["op", "% FP ops", "GFLOPS", "time share"],
    );
    for r in paper::TABLE_6_16_R34_S10SX {
        p.row(&[r.0.to_string(), pct(r.1 * 100.0), f(r.2), pct(r.3 * 100.0)]);
    }
    format!("{ours}\n{}", p.render())
}

fn resnet34_3x3s1_gflops() -> f64 {
    let d = compile(
        Model::ResNet34,
        FpgaPlatform::Stratix10Sx,
        &optimized_config(Model::ResNet34, FpgaPlatform::Stratix10Sx),
    )
    .expect("fits");
    let s = d.simulate_batch(BIG_BATCH);
    let mut secs = 0.0;
    let mut fl = 0u64;
    for (k, v) in &s.kernel_seconds {
        if k.starts_with("conv2d_3x3_s1") {
            secs += v;
            fl += s.kernel_flops[k];
        }
    }
    fl as f64 / secs / 1e9
}

/// Table 6.17: vs Caffeinated FPGAs (DiCecco et al.).
pub fn tab6_17() -> String {
    let ours = resnet34_3x3s1_gflops();
    let mut t = Table::new(
        "Table 6.17 — single-strided 3x3 convolution throughput",
        &["work", "workload", "platform", "precision", "GFLOPS"],
    );
    t.row(&[
        "DiCecco et al. [18]".into(),
        "geomean 3x3 convs, 4 nets (batched)".into(),
        "Virtex 7".into(),
        "32b float".into(),
        f(paper::relwork::DICECCO_3X3_GFLOPS),
    ]);
    t.row(&[
        "this repro".into(),
        "3x3 s=1 convs in ResNet-34".into(),
        "Stratix 10 SX".into(),
        "32b float".into(),
        f(ours),
    ]);
    format!(
        "{}Ratio: {:.2}x (thesis reported {:.2}x with its measured 70.4 GFLOPS).\n",
        t.render(),
        ours / paper::relwork::DICECCO_3X3_GFLOPS,
        paper::relwork::THESIS_VS_DICECCO
    )
}

/// Table 6.18: vs TensorFlow-to-Cloud-FPGAs (Hadjis et al.).
pub fn tab6_18() -> String {
    let lenet = compile(
        Model::LeNet5,
        FpgaPlatform::Stratix10Sx,
        &optimized_config(Model::LeNet5, FpgaPlatform::Stratix10Sx),
    )
    .expect("fits");
    let lenet_ms = 1e3 / lenet.simulate_batch(LENET_BATCH).fps;
    let resnet = compile(
        Model::ResNet34,
        FpgaPlatform::Stratix10Sx,
        &optimized_config(Model::ResNet34, FpgaPlatform::Stratix10Sx),
    )
    .expect("fits");
    let r34 = resnet.simulate_batch(BIG_BATCH);
    let mut t = Table::new(
        "Table 6.18 — vs Hadjis et al. (Spatial HDL, VU9P)",
        &["metric", "Hadjis et al.", "this repro"],
    );
    t.row(&[
        "LeNet latency (ms)".into(),
        f(paper::relwork::HADJIS_LENET_MS),
        f(lenet_ms),
    ]);
    t.row(&[
        "ResNet GFLOPS (their -50 vs our -34)".into(),
        f(paper::relwork::HADJIS_RESNET50_GFLOPS),
        f(r34.gflops),
    ]);
    format!(
        "{}LeNet speedup: {:.2}x (thesis reported {:.2}x).\n",
        t.render(),
        paper::relwork::HADJIS_LENET_MS / lenet_ms,
        paper::relwork::THESIS_VS_HADJIS_LENET
    )
}

/// Table 6.19: vs DNNWeaver.
pub fn tab6_19() -> String {
    let lenet = compile(
        Model::LeNet5,
        FpgaPlatform::Arria10Gx,
        &optimized_config(Model::LeNet5, FpgaPlatform::Arria10Gx),
    )
    .expect("fits");
    let lenet_fps = lenet.simulate_batch(LENET_BATCH).fps;
    let vs_cpu = lenet_fps / reference_fps(Model::LeNet5, Framework::TfCpu);
    let mobilenet = compile(
        Model::MobileNetV1,
        FpgaPlatform::Arria10Gx,
        &optimized_config(Model::MobileNetV1, FpgaPlatform::Arria10Gx),
    )
    .expect("fits");
    let m_gflops = mobilenet.simulate_batch(BIG_BATCH).gflops;
    let mut t = Table::new(
        "Table 6.19 — vs DNNWeaver (hand-optimized RTL, Arria 10 GX)",
        &["metric", "DNNWeaver", "this repro"],
    );
    t.row(&[
        "LeNet speedup vs CPU".into(),
        format!(
            "{:.0}x (4-core Xeon E3)",
            paper::relwork::DNNWEAVER_LENET_VS_CPU
        ),
        format!("{vs_cpu:.2}x (Xeon 8280)"),
    ]);
    t.row(&[
        "GFLOPS (their AlexNet vs our MobileNet)".into(),
        f(paper::relwork::DNNWEAVER_ALEXNET_GFLOPS),
        f(m_gflops),
    ]);
    format!(
        "{}GFLOPS ratio: {:.2}x (thesis reported {:.2}x) — the hand-optimized 16-bit RTL \
         library remains far ahead, as the thesis concedes.\n",
        t.render(),
        m_gflops / paper::relwork::DNNWEAVER_ALEXNET_GFLOPS,
        paper::relwork::THESIS_VS_DNNWEAVER
    )
}

/// Appendix A: buffer transfer bandwidth vs size.
pub fn appendix_a() -> String {
    let mut t = Table::new(
        "Appendix A — host<->device effective bandwidth (MB/s) vs buffer size",
        &["platform", "dir", "4KB", "64KB", "1MB", "16MB", "256MB"],
    );
    for p in FpgaPlatform::ALL {
        let link = p.model().link;
        for (dir, name) in [(TransferDir::Write, "write"), (TransferDir::Read, "read")] {
            let cells: Vec<String> = [4u64 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20]
                .iter()
                .map(|&b| f(link.effective_bandwidth(b, dir) / 1e6))
                .collect();
            t.row(&[
                p.label().to_string(),
                name.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
                cells[4].clone(),
            ]);
        }
    }
    format!(
        "{}Paper: the S10MX engineering-sample BSP has drastically reduced host-to-device \
         write bandwidth (§6.3.1, Appendix A).\n",
        t.render()
    )
}

/// §8.1 what-if: quantized datapaths. Re-synthesizes the optimized
/// deployments at int16/int8 precision: DSP packing doubles, LSU caches
/// shrink, and networks that exceeded the Arria 10 at float32 start to fit.
pub fn quantization() -> String {
    use fpgaccel_aoc::Precision;
    let mut t = Table::new(
        "§8.1 what-if — reduced-precision datapaths (model extension)",
        &[
            "network",
            "platform",
            "precision",
            "outcome",
            "FPS",
            "DSP",
            "RAM",
        ],
    );
    for (model, platform) in [
        (Model::MobileNetV1, FpgaPlatform::Arria10Gx),
        (Model::ResNet18, FpgaPlatform::Arria10Gx),
        (Model::ResNet34, FpgaPlatform::Arria10Gx),
        (Model::ResNet34, FpgaPlatform::Stratix10Sx),
    ] {
        for precision in [Precision::F32, Precision::Int16, Precision::Int8] {
            let mut cfg = optimized_config(model, platform);
            cfg.aoc.precision = precision;
            match compile(model, platform, &cfg) {
                Ok(d) => {
                    let s = d.simulate_batch(2);
                    let (_, ram, dsp) = d.bitstream.utilization;
                    t.row(&[
                        model.name().to_string(),
                        platform.label().to_string(),
                        format!("{precision:?}"),
                        "fits".into(),
                        f(s.fps),
                        pct(dsp),
                        pct(ram),
                    ]);
                }
                Err(e) => {
                    let short = match e {
                        FlowError::Synthesis(se) => se.to_string(),
                        other => other.to_string(),
                    };
                    t.row(&[
                        model.name().to_string(),
                        platform.label().to_string(),
                        format!("{precision:?}"),
                        short,
                    ]);
                }
            }
        }
    }
    format!(
        "{}The thesis deploys float32 only and names quantization the main lever for\n\
         closing the gap to hand-optimized accelerators (§6.5, §8.1): int8 packs two\n\
         MACs per DSP and shrinks LSU caches, which is exactly what un-sticks the\n\
         Arria 10 deployments above.\n",
        t.render()
    )
}

/// Ablations of the flow's design choices (the DESIGN.md §7 benches):
/// the Listing 5.11 stride-coalescing workaround, `-fp-relaxed`/`-fpc`,
/// and autorun.
pub fn ablations() -> String {
    let mut t = Table::new(
        "Ablations — what each design choice is worth (S10SX)",
        &["ablation", "configuration", "FPS", "fmax", "note"],
    );

    // 1. Symbolic strides (Listing 5.10) vs the stride-1 workaround
    //    (Listing 5.11) on folded MobileNet.
    for (label, explicit) in [("workaround (5.11)", false), ("raw strides (5.10)", true)] {
        let mut cfg = optimized_config(Model::MobileNetV1, FpgaPlatform::Stratix10Sx);
        cfg.explicit_strides = explicit;
        match compile(Model::MobileNetV1, FpgaPlatform::Stratix10Sx, &cfg) {
            Ok(d) => {
                let s = d.simulate_batch(2);
                t.row(&[
                    "stride coalescing".into(),
                    label.into(),
                    f(s.fps),
                    f(d.bitstream.fmax_mhz),
                    "MobileNet folded".into(),
                ]);
            }
            Err(e) => {
                t.row(&[
                    "stride coalescing".into(),
                    label.into(),
                    "n/a".into(),
                    "-".into(),
                    e.to_string(),
                ]);
            }
        }
    }

    // 2. -fp-relaxed/-fpc off: the single-cycle accumulator disappears.
    for (label, aoc) in [
        ("-fp-relaxed -fpc", fpgaccel_aoc::AocOptions::default()),
        ("strict IEEE", fpgaccel_aoc::AocOptions::strict()),
    ] {
        let mut cfg = OptimizationConfig::tvm_autorun().with_concurrent();
        cfg.aoc = aoc;
        let d = compile(Model::LeNet5, FpgaPlatform::Stratix10Sx, &cfg).expect("fits");
        let s = d.simulate_batch(LENET_BATCH);
        t.row(&[
            "float flags (§4.10)".into(),
            label.into(),
            f(s.fps),
            f(d.bitstream.fmax_mhz),
            "LeNet pipelined".into(),
        ]);
    }

    // 3. Profiling: the §5.2 observation that profiling forces synchronous
    //    execution.
    for (label, profiled) in [("off", false), ("on", true)] {
        let mut cfg = OptimizationConfig::tvm_autorun().with_concurrent();
        if profiled {
            cfg = cfg.with_profiling();
        }
        let d = compile(Model::LeNet5, FpgaPlatform::Stratix10Sx, &cfg).expect("fits");
        let s = d.simulate_batch(LENET_BATCH);
        t.row(&[
            "event profiler (§5.2)".into(),
            label.into(),
            f(s.fps),
            f(d.bitstream.fmax_mhz),
            "forces synchronous execution".into(),
        ]);
    }
    t.render()
}

/// Extension: deploy AlexNet itself (the DNNWeaver workload of Table 6.19),
/// which the thesis could not — "a direct comparison is not possible since
/// we do not evaluate this network" (§6.6.2). Single-column variant.
pub fn alexnet() -> String {
    use fpgaccel_core::TilingPreset;
    use fpgaccel_tensor::models::alexnet;
    let mut t = Table::new(
        "Extension — AlexNet deployed through the flow (Table 6.19 workload)",
        &["platform", "outcome", "FPS", "GFLOPS", "fit"],
    );
    for platform in FpgaPlatform::ALL {
        let flow = Flow::for_graph(alexnet(), platform);
        let cfg = OptimizationConfig::folded(TilingPreset::AlexNet);
        match flow.compile(&cfg) {
            Ok(d) => {
                let s = d.simulate_batch(2);
                t.row(&[
                    platform.label().to_string(),
                    "fits".into(),
                    f(s.fps),
                    f(s.gflops),
                    d.fit_summary(),
                ]);
            }
            Err(e) => {
                t.row(&[platform.label().to_string(), e.to_string()]);
            }
        }
    }
    format!(
        "{}DNNWeaver's hand-optimized 16-bit RTL reaches {} GFLOPS on this workload \n\
         (grouped variant) on the Arria 10 — the compiler-generated flow stays an \n\
         order of magnitude behind, which is the honest conclusion of §6.6.2.\n",
        t.render(),
        paper::relwork::DNNWEAVER_ALEXNET_GFLOPS
    )
}

/// A genuinely measured host-CPU baseline from the real Rust engine.
pub fn host_engine() -> String {
    let mut t = Table::new(
        "Reference engine — real measured host FPS (this machine, rayon)",
        &["model", "FPS", "GFLOPS"],
    );
    for (m, n) in [(Model::LeNet5, 50), (Model::MobileNetV1, 2)] {
        let e = ReferenceEngine::new(m);
        let input = if m == Model::LeNet5 {
            fpgaccel_tensor::data::synthetic_digit(0, 0)
        } else {
            fpgaccel_tensor::data::imagenet_input(0)
        };
        let (fps, gflops) = e.measure_fps(&input, n);
        t.row(&[m.name().to_string(), f(fps), f(gflops)]);
    }
    t.render()
}

/// An experiment generator: `(id, function producing the report)`.
pub type Experiment = (&'static str, fn() -> String);

/// All experiments in presentation order.
pub const ALL_EXPERIMENTS: &[Experiment] = &[
    ("platforms", platforms),
    ("fig6_1", fig6_1),
    ("fig6_2", fig6_2),
    ("tab6_5", tab6_5),
    ("fig6_3", fig6_3),
    ("tab6_7", tab6_7),
    ("tab6_8", tab6_8),
    ("tab6_9", tab6_9),
    ("tab6_11", tab6_11),
    ("tab6_13", tab6_13),
    ("tab6_14", tab6_14),
    ("tab6_16", tab6_16),
    ("tab6_17", tab6_17),
    ("tab6_18", tab6_18),
    ("tab6_19", tab6_19),
    ("appendix_a", appendix_a),
    ("quantization", quantization),
    ("quant", crate::quant::quant),
    ("alexnet", alexnet),
    ("ablations", ablations),
    ("host_engine", host_engine),
    ("serve", crate::serving::serve),
    ("tune", crate::tune::tune),
    ("chaos", crate::chaos::chaos),
    ("rollout", crate::rollout::rollout),
    ("pipeline", crate::pipeline::pipeline),
    ("bench", crate::trajectory::bench),
    ("fleet", crate::fleet::fleet),
    ("fleetchaos", crate::fleetchaos::fleetchaos),
];

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<String> {
    ALL_EXPERIMENTS
        .iter()
        .find(|(name, _)| *name == id)
        .map(|(_, func)| func())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_registry_is_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in ALL_EXPERIMENTS {
            assert!(seen.insert(name), "duplicate experiment id {name}");
        }
        assert!(run("nonexistent").is_none());
    }

    #[test]
    fn cheap_experiments_render() {
        for id in ["platforms", "tab6_7", "tab6_13", "appendix_a"] {
            let s = run(id).unwrap();
            assert!(s.contains('|'), "{id} produced no table");
        }
    }
}
