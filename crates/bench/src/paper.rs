//! The thesis-reported numbers, transcribed from Chapter 6, used to print
//! paper-vs-measured comparisons. Nothing here feeds the models — these are
//! the *targets*, kept separate from the calibration constants by design.

use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;

/// Table 6.9/6.11/6.14: baseline (naive) FPS per model and platform.
/// `None` = did not synthesize.
pub fn base_fps(model: Model, platform: FpgaPlatform) -> Option<f64> {
    use FpgaPlatform::*;
    use Model::*;
    match (model, platform) {
        (LeNet5, Stratix10Mx) => Some(564.0),
        (LeNet5, Stratix10Sx) => Some(524.0),
        (LeNet5, Arria10Gx) => Some(402.0),
        (MobileNetV1, Stratix10Mx) => Some(0.21),
        (MobileNetV1, Stratix10Sx) => Some(0.17),
        (MobileNetV1, Arria10Gx) => None,
        (ResNet18, Stratix10Mx) => Some(6.83e-3),
        (ResNet18, Stratix10Sx) => Some(8.3e-3),
        (ResNet34, Stratix10Mx) => Some(3.2e-3),
        (ResNet34, Stratix10Sx) => Some(4.01e-3),
        (ResNet18 | ResNet34, Arria10Gx) => None,
    }
}

/// Table 6.9/6.11/6.14: optimized FPS per model and platform.
pub fn optimized_fps(model: Model, platform: FpgaPlatform) -> Option<f64> {
    use FpgaPlatform::*;
    use Model::*;
    match (model, platform) {
        (LeNet5, Stratix10Mx) => Some(1706.0),
        (LeNet5, Stratix10Sx) => Some(4917.0),
        (LeNet5, Arria10Gx) => Some(2653.0),
        (MobileNetV1, Stratix10Mx) => Some(17.7),
        (MobileNetV1, Stratix10Sx) => Some(30.3),
        (MobileNetV1, Arria10Gx) => Some(18.0),
        (ResNet18, Stratix10Mx) => Some(4.1),
        (ResNet18, Stratix10Sx) => Some(7.04),
        (ResNet34, Stratix10Mx) => Some(2.6),
        (ResNet34, Stratix10Sx) => Some(4.6),
        (ResNet18 | ResNet34, Arria10Gx) => None,
    }
}

/// Table 6.5: LeNet bitstream area rows
/// `(logic %, RAM %, DSP %, fmax MHz)` per (bitstream label, platform).
pub fn lenet_area(label: &str, platform: FpgaPlatform) -> Option<(f64, f64, f64, f64)> {
    use FpgaPlatform::*;
    type AreaRow = (&'static str, FpgaPlatform, (f64, f64, f64, f64));
    let rows: &[AreaRow] = &[
        ("Base", Stratix10Mx, (32.0, 21.0, 3.0, 250.0)),
        ("Base", Stratix10Sx, (32.0, 21.0, 3.0, 209.0)),
        ("Base", Arria10Gx, (39.0, 81.0, 8.0, 201.0)),
        ("Unrolling", Stratix10Mx, (44.0, 38.0, 7.0, 259.0)),
        ("Unrolling", Stratix10Sx, (32.0, 23.0, 5.0, 202.0)),
        ("Unrolling", Arria10Gx, (45.0, 83.0, 13.0, 210.0)),
        ("Channels", Stratix10Mx, (32.0, 26.0, 6.0, 318.0)),
        ("Channels", Stratix10Sx, (24.0, 18.0, 5.0, 234.0)),
        ("Channels", Arria10Gx, (29.0, 45.0, 21.0, 192.0)),
        ("Autorun", Stratix10Mx, (32.0, 26.0, 6.0, 307.0)),
        ("Autorun", Stratix10Sx, (24.0, 18.0, 5.0, 220.0)),
        ("Autorun", Arria10Gx, (28.0, 45.0, 21.0, 200.0)),
        ("TVM-Autorun", Stratix10Mx, (36.0, 26.0, 4.0, 300.0)),
        ("TVM-Autorun", Stratix10Sx, (25.0, 19.0, 5.0, 218.0)),
        ("TVM-Autorun", Arria10Gx, (36.0, 37.0, 14.0, 217.0)),
    ];
    rows.iter()
        .find(|(l, p, _)| *l == label && *p == platform)
        .map(|(_, _, v)| *v)
}

/// Table 6.6: the seven 1x1-conv tiling configurations on the Arria 10:
/// `(w2vec, c2vec, c1vec, logic %, ram %, dsps, fmax MHz)`.
pub const TABLE_6_6: &[(usize, usize, usize, f64, f64, u64, f64)] = &[
    (7, 4, 8, 35.0, 36.0, 275, 195.0),
    (7, 4, 16, 40.0, 57.0, 531, 168.0),
    (7, 8, 4, 33.0, 34.0, 267, 213.0),
    (7, 8, 8, 34.0, 47.0, 507, 194.0),
    (7, 8, 16, 48.0, 67.0, 987, 137.0),
    (7, 16, 4, 42.0, 48.0, 507, 180.0),
    (7, 16, 8, 45.0, 63.0, 971, 141.0),
];

/// Figure 6.3: speedups over the base schedule for configurations 1 and 7
/// ("between a factor of 64x and 123x", §6.3.2).
pub const FIG_6_3_SPEEDUP_RANGE: (f64, f64) = (64.0, 123.0);

/// One Table 6.8 row: `(op, flop share, s10mx gflops, s10sx gflops,
/// a10 gflops, s10mx time share, s10sx time share, a10 time share)`.
pub type MobileNetOpRow = (&'static str, f64, f64, f64, f64, f64, f64, f64);

/// Table 6.8: MobileNet per-op average GFLOPS and runtime share.
pub const TABLE_6_8: &[MobileNetOpRow] = &[
    ("1x1 conv", 0.948, 43.99, 88.20, 57.20, 0.476, 0.302, 0.363),
    ("3x3 DW conv", 0.031, 1.81, 1.72, 1.65, 0.288, 0.445, 0.338),
    ("3x3 conv", 0.019, 4.23, 8.48, 6.54, 0.082, 0.063, 0.060),
    ("dense", 0.002, 2.49, 4.24, 3.07, 0.013, 0.012, 0.012),
    ("pad", 0.0, 0.0, 0.0, 0.0, 0.127, 0.155, 0.207),
];

/// Table 6.16 (ResNet-34 rows): per-op GFLOPS and time share on the S10SX:
/// `(op, flop share, s10sx gflops, s10sx time share)`.
pub const TABLE_6_16_R34_S10SX: &[(&str, f64, f64, f64)] = &[
    ("3x3 s=1", 0.912, 70.36, 0.499),
    ("3x3 s=2", 0.047, 17.82, 0.093),
    ("7x7", 0.032, 9.72, 0.112),
    ("1x1", 0.009, 2.91, 0.102),
    ("pad", 0.0, 0.0, 0.180),
];

/// Tables 6.17–6.19: related-work comparison anchors.
pub mod relwork {
    /// DiCecco et al. (Caffeinated FPGAs): geomean 3x3-conv effective
    /// GFLOPS on the Virtex 7, 32b float, batched.
    pub const DICECCO_3X3_GFLOPS: f64 = 50.0;
    /// Hadjis et al.: LeNet latency (ms) and ResNet-50 GFLOPS on the VU9P.
    pub const HADJIS_LENET_MS: f64 = 0.656;
    /// Hadjis et al. ResNet-50 throughput.
    pub const HADJIS_RESNET50_GFLOPS: f64 = 36.1;
    /// Hadjis et al. ResNet-50 latency (ms).
    pub const HADJIS_RESNET50_MS: f64 = 216.0;
    /// DNNWeaver AlexNet GFLOPS on the Arria 10 GX115 (via Venieris et al.).
    pub const DNNWEAVER_ALEXNET_GFLOPS: f64 = 184.33;
    /// DNNWeaver LeNet speedup over a 4-core Xeon E3.
    pub const DNNWEAVER_LENET_VS_CPU: f64 = 12.0;
    /// Thesis-reported cross-work ratios (§6.6.2).
    pub const THESIS_VS_DICECCO: f64 = 1.41;
    /// LeNet latency speedup vs Hadjis et al.
    pub const THESIS_VS_HADJIS_LENET: f64 = 3.23;
    /// MobileNet/AlexNet GFLOPS ratio vs DNNWeaver.
    pub const THESIS_VS_DNNWEAVER: f64 = 0.11;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_platform_combination_is_classified() {
        for m in Model::ALL {
            for p in FpgaPlatform::ALL {
                // Optimized succeeds everywhere except ResNet on the A10.
                let expect_ok = !(p == FpgaPlatform::Arria10Gx
                    && matches!(m, Model::ResNet18 | Model::ResNet34));
                assert_eq!(optimized_fps(m, p).is_some(), expect_ok, "{m:?} {p:?}");
            }
        }
    }

    #[test]
    fn lenet_area_table_is_complete() {
        for label in ["Base", "Unrolling", "Channels", "Autorun", "TVM-Autorun"] {
            for p in FpgaPlatform::ALL {
                assert!(lenet_area(label, p).is_some(), "{label} {p}");
            }
        }
        assert!(lenet_area("Nope", FpgaPlatform::Arria10Gx).is_none());
    }

    #[test]
    fn table_6_8_flop_shares_sum_to_one() {
        let total: f64 = TABLE_6_8.iter().map(|r| r.1).sum();
        assert!((total - 1.0).abs() < 0.01);
    }
}
