//! Timeline export: traced experiment runs serialized as Chrome
//! trace-event JSON.
//!
//! `repro trace <experiment>` writes these files; load them in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Each simulated run
//! gets its own process track with one lane per command queue, every
//! `SimEvent` rendered as the three nested queued/submit/run slices of
//! its four OpenCL profiling timestamps (§5.2), and the compile flow's
//! phases on a shared track.

use fpgaccel_core::{BatchStats, Flow, OptimizationConfig};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;
use fpgaccel_trace::{chrome_trace_json, Tracer};

/// Batch size of the traced Figure 6.2 runs (matches the experiment).
const FIG6_2_BATCH: usize = 50;

/// Experiment ids with a timeline export, in `repro trace` order.
pub const TRACEABLE: &[&str] = &["fig6_2", "serve"];

/// The Chrome trace for experiment `id`, or `None` when the experiment
/// has no timeline export (see [`TRACEABLE`]).
pub fn trace_experiment(id: &str) -> Option<String> {
    match id {
        "fig6_2" => Some(fig6_2_trace()),
        "serve" => Some(serve_trace()),
        _ => None,
    }
}

/// Traces one Figure 6.2 cell — LeNet under `cfg` on `platform` — and
/// returns the Chrome JSON next to the live run's stats, so callers can
/// cross-check a `Breakdown` recomputed from the export against the
/// live aggregation.
pub fn fig6_2_cell(platform: FpgaPlatform, cfg: &OptimizationConfig) -> (String, BatchStats) {
    let tracer = Tracer::enabled();
    let d = Flow::new(Model::LeNet5, platform)
        .with_tracer(&tracer)
        .compile(cfg)
        .expect("LeNet fits everywhere");
    let stats = d.simulate_batch_traced(
        FIG6_2_BATCH,
        &tracer,
        &format!("{} {}", platform.label(), cfg.label),
    );
    (chrome_trace_json(&tracer), stats)
}

/// The full Figure 6.2 timeline: LeNet base and autorun bitstreams on
/// every platform, one process track per run.
pub fn fig6_2_trace() -> String {
    let tracer = Tracer::enabled();
    for p in FpgaPlatform::ALL {
        for cfg in [OptimizationConfig::base(), OptimizationConfig::autorun()] {
            let d = Flow::new(Model::LeNet5, p)
                .with_tracer(&tracer)
                .compile(&cfg)
                .expect("LeNet fits everywhere");
            d.simulate_batch_traced(
                FIG6_2_BATCH,
                &tracer,
                &format!("{} {}", p.label(), cfg.label),
            );
        }
    }
    chrome_trace_json(&tracer)
}

/// The serving timeline: the co-served LeNet+MobileNet mix at 1.0x
/// offered load — deploys (cache hits and misses), per-request lanes,
/// batch execution on the device lanes, and shed markers.
pub fn serve_trace() -> String {
    let tracer = Tracer::enabled();
    crate::serving::traced_run(&tracer);
    chrome_trace_json(&tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpgaccel_trace::json::Json;

    #[test]
    fn every_traceable_id_resolves_and_others_do_not() {
        for id in TRACEABLE {
            assert!(
                crate::experiments::ALL_EXPERIMENTS
                    .iter()
                    .any(|(name, _)| name == id),
                "traceable id {id} is not a known experiment"
            );
        }
        assert!(trace_experiment("platforms").is_none());
        assert!(trace_experiment("nonexistent").is_none());
    }

    #[test]
    fn fig6_2_cell_exports_nonempty_valid_json() {
        let (json, stats) = fig6_2_cell(FpgaPlatform::Stratix10Sx, &OptimizationConfig::autorun());
        assert!(stats.fps > 0.0);
        let v = Json::parse(&json).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(events.len() > 100, "only {} events", events.len());
    }
}
