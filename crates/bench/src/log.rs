//! A tiny leveled logger for the bench binaries.
//!
//! Experiment reports are the *product* of `repro` and print straight to
//! stdout, byte-identical run to run. Everything else the binaries say —
//! usage errors, progress notes, per-step detail, the diagnostic dumps of
//! `evdbg`/`fitdbg` — goes through this logger, so `-q` silences the
//! chatter and `-v` turns on detail without touching the reports.
//!
//! The level starts at [`Level::Normal`], can be preset through the
//! `FPGACCEL_LOG` environment variable (`quiet` | `normal` | `verbose`),
//! and explicit `-q`/`-v` flags win over the environment.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity, ordered from silent to chatty.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Errors only.
    Quiet = 0,
    /// Errors plus regular output and one-line notes (the default).
    Normal = 1,
    /// Everything, including per-step detail.
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Normal as u8);

/// The current level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        2 => Level::Verbose,
        _ => Level::Normal,
    }
}

/// Sets the level directly.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

fn parse(name: &str) -> Option<Level> {
    match name {
        "quiet" | "q" | "0" => Some(Level::Quiet),
        "normal" | "1" => Some(Level::Normal),
        "verbose" | "v" | "2" => Some(Level::Verbose),
        _ => None,
    }
}

/// Initializes the level from `FPGACCEL_LOG` and from `-q`/`--quiet` /
/// `-v`/`--verbose` flags, which are stripped out of `args` so the
/// binaries' positional parsing never sees them. Flags beat the
/// environment; the last flag wins. Returns the resulting level.
pub fn init(args: &mut Vec<String>) -> Level {
    let mut level = std::env::var("FPGACCEL_LOG")
        .ok()
        .and_then(|v| parse(&v.to_lowercase()))
        .unwrap_or(Level::Normal);
    args.retain(|a| match a.as_str() {
        "-q" | "--quiet" => {
            level = Level::Quiet;
            false
        }
        "-v" | "--verbose" => {
            level = Level::Verbose;
            false
        }
        _ => true,
    });
    set_level(level);
    level
}

/// An error — always printed to stderr, even under `-q`.
pub fn error(msg: &str) {
    eprintln!("{msg}");
}

/// Regular tool output (stdout, suppressed by `-q`). The diagnostic
/// dumps of `evdbg`/`fitdbg` print here so their default output stays
/// byte-identical while `-q` can still silence them.
pub fn out(msg: &str) {
    if level() >= Level::Normal {
        println!("{msg}");
    }
}

/// A one-line progress note (stderr, suppressed by `-q`).
pub fn note(msg: &str) {
    if level() >= Level::Normal {
        eprintln!("{msg}");
    }
}

/// Per-step detail (stdout, only under `-v`).
pub fn debug(msg: &str) {
    if level() >= Level::Verbose {
        println!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_stripped_and_take_effect() {
        // Serialize against other tests touching the global level.
        let mut args: Vec<String> = ["fig6_2", "-v", "all"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(init(&mut args), Level::Verbose);
        assert_eq!(args, vec!["fig6_2".to_string(), "all".to_string()]);

        let mut args: Vec<String> = vec!["-v".into(), "--quiet".into()];
        assert_eq!(init(&mut args), Level::Quiet, "last flag wins");
        assert!(args.is_empty());

        let mut none: Vec<String> = vec!["trace".into()];
        init(&mut none);
        assert_eq!(none, vec!["trace".to_string()]);
        set_level(Level::Normal);
    }

    #[test]
    fn levels_order_quiet_below_verbose() {
        assert!(Level::Quiet < Level::Normal);
        assert!(Level::Normal < Level::Verbose);
        assert_eq!(parse("verbose"), Some(Level::Verbose));
        assert_eq!(parse("bogus"), None);
    }
}
