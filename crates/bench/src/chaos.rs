//! The `chaos` experiment: the serving stack under a committed fault
//! schedule.
//!
//! The three-device serve pool runs the co-served LeNet+MobileNet mix
//! while a seeded [`FaultPlan`] hangs devices, fails reprograms, stalls
//! and corrupts transfers and flakes a synthesis. The committed schedule
//! loses one of the three devices mid-run; the report shows the fault
//! table, the recovery log (quarantine → reprogram → return, loss →
//! redistribution), end-of-run device health, the degradation relative to
//! a fault-free baseline, and a seeded random sweep. Everything is
//! simulated, so the whole report — fault schedule included — reproduces
//! byte for byte.
//!
//! Environment knobs: `FPGACCEL_CHAOS_BUDGET` sets the number of random
//! fault plans in the sweep (default 6); `FPGACCEL_CHAOS_REPORT` names a
//! JSON file to write the machine-readable recovery summary to (for CI);
//! `FPGACCEL_CHAOS_POSTMORTEM` names a JSON file to write the anomaly
//! flight recorder's postmortem snapshots of the committed run to.

use crate::serving::{batched, build_pool_injected, mixed_trace};
use crate::table::Table;
use fpgaccel_fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSpec};
use fpgaccel_serve::{Request, RunResult, ServeConfig, Server};
use fpgaccel_trace::{FlightRecorder, Tracer};

/// Seed recorded on the committed plan (the schedule itself is
/// hand-written, not generated, so the seed is provenance only).
const CHAOS_SEED: u64 = 0xC4A05;
/// Seed for the random-plan sweep.
const SWEEP_SEED: u64 = 0x5EED;

/// Random plans in the sweep (`FPGACCEL_CHAOS_BUDGET`, default 6).
pub fn sweep_budget() -> usize {
    std::env::var("FPGACCEL_CHAOS_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// The committed chaos schedule: one recoverable hang, one device loss,
/// a transfer stall, a read-back corruption and a synthesis flake.
pub fn committed_plan() -> FaultPlan {
    let ev = |at_s: f64, target: &str, kind: FaultKind| FaultEvent {
        at_s,
        target: target.into(),
        kind,
    };
    let mut events = vec![
        ev(0.0, "*", FaultKind::SynthFlake),
        ev(0.06, "s10sx-0", FaultKind::DeviceHang),
        ev(0.10, "s10mx-0", FaultKind::DeviceHang),
        ev(
            0.15,
            "a10-0",
            FaultKind::TransferStall {
                factor: 4.0,
                for_s: 0.05,
            },
        ),
        ev(0.25, "s10sx-0", FaultKind::TransferCorrupt),
    ];
    // Three reprogram failures: every repair attempt on s10mx-0 fails and
    // the device is lost for the rest of the run.
    for _ in 0..3 {
        events.push(ev(0.10, "s10mx-0", FaultKind::ReprogramFail));
    }
    FaultPlan::new(CHAOS_SEED, events)
}

/// The serve workload with deadlines stripped: chaos measures pure
/// completion under faults, so a late answer still counts as served
/// rather than vanishing into a deadline shed.
fn chaos_trace(pool: &fpgaccel_serve::DevicePool, mult: f64) -> Vec<Request> {
    let mut trace = mixed_trace(pool, mult);
    for r in &mut trace {
        r.deadline_s = None;
    }
    trace
}

/// Offered load relative to full-pool capacity. Chaos runs with headroom:
/// losing one of three devices must leave the survivors able to absorb
/// well over the 60% graceful-degradation floor, so the experiment
/// measures fault handling rather than raw overload shedding.
const CHAOS_LOAD: f64 = 0.75;

fn run_with(plan: Option<FaultPlan>, tracer: &Tracer) -> (usize, RunResult) {
    run_with_flight(plan, tracer, &FlightRecorder::disabled())
}

/// [`run_with`] with an anomaly flight recorder attached: device hangs,
/// quarantines and losses trigger bounded postmortem snapshots that come
/// back on [`RunResult::postmortems`].
fn run_with_flight(
    plan: Option<FaultPlan>,
    tracer: &Tracer,
    flight: &FlightRecorder,
) -> (usize, RunResult) {
    let injector = match plan {
        Some(p) => FaultInjector::new(p),
        None => FaultInjector::disabled(),
    };
    let pool = build_pool_injected(&Tracer::disabled(), &injector);
    let trace = chaos_trace(&pool, CHAOS_LOAD);
    let offered = trace.len();
    let result = Server::new(
        pool,
        ServeConfig {
            batch: batched(),
            // Deep queue: redistribution bursts after a device loss queue
            // up instead of shedding; deadline-free requests drain late.
            admission: fpgaccel_serve::AdmissionPolicy {
                queue_capacity: 256,
                default_deadline_s: None,
            },
            fault: Default::default(),
            brownout: Default::default(),
        },
    )
    .with_tracer(tracer)
    .with_flight_recorder(flight)
    .run_open_loop(trace);
    (offered, result)
}

fn outcome_row(t: &mut Table, label: &str, offered: usize, r: &RunResult) {
    t.row(&[
        label.to_string(),
        offered.to_string(),
        r.metrics.completed.to_string(),
        r.metrics.shed().to_string(),
        r.failures.len().to_string(),
        r.metrics.retried.to_string(),
        format!(
            "{:.1}%",
            100.0 * r.metrics.completed as f64 / offered as f64
        ),
        format!("{:.2}", r.metrics.latency.quantile(0.99) * 1e3),
    ]);
}

/// A stable single-line digest of a run, used for the determinism check.
fn digest(offered: usize, r: &RunResult) -> String {
    let recovery: Vec<String> = r
        .recovery
        .iter()
        .map(|e| format!("{:.9}:{}:{}", e.t_s, e.subject, e.action))
        .collect();
    format!(
        "offered={offered} completed={} shed={} failed={} retried={} recovery=[{}]",
        r.metrics.completed,
        r.metrics.shed(),
        r.failures.len(),
        r.metrics.retried,
        recovery.join(",")
    )
}

/// Escapes a string for embedding in the JSON artifact.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The machine-readable recovery summary written to
/// `FPGACCEL_CHAOS_REPORT` for the CI smoke job.
fn json_report(
    offered: usize,
    r: &RunResult,
    baseline_completed: u64,
    deterministic: bool,
) -> String {
    let events: Vec<String> = r
        .recovery
        .iter()
        .map(|e| {
            format!(
                "{{\"t_s\":{:.9},\"subject\":{},\"action\":{},\"detail\":{}}}",
                e.t_s,
                json_str(&e.subject),
                json_str(&e.action),
                json_str(&e.detail)
            )
        })
        .collect();
    let lost: Vec<String> = r
        .recovery
        .iter()
        .filter(|e| e.action == "lost")
        .map(|e| json_str(&e.subject))
        .collect();
    format!(
        "{{\n  \"seed\": {CHAOS_SEED},\n  \"offered\": {offered},\n  \"completed\": {},\n  \
         \"shed\": {},\n  \"failed\": {},\n  \"retried\": {},\n  \"completion_rate\": {:.6},\n  \
         \"baseline_completed\": {baseline_completed},\n  \"devices_lost\": [{}],\n  \
         \"deterministic\": {deterministic},\n  \"recovery\": [{}]\n}}\n",
        r.metrics.completed,
        r.metrics.shed(),
        r.failures.len(),
        r.metrics.retried,
        r.metrics.completed as f64 / offered as f64,
        lost.join(", "),
        events.join(", ")
    )
}

/// The `chaos` experiment report.
pub fn chaos() -> String {
    let plan = committed_plan();

    // Fault-free baseline on the identical workload.
    let (offered, baseline) = run_with(None, &Tracer::disabled());

    // The committed scenario, traced and flight-recorded, run twice for
    // the determinism check.
    let tracer = Tracer::enabled();
    let flight = FlightRecorder::enabled(64);
    let (_, faulted) = run_with_flight(Some(plan.clone()), &tracer, &flight);
    let (_, second) = run_with(Some(plan.clone()), &Tracer::disabled());
    let deterministic = digest(offered, &faulted) == digest(offered, &second);

    let mut outcome = Table::new(
        "Chaos — committed fault schedule vs fault-free baseline (0.75x load)",
        &[
            "run",
            "offered",
            "completed",
            "shed",
            "failed",
            "retried",
            "completion",
            "p99 ms",
        ],
    );
    outcome_row(&mut outcome, "fault-free", offered, &baseline);
    outcome_row(&mut outcome, "faulted", offered, &faulted);

    let mut recovery = Table::new(
        "Chaos — recovery log (committed schedule)",
        &["t ms", "subject", "action", "detail"],
    );
    for e in &faulted.recovery {
        recovery.row(&[
            format!("{:.3}", e.t_s * 1e3),
            e.subject.clone(),
            e.action.clone(),
            e.detail.clone(),
        ]);
    }

    let mut health = Table::new(
        "Chaos — end-of-run device health",
        &["device", "health", "quarantines", "lost"],
    );
    for name in ["s10sx-0", "s10mx-0", "a10-0"] {
        let h = faulted
            .registry
            .value("serve_device_health_state", &[("device", name)]);
        let q = faulted
            .registry
            .value("serve_device_quarantines_total", &[("device", name)])
            .unwrap_or(0.0);
        let lost = faulted
            .registry
            .value("serve_devices_lost_total", &[("device", name)])
            .unwrap_or(0.0);
        health.row(&[
            name.to_string(),
            match h {
                Some(v) if v >= 1.0 => "healthy".into(),
                Some(v) if v > 0.0 => "quarantined".into(),
                Some(_) => "lost".into(),
                None => "?".into(),
            },
            format!("{q:.0}"),
            format!("{lost:.0}"),
        ]);
    }

    // Recovery machinery visible in the trace export.
    let spans = tracer.events();
    let span_count = |cat: &str| spans.iter().filter(|e| e.cat == cat).count();
    let span_line = format!(
        "Trace: {} fault, {} reprogram, {} quarantine, {} redistribute, {} retry span(s).",
        span_count("fault"),
        span_count("reprogram"),
        span_count("quarantine"),
        span_count("redistribute"),
        span_count("retry"),
    );

    // Seeded random sweep: generated plans of growing size, each run
    // checked for the accounting invariant (nothing vanishes).
    let mut sweep = Table::new(
        "Chaos — seeded random fault plans (accounting: nothing vanishes)",
        &[
            "seed",
            "faults",
            "offered",
            "completed",
            "shed",
            "failed",
            "completion",
            "lost devices",
        ],
    );
    for i in 0..sweep_budget() {
        let seed = SWEEP_SEED + i as u64;
        let spec = FaultSpec::budget(3 + i, &["s10sx-0", "s10mx-0", "a10-0"], 0.3);
        let p = FaultPlan::generate(seed, &spec);
        let faults = p.len();
        let (n, r) = run_with(Some(p), &Tracer::disabled());
        assert_eq!(
            r.metrics.completed as usize + r.metrics.shed() as usize + r.failures.len(),
            n,
            "chaos sweep seed {seed}: requests vanished"
        );
        let lost = r
            .recovery
            .iter()
            .filter(|e| e.action == "lost")
            .map(|e| e.subject.as_str())
            .collect::<Vec<_>>();
        sweep.row(&[
            format!("{seed:#x}"),
            faults.to_string(),
            n.to_string(),
            r.metrics.completed.to_string(),
            r.metrics.shed().to_string(),
            r.failures.len().to_string(),
            format!("{:.1}%", 100.0 * r.metrics.completed as f64 / n as f64),
            if lost.is_empty() {
                "-".into()
            } else {
                lost.join(" ")
            },
        ]);
    }

    if let Ok(path) = std::env::var("FPGACCEL_CHAOS_REPORT") {
        std::fs::write(
            &path,
            json_report(offered, &faulted, baseline.metrics.completed, deterministic),
        )
        .expect("chaos report artifact writes");
    }
    if let Ok(path) = std::env::var("FPGACCEL_CHAOS_POSTMORTEM") {
        let pms: Vec<String> = faulted.postmortems.iter().map(|p| p.to_json()).collect();
        std::fs::write(&path, format!("[\n{}]\n", pms.join(",\n")))
            .expect("chaos postmortem artifact writes");
    }

    format!(
        "Chaos — committed fault schedule (seed {CHAOS_SEED:#x})\n{}\n{}\n{}\n{}\n{span_line}\n\
         Committed scenario: s10mx-0 is lost mid-run (3/3 reprograms fail) yet the pool \
         completes {:.1}% of the offered load ({} synth flake(s) absorbed at deploy).\n\
         Determinism: two runs of the committed schedule are {} (same seed => same faults \
         => same recovery log, byte for byte).\n{}",
        plan.render(),
        outcome.render(),
        recovery.render(),
        health.render(),
        100.0 * faulted.metrics.completed as f64 / offered as f64,
        faulted
            .registry
            .value("serve_synth_flakes_total", &[])
            .unwrap_or(0.0),
        if deterministic {
            "identical"
        } else {
            "DIVERGENT"
        },
        sweep.render(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_schedule_loses_one_device_but_serves_most_of_the_load() {
        let (offered, r) = run_with(Some(committed_plan()), &Tracer::disabled());
        let lost: Vec<&str> = r
            .recovery
            .iter()
            .filter(|e| e.action == "lost")
            .map(|e| e.subject.as_str())
            .collect();
        assert_eq!(lost, ["s10mx-0"], "exactly one device is lost");
        assert!(
            r.metrics.completed as f64 >= 0.6 * offered as f64,
            "completed {}/{offered} — graceful degradation floor is 60%",
            r.metrics.completed
        );
        assert_eq!(
            r.metrics.completed as usize + r.metrics.shed() as usize + r.failures.len(),
            offered
        );
    }

    #[test]
    fn committed_schedule_recovery_is_traced() {
        let tracer = Tracer::enabled();
        let (_, r) = run_with(Some(committed_plan()), &tracer);
        let spans = tracer.events();
        for cat in ["quarantine", "reprogram", "redistribute", "fault"] {
            assert!(
                spans.iter().any(|e| e.cat == cat),
                "missing {cat} span in the chaos trace"
            );
        }
        // s10sx-0 recovers; the recovery log shows the full arc.
        let actions: Vec<&str> = r.recovery.iter().map(|e| e.action.as_str()).collect();
        for a in [
            "hang-detected",
            "reprogram-ok",
            "returned",
            "lost",
            "redistributed",
        ] {
            assert!(actions.contains(&a), "missing {a} in recovery log");
        }
    }

    #[test]
    fn chaos_report_is_deterministic() {
        assert_eq!(chaos(), chaos());
    }

    #[test]
    fn device_loss_produces_a_postmortem_reconstructing_the_incident() {
        let flight = FlightRecorder::enabled(64);
        let (_, r) = run_with_flight(Some(committed_plan()), &Tracer::disabled(), &flight);
        // The committed schedule loses s10mx-0: the recorder must hold a
        // device-lost snapshot whose window reconstructs the arc from
        // hang detection through the failed repair attempts to the loss.
        let pm = r
            .postmortems
            .iter()
            .find(|p| p.trigger == "device-lost" && p.subject == "s10mx-0")
            .expect("device loss triggers a postmortem");
        let kinds: Vec<&str> = pm.events.iter().map(|e| e.kind.as_str()).collect();
        assert!(kinds.contains(&"hang-detected"), "window shows the hang");
        assert!(
            kinds.contains(&"reprogram-fail"),
            "window shows the failed repairs"
        );
        assert!(
            pm.events.windows(2).all(|w| w[0].t_s <= w[1].t_s),
            "window is chronological"
        );
        assert!(
            pm.events.iter().all(|e| e.t_s <= pm.t_s),
            "window precedes the trigger"
        );
        // The snapshot renders as parseable, self-contained JSON.
        let j = fpgaccel_trace::json::Json::parse(&pm.to_json()).expect("postmortem JSON parses");
        assert_eq!(
            j.get("trigger")
                .and_then(|t| t.get("kind"))
                .and_then(|k| k.as_str()),
            Some("device-lost")
        );
        // Determinism: the same schedule reproduces the same snapshots.
        let flight2 = FlightRecorder::enabled(64);
        let (_, r2) = run_with_flight(Some(committed_plan()), &Tracer::disabled(), &flight2);
        let render = |res: &RunResult| {
            res.postmortems
                .iter()
                .map(|p| p.to_json())
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(render(&r), render(&r2));
    }

    /// Nightly-lane soak: a wide seeded sweep of generated fault plans.
    #[test]
    #[ignore = "seeded soak for the nightly lane"]
    fn soak_generated_plans_preserve_accounting() {
        for seed in 0..16u64 {
            let spec = FaultSpec::budget(
                4 + (seed % 7) as usize,
                &["s10sx-0", "s10mx-0", "a10-0"],
                0.3,
            );
            let (n, r) = run_with(Some(FaultPlan::generate(seed, &spec)), &Tracer::disabled());
            assert_eq!(
                r.metrics.completed as usize + r.metrics.shed() as usize + r.failures.len(),
                n,
                "seed {seed}: requests vanished"
            );
        }
    }
}
