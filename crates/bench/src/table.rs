//! Minimal aligned-column text tables for the experiment reports.

/// A simple text table builder with a title, header and aligned columns.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut v: Vec<String> = cells.to_vec();
        v.resize(self.header.len(), String::new());
        self.rows.push(v);
        self
    }

    /// Appends a row of string slices.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for (i, c) in cells.iter().enumerate().take(ncols) {
                line.push_str(&format!("{:<w$} | ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a sensible number of digits for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional float (`-` when absent).
pub fn opt(v: Option<f64>) -> String {
    v.map(f).unwrap_or_else(|| "-".to_string())
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_str(&["a", "1"]);
        t.row_str(&["longer", "2.5"]);
        let s = t.render();
        assert!(s.contains("### Demo"));
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 2.5   |"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1234.5), "1234"); // round-half-even
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(0.0123), "0.012");
        assert_eq!(opt(None), "-");
        assert_eq!(pct(48.6), "49%");
    }
}
