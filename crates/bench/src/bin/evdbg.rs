//! Event-timeline debugger for calibration.
//!
//! Prints the first events of a concurrent LeNet batch with their four
//! profiling timestamps, plus per-kernel totals and the breakdown.
//! `-v` dumps every event instead of the first 25; `-q` silences the
//! dump; `--trace [path]` additionally exports the run as a Chrome
//! trace-event JSON timeline (default `trace_evdbg.json`).

use fpgaccel_bench::log;
use fpgaccel_core::{Flow, OptimizationConfig};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;
use fpgaccel_trace::{chrome_trace_json, Tracer};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    log::init(&mut args);
    let trace_path = args.iter().position(|a| a == "--trace").map(|i| {
        args.get(i + 1)
            .cloned()
            .unwrap_or_else(|| "trace_evdbg.json".into())
    });
    let tracer = if trace_path.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };

    let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
        .with_tracer(&tracer)
        .compile(&OptimizationConfig::tvm_autorun().with_concurrent())
        .unwrap();
    let stats = d.simulate_batch_traced(3, &tracer, "evdbg LeNet x3");
    log::out(&format!("fps={:.0} spb={:.6}", stats.fps, stats.seconds));
    for (i, e) in stats.events.iter().enumerate() {
        let line = format!(
            "{:<10} {:?} q={:>9.1} s={:>9.1} e={:>9.1} dur={:>9.1}",
            e.name,
            e.kind,
            e.queued * 1e6,
            e.start * 1e6,
            e.end * 1e6,
            e.duration() * 1e6
        );
        if i < 25 {
            log::out(&line);
        } else {
            log::debug(&line);
        }
    }
    for (k, s) in &stats.kernel_seconds {
        log::out(&format!("{:<12} total {:>9.1}us", k, s * 1e6 / 3.0));
    }
    log::out(&format!(
        "breakdown: kernel {:.1}us write {:.1}us read {:.1}us span {:.1}us overhead {:.2}",
        stats.breakdown.kernel_s * 1e6 / 3.0,
        stats.breakdown.write_s * 1e6 / 3.0,
        stats.breakdown.read_s * 1e6 / 3.0,
        stats.breakdown.span_s * 1e6 / 3.0,
        stats.breakdown.overhead_fraction()
    ));

    if let Some(path) = trace_path {
        let json = chrome_trace_json(&tracer);
        if let Err(e) = std::fs::write(&path, &json) {
            log::error(&format!("cannot write {path}: {e}"));
            std::process::exit(1);
        }
        log::note(&format!("wrote {path} ({} bytes)", json.len()));
    }
}
