//! Event-timeline debugger for calibration.
use fpgaccel_core::{Flow, OptimizationConfig};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;

fn main() {
    let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
        .compile(&OptimizationConfig::tvm_autorun().with_concurrent())
        .unwrap();
    let stats = d.simulate_batch(3);
    println!("fps={:.0} spb={:.6}", stats.fps, stats.seconds);
    for e in stats.events.iter().take(25) {
        println!(
            "{:<10} {:?} q={:>9.1} s={:>9.1} e={:>9.1} dur={:>9.1}",
            e.name,
            e.kind,
            e.queued * 1e6,
            e.start * 1e6,
            e.end * 1e6,
            e.duration() * 1e6
        );
    }
    for (k, s) in &stats.kernel_seconds {
        println!("{:<12} total {:>9.1}us", k, s * 1e6 / 3.0);
    }
    println!(
        "breakdown: kernel {:.1}us write {:.1}us read {:.1}us span {:.1}us overhead {:.2}",
        stats.breakdown.kernel_s * 1e6 / 3.0,
        stats.breakdown.write_s * 1e6 / 3.0,
        stats.breakdown.read_s * 1e6 / 3.0,
        stats.breakdown.span_s * 1e6 / 3.0,
        stats.breakdown.overhead_fraction()
    );
}
