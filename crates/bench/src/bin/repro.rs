//! `repro` — regenerates every table and figure of the thesis evaluation.
//!
//! ```text
//! cargo run --release -p fpgaccel-bench --bin repro -- all
//! cargo run --release -p fpgaccel-bench --bin repro -- tab6_9 fig6_3
//! cargo run --release -p fpgaccel-bench --bin repro -- --list
//! ```

use fpgaccel_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] [all | <experiment id>...]");
        eprintln!("experiments:");
        for (name, _) in experiments::ALL_EXPERIMENTS {
            eprintln!("  {name}");
        }
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for (name, _) in experiments::ALL_EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL_EXPERIMENTS
            .iter()
            .map(|(n, _)| *n)
            .collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match experiments::run(id) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                eprintln!("unknown experiment `{id}` (try --list)");
                std::process::exit(1);
            }
        }
    }
}
