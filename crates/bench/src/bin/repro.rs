//! `repro` — regenerates every table and figure of the thesis evaluation.
//!
//! ```text
//! cargo run --release -p fpgaccel-bench --bin repro -- all
//! cargo run --release -p fpgaccel-bench --bin repro -- tab6_9 fig6_3
//! cargo run --release -p fpgaccel-bench --bin repro -- --list
//! cargo run --release -p fpgaccel-bench --bin repro -- trace fig6_2
//! ```
//!
//! Experiment reports print to stdout byte-identically run to run;
//! `trace <experiment>` writes a Chrome trace-event JSON timeline
//! (Perfetto-loadable) instead. `-q`/`-v` adjust diagnostic verbosity
//! (`FPGACCEL_LOG=quiet|normal|verbose` presets it).

use fpgaccel_bench::{experiments, log, tracing};

/// Count heap allocations so the hot-path profiler's allocation columns
/// are live when experiments run under `repro` (library consumers that
/// don't install it just read zeros).
#[global_allocator]
static ALLOC: fpgaccel_trace::alloc::CountingAlloc = fpgaccel_trace::alloc::CountingAlloc;

fn usage() {
    log::error("usage: repro [-q|-v] [--list] [all | <experiment id>...]");
    log::error("       repro [-q|-v] trace <experiment> [output.json]");
    log::error("experiments:");
    for (name, _) in experiments::ALL_EXPERIMENTS {
        let traced = if tracing::TRACEABLE.contains(name) {
            "  (traceable)"
        } else {
            ""
        };
        log::error(&format!("  {name}{traced}"));
    }
}

/// The `trace <experiment>` subcommand: export a Perfetto-loadable
/// timeline for one experiment. Exits nonzero on unknown or untraceable
/// ids and on I/O failure.
fn run_trace(args: &[String]) {
    let Some(id) = args.first() else {
        usage();
        std::process::exit(2);
    };
    let Some(json) = tracing::trace_experiment(id) else {
        log::error(&format!(
            "no timeline export for `{id}` (traceable: {})",
            tracing::TRACEABLE.join(", ")
        ));
        std::process::exit(1);
    };
    let path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| format!("trace_{id}.json"));
    if let Err(e) = std::fs::write(&path, &json) {
        log::error(&format!("cannot write {path}: {e}"));
        std::process::exit(1);
    }
    log::note(&format!(
        "wrote {path} ({} bytes) — load it at https://ui.perfetto.dev",
        json.len()
    ));
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    log::init(&mut args);
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
        std::process::exit(0);
    }
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--list") {
        for (name, _) in experiments::ALL_EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    if args[0] == "trace" {
        run_trace(&args[1..]);
        return;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL_EXPERIMENTS
            .iter()
            .map(|(n, _)| *n)
            .collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        log::debug(&format!("running {id}"));
        match experiments::run(id) {
            Some(report) => {
                println!("{report}");
            }
            None => {
                log::error(&format!("unknown experiment `{id}` (try --list)"));
                std::process::exit(1);
            }
        }
    }
}
