//! Calibration scratchpad: prints modeled vs thesis-reported FPS and area
//! for every (model, platform, config). Not part of the public harness —
//! `repro` is — but kept for tuning `aoc::calib`. `-q` silences the dump;
//! `-v` is accepted for symmetry with the other binaries.

use fpgaccel_bench::{log, paper};
use fpgaccel_core::bitstreams::{baseline_config, lenet_ladder, optimized_config};
use fpgaccel_core::Flow;
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    log::init(&mut args);
    log::out("=== LeNet ladder (Figure 6.1), batch=200 ===");
    for p in FpgaPlatform::ALL {
        for cfg in lenet_ladder() {
            for ce in [false, true] {
                let cfg = if ce {
                    cfg.clone().with_concurrent()
                } else {
                    cfg.clone()
                };
                match Flow::new(Model::LeNet5, p).compile(&cfg) {
                    Ok(d) => {
                        let s = d.simulate_batch(200);
                        log::out(&format!(
                            "{:<6} {:<18} fps {:>9.1}   [{}]",
                            p.label(),
                            cfg.label,
                            s.fps,
                            d.fit_summary()
                        ));
                    }
                    Err(e) => log::out(&format!("{:<6} {:<18} FAILED: {e}", p.label(), cfg.label)),
                }
            }
        }
    }

    log::out("\n=== Endpoints vs paper ===");
    for m in Model::ALL {
        for p in FpgaPlatform::ALL {
            for (kind, cfg, target) in [
                ("base", baseline_config(m), paper::base_fps(m, p)),
                ("opt ", optimized_config(m, p), paper::optimized_fps(m, p)),
            ] {
                let n = if m == Model::LeNet5 { 200 } else { 3 };
                let got = Flow::new(m, p)
                    .compile(&cfg)
                    .map(|d| (d.simulate_batch(n), d.fit_summary()));
                match (got, target) {
                    (Ok((s, fit)), Some(t)) => log::out(&format!(
                        "{:<12} {:<6} {kind} model {:>10.3} fps  paper {:>10.3}  ratio {:>5.2}  [{fit}]",
                        m.name(),
                        p.label(),
                        s.fps,
                        t,
                        s.fps / t
                    )),
                    (Ok((s, _)), None) => log::out(&format!(
                        "{:<12} {:<6} {kind} model {:>10.3} fps  paper: DID NOT FIT (MISMATCH)",
                        m.name(),
                        p.label(),
                        s.fps
                    )),
                    (Err(_), None) => log::out(&format!(
                        "{:<12} {:<6} {kind} does not fit (matches paper)",
                        m.name(),
                        p.label()
                    )),
                    (Err(e), Some(t)) => log::out(&format!(
                        "{:<12} {:<6} {kind} FAILED ({e}) but paper reports {t} (MISMATCH)",
                        m.name(),
                        p.label()
                    )),
                }
            }
        }
    }
}
