//! Wall-clock benches over the real Rust substrate: the reference operators,
//! the IR interpreter, and full-network inference. These measure genuine
//! computation on the host (not simulated FPGA time).

use fpgaccel_baseline::ReferenceEngine;
use fpgaccel_bench::timing::bench;
use fpgaccel_tensor::models::Model;
use fpgaccel_tensor::ops::{self, Activation, Conv2dParams};
use fpgaccel_tensor::{data, Shape, Tensor};
use fpgaccel_tir::compute::{conv2d, ConvDims, ConvSchedule, ConvSpec};
use fpgaccel_tir::interp::Interp;
use fpgaccel_tir::Binding;
use std::collections::HashMap;

fn bench_conv() {
    // LeNet conv2: 16x11x11 out over 6 channels of 3x3.
    let input = Tensor::random(Shape::chw(6, 13, 13), 1, 1.0);
    let w = Tensor::random(Shape::kcff(16, 6, 3), 2, 0.5);
    let p = Conv2dParams::plain(1, 0);
    bench("conv2d/lenet_conv2", 50, 5, || ops::conv2d(&input, &w, &p));
    // One MobileNet 1x1 stage: 128 <- 128 @ 28x28.
    let input = Tensor::random(Shape::chw(128, 28, 28), 3, 1.0);
    let w = Tensor::random(Shape::kcff(128, 128, 1), 4, 0.1);
    bench("conv2d/mobilenet_1x1_128", 5, 5, || {
        ops::conv2d(&input, &w, &p)
    });
    // Depthwise 3x3 @ 56x56 over 128 channels.
    let input = Tensor::random(Shape::chw(128, 58, 58), 5, 1.0);
    let w = Tensor::random(Shape(vec![128, 1, 3, 3]), 6, 0.5);
    bench("conv2d/depthwise_3x3_128", 10, 5, || {
        ops::depthwise_conv2d(&input, &w, &p)
    });
}

fn bench_conv_algorithms() {
    // Direct vs im2col+GEMM on a MobileNet-sized 1x1 stage — the lowering
    // the CPU baselines use.
    let input = Tensor::random(Shape::chw(256, 14, 14), 20, 1.0);
    let w = Tensor::random(Shape::kcff(256, 256, 1), 21, 0.1);
    let p = Conv2dParams::plain(1, 0);
    bench("conv_algorithm/direct", 5, 5, || {
        ops::conv2d(&input, &w, &p)
    });
    bench("conv_algorithm/im2col_gemm", 5, 5, || {
        ops::conv2d_im2col(&input, &w, &p)
    });
}

fn bench_dense_softmax_pad() {
    let x = Tensor::random(Shape::d1(1024), 7, 1.0);
    let w = Tensor::random(Shape::d2(1000, 1024), 8, 0.05);
    bench("dense_1000x1024", 20, 5, || {
        ops::dense(&x, &w, None, Activation::None)
    });
    let logits = Tensor::random(Shape::d1(1000), 9, 4.0);
    bench("softmax_1000", 200, 5, || ops::softmax(&logits));
    let fm = Tensor::random(Shape::chw(64, 56, 56), 10, 1.0);
    bench("pad2d_64x56x56", 20, 5, || ops::pad2d(&fm, 1));
}

fn bench_interpreter_vs_native() {
    // The same small convolution through the IR interpreter and natively.
    let dims = ConvDims::constant(8, 8, 10, 10, 3, 1);
    let input = Tensor::random(Shape::chw(8, 12, 12), 11, 1.0);
    let w = Tensor::random(Shape::kcff(8, 8, 3), 12, 0.5);
    let mut spec = ConvSpec::base("bench_conv", dims, false);
    spec.schedule = ConvSchedule::Fused { unroll_ff: true };
    let kernel = conv2d(&spec);
    let mut inputs = HashMap::new();
    inputs.insert("in_fm".to_string(), input.data().to_vec());
    inputs.insert("w".to_string(), w.data().to_vec());
    bench("interp_vs_native/interpreter", 2, 3, || {
        Interp::new().run(&kernel, &Binding::empty(), &inputs)
    });
    let p = Conv2dParams::plain(1, 0);
    bench("interp_vs_native/native", 50, 5, || {
        ops::conv2d(&input, &w, &p)
    });
}

fn bench_networks() {
    let lenet = ReferenceEngine::new(Model::LeNet5);
    let digit = data::synthetic_digit(3, 0);
    bench("forward_pass/lenet5", 20, 5, || lenet.infer(&digit));
    let mobilenet = ReferenceEngine::new(Model::MobileNetV1);
    let img = data::imagenet_input(0);
    bench("forward_pass/mobilenet_v1_224", 1, 3, || {
        mobilenet.infer(&img)
    });
}

fn main() {
    bench_conv();
    bench_conv_algorithms();
    bench_dense_softmax_pad();
    bench_interpreter_vs_native();
    bench_networks();
}
