//! Criterion benches over the compilation flow and the event simulation:
//! synthesis cost per network, steady-state batch simulation, the DSE sweep,
//! and ablations of the float-operation flags (§4.10).

use criterion::{criterion_group, criterion_main, Criterion};
use fpgaccel_aoc::AocOptions;
use fpgaccel_core::bitstreams::{optimized_config, TABLE_6_6_TILINGS};
use fpgaccel_core::{dse, Flow, OptimizationConfig};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("flow_compile");
    g.sample_size(10);
    for (m, p) in [
        (Model::LeNet5, FpgaPlatform::Stratix10Sx),
        (Model::MobileNetV1, FpgaPlatform::Stratix10Sx),
        (Model::ResNet34, FpgaPlatform::Stratix10Sx),
    ] {
        g.bench_function(m.name(), |b| {
            let flow = Flow::new(m, p);
            let cfg = optimized_config(m, p);
            b.iter(|| flow.compile(&cfg).unwrap())
        });
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_simulation");
    g.sample_size(10);
    let lenet = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
        .compile(&OptimizationConfig::tvm_autorun().with_concurrent())
        .unwrap();
    g.bench_function("lenet_100_images", |b| {
        b.iter(|| lenet.simulate_batch(100))
    });
    let mobilenet = Flow::new(Model::MobileNetV1, FpgaPlatform::Stratix10Sx)
        .compile(&optimized_config(
            Model::MobileNetV1,
            FpgaPlatform::Stratix10Sx,
        ))
        .unwrap();
    g.bench_function("mobilenet_3_images", |b| {
        b.iter(|| mobilenet.simulate_batch(3))
    });
    g.finish();
}

fn bench_dse(c: &mut Criterion) {
    let mut g = c.benchmark_group("design_space");
    g.sample_size(10);
    g.bench_function("table_6_6_sweep", |b| {
        b.iter(|| {
            dse::sweep_1x1(
                Model::MobileNetV1,
                FpgaPlatform::Arria10Gx,
                TABLE_6_6_TILINGS,
            )
        })
    });
    g.finish();
}

/// Ablation: -fp-relaxed/-fpc off vs on (§4.10). The strict-IEEE bitstream
/// cannot infer the single-cycle accumulator, so simulated throughput drops.
fn bench_float_flags_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fp_flags");
    g.sample_size(10);
    for (label, aoc) in [("relaxed", AocOptions::default()), ("strict", AocOptions::strict())] {
        let mut cfg = OptimizationConfig::tvm_autorun().with_concurrent();
        cfg.aoc = aoc;
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .compile(&cfg)
            .unwrap();
        let fps = d.simulate_batch(100).fps;
        g.bench_function(format!("lenet_{label}_{fps:.0}fps"), |b| {
            b.iter(|| d.simulate_batch(20))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_compile,
    bench_simulation,
    bench_dse,
    bench_float_flags_ablation
);
criterion_main!(benches);
