//! Wall-clock benches over the compilation flow and the event simulation:
//! synthesis cost per network, steady-state batch simulation, the DSE sweep,
//! and ablations of the float-operation flags (§4.10).

use fpgaccel_aoc::AocOptions;
use fpgaccel_bench::timing::bench;
use fpgaccel_core::bitstreams::{optimized_config, TABLE_6_6_TILINGS};
use fpgaccel_core::{dse, Flow, OptimizationConfig};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;

fn bench_compile() {
    for (m, p) in [
        (Model::LeNet5, FpgaPlatform::Stratix10Sx),
        (Model::MobileNetV1, FpgaPlatform::Stratix10Sx),
        (Model::ResNet34, FpgaPlatform::Stratix10Sx),
    ] {
        let flow = Flow::new(m, p);
        let cfg = optimized_config(m, p);
        bench(&format!("flow_compile/{}", m.name()), 2, 3, || {
            flow.compile(&cfg).unwrap()
        });
    }
}

fn bench_simulation() {
    let lenet = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
        .compile(&OptimizationConfig::tvm_autorun().with_concurrent())
        .unwrap();
    bench("batch_simulation/lenet_100_images", 5, 5, || {
        lenet.simulate_batch(100)
    });
    let mobilenet = Flow::new(Model::MobileNetV1, FpgaPlatform::Stratix10Sx)
        .compile(&optimized_config(
            Model::MobileNetV1,
            FpgaPlatform::Stratix10Sx,
        ))
        .unwrap();
    bench("batch_simulation/mobilenet_3_images", 5, 5, || {
        mobilenet.simulate_batch(3)
    });
}

fn bench_dse() {
    bench("design_space/table_6_6_sweep", 1, 3, || {
        dse::sweep_1x1(
            Model::MobileNetV1,
            FpgaPlatform::Arria10Gx,
            TABLE_6_6_TILINGS,
        )
    });
}

/// Ablation: -fp-relaxed/-fpc off vs on (§4.10). The strict-IEEE bitstream
/// cannot infer the single-cycle accumulator, so simulated throughput drops.
fn bench_float_flags_ablation() {
    for (label, aoc) in [
        ("relaxed", AocOptions::default()),
        ("strict", AocOptions::strict()),
    ] {
        let mut cfg = OptimizationConfig::tvm_autorun().with_concurrent();
        cfg.aoc = aoc;
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .compile(&cfg)
            .unwrap();
        let fps = d.simulate_batch(100).fps;
        bench(
            &format!("ablation_fp_flags/lenet_{label}_{fps:.0}fps"),
            5,
            5,
            || d.simulate_batch(20),
        );
    }
}

fn main() {
    bench_compile();
    bench_simulation();
    bench_dse();
    bench_float_flags_ablation();
}
