//! Integration tests for the fleet driver: QoS isolation under a tenant
//! surge, fleet-wide rollouts with a sabotaged shard, and byte-identical
//! reruns.

use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_core::{OptimizationConfig, TilingPreset};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_fault::{shadow_target, FaultEvent, FaultKind, FaultPlan};
use fpgaccel_fleet::{
    DeviceClass, Fleet, FleetConfig, FleetRollout, FleetSpec, ModelDemand, TenantLoad, TenantPolicy,
};
use fpgaccel_serve::{AdmissionPolicy, DeploymentCache, RolloutPolicy, ServeConfig};
use fpgaccel_tensor::models::Model;
use fpgaccel_tune::TuningDb;

/// Calibrated steady-state rate of one device, requests/second, probed
/// the same way placement probes it.
fn device_rate(model: Model, platform: FpgaPlatform) -> f64 {
    let mut cache = DeploymentCache::new();
    let d = cache
        .get_or_compile(model, platform, &optimized_config(model, platform))
        .unwrap();
    let lm = cache.calibration(&d, 16);
    16.0 / lm.seconds(16)
}

/// Deep-queue, no-deadline serving config: admitted traffic completes.
fn deep_queue() -> ServeConfig {
    ServeConfig {
        admission: AdmissionPolicy {
            queue_capacity: 1 << 14,
            default_deadline_s: None,
        },
        ..ServeConfig::default()
    }
}

fn lenet_spec() -> FleetSpec {
    let rate = device_rate(Model::LeNet5, FpgaPlatform::Stratix10Sx);
    FleetSpec {
        classes: vec![DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: 6,
        }],
        demands: vec![ModelDemand {
            model: Model::LeNet5,
            rate_rps: rate * 3.2,
        }],
        headroom: 0.25,
    }
}

fn surge_tenants(capacity: f64) -> Vec<TenantLoad> {
    let tenant = |name: &str, budget: f64, offered: f64| TenantLoad {
        policy: TenantPolicy {
            name: name.into(),
            weight: 1.0,
            budget_rps: budget,
            burst: 20.0,
        },
        offered: vec![(Model::LeNet5, offered)],
    };
    vec![
        tenant("alpha", 0.3 * capacity, 0.15 * capacity),
        tenant("bravo", 0.3 * capacity, 0.15 * capacity),
        // Charlie offers 10x its budget: the surge the QoS door absorbs.
        tenant("charlie", 0.2 * capacity, 2.0 * capacity),
    ]
}

#[test]
fn a_surging_tenant_is_shed_without_touching_its_neighbours() {
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        ..FleetConfig::default()
    };
    let mut db = TuningDb::new();
    let fleet = Fleet::build(&lenet_spec(), cfg, &mut db).unwrap();
    assert!(!fleet.plan().from_cache);
    assert!(fleet.plan().evaluations > 0);
    let capacity = fleet.capacity_rps();
    let r = fleet.run(&surge_tenants(capacity), 0.25);

    let by_name = |n: &str| r.tenants.iter().find(|t| t.name == n).unwrap();
    let (alpha, bravo, charlie) = (by_name("alpha"), by_name("bravo"), by_name("charlie"));

    // The surge sheds at the fleet door — weighted-fair, not starvation.
    assert!(charlie.shed_fleet > 0, "a 10x surge must shed");
    assert!(
        charlie.admitted_in_budget + charlie.admitted_over_budget > 0,
        "the surging tenant keeps its budget + fair share"
    );
    // Isolation: the well-behaved tenants never shed, anywhere.
    for t in [alpha, bravo] {
        assert_eq!(t.shed_fleet, 0, "{} shed at the fleet door", t.name);
        assert_eq!(t.shed_shard, 0, "{} shed inside a shard", t.name);
        assert!(
            t.completion_rate() >= 0.99,
            "{}: completion {:.4}",
            t.name,
            t.completion_rate()
        );
    }
    // The hard QoS guarantee: every intra-budget admit completes.
    for t in &r.tenants {
        assert_eq!(
            t.in_budget_completion_rate(),
            1.0,
            "{}: intra-budget completion",
            t.name
        );
    }
    // Fleet metrics carry the tenant accounting.
    assert_eq!(
        r.registry.value(
            "fleet_shed_total",
            &[("tenant", "charlie"), ("scope", "fleet")]
        ),
        Some(charlie.shed_fleet as f64)
    );
    assert_eq!(r.registry.value("fleet_shards_count", &[]), Some(2.0));
    assert!(
        r.registry
            .value("fleet_class_devices_count", &[("class", "S10SX")])
            == Some(6.0)
    );
}

#[test]
fn reruns_are_byte_identical_and_warm_builds_reload_the_plan() {
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        ..FleetConfig::default()
    };
    let spec = lenet_spec();
    let mut db = TuningDb::new();
    let cold = Fleet::build(&spec, cfg.clone(), &mut db).unwrap();
    let capacity = cold.capacity_rps();
    let tenants = surge_tenants(capacity);
    let first = cold.run(&tenants, 0.25);

    // Same database: the plan reloads with zero feasibility probes.
    let warm = Fleet::build(&spec, cfg, &mut db).unwrap();
    assert!(warm.plan().from_cache);
    assert_eq!(warm.plan().evaluations, 0);
    assert_eq!(warm.capacity_rps(), capacity);
    let second = warm.run(&tenants, 0.25);

    assert_eq!(first.digest(), second.digest());
}

#[test]
fn a_fleet_rollout_upgrades_every_shard_absorbing_one_sabotaged_rollback() {
    let rate = device_rate(Model::MobileNetV1, FpgaPlatform::Stratix10Sx);
    let spec = FleetSpec {
        classes: vec![DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: 4,
        }],
        demands: vec![ModelDemand {
            model: Model::MobileNetV1,
            rate_rps: rate * 2.5,
        }],
        headroom: 0.2,
    };
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        ..FleetConfig::default()
    };
    let mut db = TuningDb::new();
    let mut fleet = Fleet::build(&spec, cfg, &mut db).unwrap();
    let capacity = fleet.capacity_rps();

    // The upgrade target: the auto-tuned folded MobileNet shape.
    let mut to = OptimizationConfig::folded(TilingPreset::Custom1x1 { tile: (7, 8, 8) });
    to.label = "Folded-Tuned".into();
    fleet.schedule_rollout(FleetRollout {
        model: Model::MobileNetV1,
        to,
        start_s: 0.10,
        stagger_s: 0.05,
        retry_at_s: 0.45,
        policy: RolloutPolicy::default(),
    });

    // Sabotage the first shard serving the model: its first reprogram
    // fails (absorbed by retry) and its canary shadow batch reads back
    // corrupt, forcing a rollback — then the scheduled retry promotes.
    let serving = fleet.shards_serving(Model::MobileNetV1);
    assert_eq!(serving.len(), 2, "both shards should serve MobileNet");
    let victim = serving[0];
    let device = fleet.device_serving(victim, Model::MobileNetV1).unwrap();
    fleet.sabotage_shard(
        victim,
        FaultPlan::new(
            0x5AB0,
            vec![
                FaultEvent {
                    at_s: 0.10,
                    target: device.clone(),
                    kind: FaultKind::ReprogramFail,
                },
                FaultEvent {
                    at_s: 0.10,
                    target: shadow_target(&device),
                    kind: FaultKind::TransferCorrupt,
                },
            ],
        ),
    );

    let tenant = TenantLoad {
        policy: TenantPolicy {
            name: "prod".into(),
            weight: 1.0,
            budget_rps: capacity,
            burst: 20.0,
        },
        offered: vec![(Model::MobileNetV1, 0.5 * capacity)],
    };
    let r = fleet.run(&[tenant], 1.0);

    // Exactly one rollback (the sabotaged first attempt); every serving
    // shard promoted (the victim through its retry).
    assert_eq!(r.rollbacks(), 1);
    assert_eq!(r.promotions(), 2);
    assert!(
        r.postmortems() >= 1,
        "the shard rollback must freeze a flight postmortem"
    );
    // Every device serving MobileNet ends on the upgraded deployment.
    for shard in &r.shards {
        for d in &shard.devices {
            for (model, label) in &d.deployments {
                if *model == Model::MobileNetV1 {
                    assert_eq!(label, "Folded-Tuned", "{}", d.device);
                }
            }
        }
    }
    // Nothing was lost to the sabotage: the tenant's traffic completed.
    let t = &r.tenants[0];
    assert_eq!(t.in_budget_completion_rate(), 1.0);
}
