//! Integration tests for the fleet driver: QoS isolation under a tenant
//! surge, fleet-wide rollouts with a sabotaged shard, byte-identical
//! reruns, and the resilience stack (correlated domain outages, hedging,
//! failover replay, and self-healing re-placement) on its happy and
//! negative paths.

use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_core::{OptimizationConfig, TilingPreset};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_fault::{shadow_target, FaultEvent, FaultKind, FaultPlan};
use fpgaccel_fleet::{
    DeviceClass, Fleet, FleetConfig, FleetRollout, FleetSpec, HealthPolicy, ModelDemand,
    PlacementError, TenantLoad, TenantPolicy,
};
use fpgaccel_serve::{AdmissionPolicy, DeploymentCache, RolloutPolicy, ServeConfig};
use fpgaccel_tensor::models::Model;
use fpgaccel_tune::TuningDb;

/// Calibrated steady-state rate of one device, requests/second, probed
/// the same way placement probes it.
fn device_rate(model: Model, platform: FpgaPlatform) -> f64 {
    let mut cache = DeploymentCache::new();
    let d = cache
        .get_or_compile(model, platform, &optimized_config(model, platform))
        .unwrap();
    let lm = cache.calibration(&d, 16);
    16.0 / lm.seconds(16)
}

/// Deep-queue, no-deadline serving config: admitted traffic completes.
fn deep_queue() -> ServeConfig {
    ServeConfig {
        admission: AdmissionPolicy {
            queue_capacity: 1 << 14,
            default_deadline_s: None,
        },
        ..ServeConfig::default()
    }
}

fn lenet_spec() -> FleetSpec {
    let rate = device_rate(Model::LeNet5, FpgaPlatform::Stratix10Sx);
    FleetSpec {
        classes: vec![DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: 6,
        }],
        demands: vec![ModelDemand {
            model: Model::LeNet5,
            rate_rps: rate * 3.2,
        }],
        headroom: 0.25,
        domains: 1,
    }
}

fn surge_tenants(capacity: f64) -> Vec<TenantLoad> {
    let tenant = |name: &str, budget: f64, offered: f64| TenantLoad {
        policy: TenantPolicy {
            name: name.into(),
            weight: 1.0,
            budget_rps: budget,
            burst: 20.0,
        },
        offered: vec![(Model::LeNet5, offered)],
    };
    vec![
        tenant("alpha", 0.3 * capacity, 0.15 * capacity),
        tenant("bravo", 0.3 * capacity, 0.15 * capacity),
        // Charlie offers 10x its budget: the surge the QoS door absorbs.
        tenant("charlie", 0.2 * capacity, 2.0 * capacity),
    ]
}

#[test]
fn a_surging_tenant_is_shed_without_touching_its_neighbours() {
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        ..FleetConfig::default()
    };
    let mut db = TuningDb::new();
    let fleet = Fleet::build(&lenet_spec(), cfg, &mut db).unwrap();
    assert!(!fleet.plan().from_cache);
    assert!(fleet.plan().evaluations > 0);
    let capacity = fleet.capacity_rps();
    let r = fleet.run(&surge_tenants(capacity), 0.25);

    let by_name = |n: &str| r.tenants.iter().find(|t| t.name == n).unwrap();
    let (alpha, bravo, charlie) = (by_name("alpha"), by_name("bravo"), by_name("charlie"));

    // The surge sheds at the fleet door — weighted-fair, not starvation.
    assert!(charlie.shed_fleet > 0, "a 10x surge must shed");
    assert!(
        charlie.admitted_in_budget + charlie.admitted_over_budget > 0,
        "the surging tenant keeps its budget + fair share"
    );
    // Isolation: the well-behaved tenants never shed, anywhere.
    for t in [alpha, bravo] {
        assert_eq!(t.shed_fleet, 0, "{} shed at the fleet door", t.name);
        assert_eq!(t.shed_shard, 0, "{} shed inside a shard", t.name);
        assert!(
            t.completion_rate() >= 0.99,
            "{}: completion {:.4}",
            t.name,
            t.completion_rate()
        );
    }
    // The hard QoS guarantee: every intra-budget admit completes.
    for t in &r.tenants {
        assert_eq!(
            t.in_budget_completion_rate(),
            1.0,
            "{}: intra-budget completion",
            t.name
        );
    }
    // Fleet metrics carry the tenant accounting.
    assert_eq!(
        r.registry.value(
            "fleet_shed_total",
            &[("tenant", "charlie"), ("scope", "fleet")]
        ),
        Some(charlie.shed_fleet as f64)
    );
    assert_eq!(r.registry.value("fleet_shards_count", &[]), Some(2.0));
    assert!(
        r.registry
            .value("fleet_class_devices_count", &[("class", "S10SX")])
            == Some(6.0)
    );
}

#[test]
fn reruns_are_byte_identical_and_warm_builds_reload_the_plan() {
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        ..FleetConfig::default()
    };
    let spec = lenet_spec();
    let mut db = TuningDb::new();
    let cold = Fleet::build(&spec, cfg.clone(), &mut db).unwrap();
    let capacity = cold.capacity_rps();
    let tenants = surge_tenants(capacity);
    let first = cold.run(&tenants, 0.25);

    // Same database: the plan reloads with zero feasibility probes.
    let warm = Fleet::build(&spec, cfg, &mut db).unwrap();
    assert!(warm.plan().from_cache);
    assert_eq!(warm.plan().evaluations, 0);
    assert_eq!(warm.capacity_rps(), capacity);
    let second = warm.run(&tenants, 0.25);

    assert_eq!(first.digest(), second.digest());
}

#[test]
fn a_fleet_rollout_upgrades_every_shard_absorbing_one_sabotaged_rollback() {
    let rate = device_rate(Model::MobileNetV1, FpgaPlatform::Stratix10Sx);
    let spec = FleetSpec {
        classes: vec![DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: 4,
        }],
        demands: vec![ModelDemand {
            model: Model::MobileNetV1,
            rate_rps: rate * 2.5,
        }],
        headroom: 0.2,
        domains: 1,
    };
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        ..FleetConfig::default()
    };
    let mut db = TuningDb::new();
    let mut fleet = Fleet::build(&spec, cfg, &mut db).unwrap();
    let capacity = fleet.capacity_rps();

    // The upgrade target: the auto-tuned folded MobileNet shape.
    let mut to = OptimizationConfig::folded(TilingPreset::Custom1x1 { tile: (7, 8, 8) });
    to.label = "Folded-Tuned".into();
    fleet.schedule_rollout(FleetRollout {
        model: Model::MobileNetV1,
        to,
        start_s: 0.10,
        stagger_s: 0.05,
        retry_at_s: 0.45,
        policy: RolloutPolicy::default(),
    });

    // Sabotage the first shard serving the model: its first reprogram
    // fails (absorbed by retry) and its canary shadow batch reads back
    // corrupt, forcing a rollback — then the scheduled retry promotes.
    let serving = fleet.shards_serving(Model::MobileNetV1);
    assert_eq!(serving.len(), 2, "both shards should serve MobileNet");
    let victim = serving[0];
    let device = fleet.device_serving(victim, Model::MobileNetV1).unwrap();
    fleet.sabotage_shard(
        victim,
        FaultPlan::new(
            0x5AB0,
            vec![
                FaultEvent {
                    at_s: 0.10,
                    target: device.clone(),
                    kind: FaultKind::ReprogramFail,
                },
                FaultEvent {
                    at_s: 0.10,
                    target: shadow_target(&device),
                    kind: FaultKind::TransferCorrupt,
                },
            ],
        ),
    );

    let tenant = TenantLoad {
        policy: TenantPolicy {
            name: "prod".into(),
            weight: 1.0,
            budget_rps: capacity,
            burst: 20.0,
        },
        offered: vec![(Model::MobileNetV1, 0.5 * capacity)],
    };
    let r = fleet.run(&[tenant], 1.0);

    // Exactly one rollback (the sabotaged first attempt); every serving
    // shard promoted (the victim through its retry).
    assert_eq!(r.rollbacks(), 1);
    assert_eq!(r.promotions(), 2);
    assert!(
        r.postmortems() >= 1,
        "the shard rollback must freeze a flight postmortem"
    );
    // Every device serving MobileNet ends on the upgraded deployment.
    for shard in &r.shards {
        for d in &shard.devices {
            for (model, label) in &d.deployments {
                if *model == Model::MobileNetV1 {
                    assert_eq!(label, "Folded-Tuned", "{}", d.device);
                }
            }
        }
    }
    // Nothing was lost to the sabotage: the tenant's traffic completed.
    let t = &r.tenants[0];
    assert_eq!(t.in_budget_completion_rate(), 1.0);
}

/// A LeNet spec striped over two failure domains (one per shard).
fn domained_spec(demand_x: f64, headroom: f64) -> FleetSpec {
    let rate = device_rate(Model::LeNet5, FpgaPlatform::Stratix10Sx);
    FleetSpec {
        classes: vec![DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: 6,
        }],
        demands: vec![ModelDemand {
            model: Model::LeNet5,
            rate_rps: rate * demand_x,
        }],
        headroom,
        domains: 2,
    }
}

/// Sabotages both shards and runs the surge scenario once; used twice to
/// prove multi-shard arming and re-arming leak no injector state.
fn run_doubly_sabotaged(spec: &FleetSpec, db: &mut TuningDb) -> String {
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::build(spec, cfg, db).unwrap();
    let capacity = fleet.capacity_rps();
    for shard in 0..2 {
        let device = fleet.device_serving(shard, Model::LeNet5).unwrap();
        // Arm the same shard twice: the plans must merge, not replace.
        fleet.sabotage_shard(
            shard,
            FaultPlan::new(
                0x5AB0 + shard as u64,
                vec![FaultEvent {
                    at_s: 0.05,
                    target: device.clone(),
                    kind: FaultKind::TransferCorrupt,
                }],
            ),
        );
        fleet.sabotage_shard(
            shard,
            FaultPlan::new(
                0x5AB1 + shard as u64,
                vec![FaultEvent {
                    at_s: 0.10,
                    target: device,
                    kind: FaultKind::TransferStall {
                        factor: 3.0,
                        for_s: 0.02,
                    },
                }],
            ),
        );
    }
    fleet.run(&surge_tenants(capacity), 0.25).digest()
}

#[test]
fn arming_multiple_shards_twice_keeps_reruns_byte_identical() {
    // Injector state is consumed one-shot during a run; re-arming a
    // rebuilt fleet must produce the same bytes — nothing may leak from
    // the first run's injectors into the second.
    let spec = domained_spec(3.2, 0.25);
    let mut db = TuningDb::new();
    let first = run_doubly_sabotaged(&spec, &mut db);
    let second = run_doubly_sabotaged(&spec, &mut db);
    assert_eq!(first, second);
}

#[test]
fn a_domain_outage_is_absorbed_and_hedges_never_double_count() {
    // 6 boards, domain dom-0 (shard 0) goes dark mid-run. Demand is sized
    // so the 3 surviving boards can still fit the whole demand with
    // headroom — the heal must succeed.
    let spec = domained_spec(2.2, 0.25);
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        ..FleetConfig::default()
    };
    let mut db = TuningDb::new();
    let mut fleet = Fleet::build(&spec, cfg, &mut db).unwrap();
    let capacity = fleet.capacity_rps();
    assert_eq!(fleet.domains(), 2);
    assert_eq!(fleet.domain_of(0), "dom-0");
    assert!(!fleet.domain_members("dom-0").is_empty());
    fleet.arm(FaultPlan::new(
        0xD0,
        vec![FaultEvent {
            at_s: 0.08,
            target: "dom-0".into(),
            kind: FaultKind::DomainOutage,
        }],
    ));
    let r = fleet.run(&surge_tenants(capacity), 0.25);

    // The outage triggered the whole chain: breaker, replay, heal.
    assert!(r.breaker_transitions_to("open") >= 1);
    assert!(r.hedges + r.replays > 0, "the dead shard's work re-issues");
    let heal = r.heals.first().expect("the outage triggers a heal");
    assert_eq!(heal.shard, 0);
    assert_eq!(heal.domain, "dom-0");
    assert!(heal.error.is_none());
    assert!(!heal.lost.is_empty());

    // The QoS ledger must balance request-for-request: duplicates
    // (hedges and replays) never inflate any tenant's completions past
    // its admissions, and every intra-budget admit still completes.
    for t in &r.tenants {
        assert!(
            t.completed <= t.admitted_in_budget + t.admitted_over_budget,
            "{}: {} completed > {} admitted — a duplicate double-counted",
            t.name,
            t.completed,
            t.admitted_in_budget + t.admitted_over_budget
        );
        assert_eq!(
            t.completed_in_budget, t.admitted_in_budget,
            "{}: every intra-budget admit completes exactly once",
            t.name
        );
    }
    // Metrics carry the duplicate-suppression accounting.
    assert_eq!(
        r.registry.value("fleet_hedges_total", &[]),
        Some(r.hedges as f64)
    );
    assert_eq!(
        r.registry.value("fleet_failover_replays_total", &[]),
        Some(r.replays as f64)
    );
    assert_eq!(
        r.registry
            .value("fleet_heal_events_total", &[("outcome", "replaced")]),
        Some(1.0)
    );
}

#[test]
fn an_unhealable_outage_reports_a_placement_error_and_keeps_the_breaker_open() {
    // Demand sized so the cold placement uses every board: the surviving
    // inventory cannot fit the demand after losing shard 0, so the heal
    // must return a structured error — no panic — and the breaker must
    // keep the shard ejected instead of flapping closed.
    let spec = domained_spec(4.5, 0.02);
    let cfg = FleetConfig {
        shards: 2,
        serve: deep_queue(),
        health: HealthPolicy {
            // Re-probe aggressively: every probe must fail against the
            // dead shard and re-open, never close.
            cooldown_s: 0.01,
            ..HealthPolicy::default()
        },
        ..FleetConfig::default()
    };
    let mut db = TuningDb::new();
    let mut fleet = Fleet::build(&spec, cfg, &mut db).unwrap();
    let capacity = fleet.capacity_rps();
    fleet.arm(FaultPlan::new(
        0xD1,
        vec![FaultEvent {
            at_s: 0.08,
            target: "dom-0".into(),
            kind: FaultKind::DomainOutage,
        }],
    ));
    let r = fleet.run(&surge_tenants(capacity), 0.25);

    let heal = r.heals.first().expect("the outage still triggers a heal");
    assert!(
        matches!(
            heal.error,
            Some(PlacementError::InsufficientCapacity { .. })
        ),
        "heal error: {:?}",
        heal.error
    );
    assert!(heal.adopted.is_empty());
    assert!(heal.restore_s.is_infinite());
    assert_eq!(
        r.registry
            .value("fleet_heal_events_total", &[("outcome", "failed")]),
        Some(1.0)
    );
    // The victim's breaker cycles open/half-open on failed probes but
    // never re-closes onto dead capacity.
    let victim_log = &r.breakers[0];
    assert!(victim_log.iter().any(|t| t.to == "open"));
    assert!(
        !victim_log.iter().any(|t| t.to == "closed"),
        "breaker must not flap closed onto a dead shard: {victim_log:?}"
    );
    // The surviving shard still honours the QoS guarantee.
    for t in &r.tenants {
        assert_eq!(
            t.in_budget_completion_rate(),
            1.0,
            "{}: intra-budget completion through an unhealable outage",
            t.name
        );
    }
}
