//! # fpgaccel-fleet
//!
//! Sharded fleet serving layered on top of `fpgaccel-serve`: hundreds of
//! FPGAs, several model variants, several tenants — still a pure function
//! of its inputs, still byte-for-byte reproducible.
//!
//! A single [`DevicePool`](fpgaccel_serve::DevicePool) plus
//! [`Server`](fpgaccel_serve::Server) serves a handful of devices well;
//! fleet scale needs the layer above, and this crate provides it without
//! forking the serving stack:
//!
//! * **[`placement`]** — the placement optimizer: bin-packs model demand
//!   onto device classes using the Table 6.2 resource feasibility of each
//!   (model, platform) pair and the calibrated
//!   [`BatchLatencyModel`](fpgaccel_core::BatchLatencyModel) throughput of
//!   each feasible deployment, producing a deterministic
//!   [`PlacementPlan`] cached in the tuning database alongside tilings.
//! * **[`router`]** — seeded consistent hashing with bounded-load
//!   overflow: a request's home shard is stable under shard churn (the
//!   classic ~`keys/n` remapping bound), and an overloaded home spills to
//!   the next active shard on the ring instead of queueing behind it.
//! * **[`qos`]** — multi-tenant admission: per-tenant token-bucket
//!   budgets that always admit intra-budget traffic, plus weighted-fair
//!   sharing of the surplus so a misbehaving tenant sheds its own excess
//!   instead of starving everyone else.
//! * **[`driver`]** — the [`Fleet`] façade: builds per-shard pools from a
//!   placement plan through one shared template
//!   [`DeploymentCache`](fpgaccel_serve::DeploymentCache) (one compile and
//!   one calibration per deployment, fleet-wide), routes a merged tenant
//!   trace through QoS and the router, runs every shard's
//!   [`Server`](fpgaccel_serve::Server), replays fleet-wide rollouts
//!   shard by shard through the existing wave state machine, and
//!   aggregates per-class `fleet_*` metrics.

#![warn(missing_docs)]

pub mod driver;
pub mod hash;
pub mod placement;
pub mod qos;
pub mod router;

pub use driver::{
    Fleet, FleetConfig, FleetRollout, FleetRunResult, HealEvent, TenantLoad, TenantOutcome,
    HEDGE_BIT,
};
pub use placement::{
    plan_placement, Assignment, DeviceClass, FleetSpec, ModelDemand, PlacementError, PlacementPlan,
};
pub use qos::{QosController, TenantPolicy, Verdict};
pub use router::{BreakerState, BreakerTransition, HealthPolicy, Router, ShardHealth};
