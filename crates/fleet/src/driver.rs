//! The fleet façade: placement → sharded pools → routed tenant traffic →
//! per-shard serving runs → aggregated outcomes.
//!
//! [`Fleet::build`] turns a [`FleetSpec`] into `shards` independent
//! [`DevicePool`]s. Every pool clones one warm template
//! [`DeploymentCache`], so a 500-device fleet pays for exactly one compile
//! and one calibration per distinct deployment — the pools share the
//! `Arc<Deployment>`s and the memoized batch simulations that hang off
//! them. Devices of each class are dealt round-robin across shards, so
//! every shard serves (a slice of) every model.
//!
//! [`Fleet::run`] is one deterministic pass:
//!
//! 1. Per-tenant Poisson streams are merged into one arrival-ordered
//!    trace (seeded per tenant × model — byte-identical reruns).
//! 2. Each arrival clears multi-tenant QoS ([`QosController`]) and is
//!    routed by its model's consistent-hash [`Router`] with bounded-load
//!    overflow, against an expected-work accounting of each shard's
//!    backlog.
//! 3. Each shard's [`Server`] runs its routed sub-trace — with any
//!    fleet-wide rollouts replayed shard by shard (staggered waves,
//!    canary/rollback semantics unchanged) and a flight recorder armed
//!    for postmortems.
//! 4. Completions and sheds are attributed back to tenants, and
//!    class-aggregated `fleet_*` metrics are published (per-*device*
//!    series stay at pool scope — at 500 devices per-device label
//!    cardinality belongs to the shard registries, not the fleet one).

use crate::hash::{hash2, hash_str};
use crate::placement::{plan_placement, FleetSpec, PlacementError, PlacementPlan};
use crate::qos::{QosController, TenantPolicy, Verdict};
use crate::router::Router;
use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_core::OptimizationConfig;
use fpgaccel_fault::{FaultInjector, FaultPlan};
use fpgaccel_serve::{
    DeploymentCache, DevicePool, LatencyHistogram, Request, RolloutOutcome, RolloutPolicy,
    RolloutSpec, RunResult, ServeConfig, Server,
};
use fpgaccel_tensor::models::Model;
use fpgaccel_tensor::rng::Rng64;
use fpgaccel_trace::{FlightRecorder, Registry, Tracer, PID_FLEET};
use fpgaccel_tune::TuningDb;
use std::collections::HashMap;

/// Fleet-level knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of shards the fleet's devices are dealt into.
    pub shards: usize,
    /// Seed for the routers, the routing keys, and the tenant traces.
    pub seed: u64,
    /// Ring points per shard in each model's router.
    pub vnodes: usize,
    /// Bounded-load overflow threshold (multiple of the mean shard load).
    pub load_bound: f64,
    /// Serving configuration applied to every shard server.
    pub serve: ServeConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            seed: 0xF1EE7,
            vnodes: 64,
            load_bound: 1.25,
            serve: ServeConfig::default(),
        }
    }
}

/// One tenant's offered load.
#[derive(Clone, Debug)]
pub struct TenantLoad {
    /// Admission contract.
    pub policy: TenantPolicy,
    /// Offered Poisson rate per model, requests/second.
    pub offered: Vec<(Model, f64)>,
}

/// A fleet-wide rollout: every shard serving `model` runs the existing
/// wave state machine, staggered shard by shard.
#[derive(Clone, Debug)]
pub struct FleetRollout {
    /// The model being upgraded.
    pub model: Model,
    /// The target configuration.
    pub to: OptimizationConfig,
    /// When shard 0 starts, simulated seconds.
    pub start_s: f64,
    /// Delay between successive shards' rollouts.
    pub stagger_s: f64,
    /// When sabotaged shards retry the upgrade (same stagger), after
    /// their first attempt rolled back.
    pub retry_at_s: f64,
    /// Per-shard rollout knobs.
    pub policy: RolloutPolicy,
}

/// The shards serving one model: shard ids, per-shard aggregate service
/// rate, and the model's router over those shards.
struct ModelShards {
    model: Model,
    shards: Vec<usize>,
    rate_rps: Vec<f64>,
    router: Router,
}

/// A built fleet, ready to serve one trace.
pub struct Fleet {
    cfg: FleetConfig,
    plan: PlacementPlan,
    /// `(class label, device count)` from the spec, for the class-scoped
    /// metrics.
    classes: Vec<(String, usize)>,
    pools: Vec<DevicePool>,
    serving: Vec<ModelShards>,
    rollouts: Vec<FleetRollout>,
    sabotaged: Vec<bool>,
    tracer: Tracer,
}

/// Per-tenant accounting of one fleet run.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Requests the tenant offered.
    pub offered: u64,
    /// Admitted within budget.
    pub admitted_in_budget: u64,
    /// Admitted from the tenant's surplus share.
    pub admitted_over_budget: u64,
    /// Shed at the fleet door (QoS).
    pub shed_fleet: u64,
    /// Shed inside a shard (queue capacity / deadline).
    pub shed_shard: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completed requests that were admitted within budget.
    pub completed_in_budget: u64,
}

impl TenantOutcome {
    /// Completed / offered (1.0 for an idle tenant).
    pub fn completion_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Completed-in-budget / admitted-in-budget — the QoS guarantee
    /// metric (1.0 for an idle tenant).
    pub fn in_budget_completion_rate(&self) -> f64 {
        if self.admitted_in_budget == 0 {
            1.0
        } else {
            self.completed_in_budget as f64 / self.admitted_in_budget as f64
        }
    }
}

/// Everything one fleet run produced.
pub struct FleetRunResult {
    /// The placement the fleet was built from.
    pub plan: PlacementPlan,
    /// Per-tenant accounting, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Each shard's full serving result, in shard order.
    pub shards: Vec<RunResult>,
    /// Requests routed to a shard (admitted and served a route).
    pub routed: u64,
    /// Routed requests that overflowed past their home shard.
    pub overflowed: u64,
    /// Fleet-wide end-to-end latency (arrival → completion).
    pub latency: LatencyHistogram,
    /// Class-aggregated fleet metrics (`fleet_*` families).
    pub registry: Registry,
    /// Simulated span of the run, seconds.
    pub span_s: f64,
}

impl FleetRunResult {
    /// Shard rollouts that rolled back.
    pub fn rollbacks(&self) -> usize {
        self.shard_outcomes(RolloutOutcome::RolledBack)
    }

    /// Shard rollouts that promoted.
    pub fn promotions(&self) -> usize {
        self.shard_outcomes(RolloutOutcome::Promoted)
    }

    fn shard_outcomes(&self, o: RolloutOutcome) -> usize {
        self.shards
            .iter()
            .flat_map(|r| &r.rollouts)
            .filter(|rep| rep.outcome == o)
            .count()
    }

    /// Flight-recorder postmortems captured across all shards (shard
    /// rollbacks arm them).
    pub fn postmortems(&self) -> usize {
        self.shards.iter().map(|r| r.postmortems.len()).sum()
    }

    /// A stable single-line digest of the run, for determinism checks:
    /// two runs of the same fleet on the same trace must produce the same
    /// string, byte for byte.
    pub fn digest(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{}:{}/{}/{}/{}/{}/{}/{}",
                    t.name,
                    t.offered,
                    t.admitted_in_budget,
                    t.admitted_over_budget,
                    t.shed_fleet,
                    t.shed_shard,
                    t.completed,
                    t.completed_in_budget
                )
            })
            .collect();
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|r| {
                let rollouts: Vec<String> = r
                    .rollouts
                    .iter()
                    .map(|rep| format!("{}={}", rep.to_label, rep.outcome.label()))
                    .collect();
                format!(
                    "c{}s{}r[{}]",
                    r.metrics.completed,
                    r.metrics.shed(),
                    rollouts.join(",")
                )
            })
            .collect();
        let replicas: Vec<String> = self
            .plan
            .assignments
            .iter()
            .map(|a| format!("{}@{}x{}", a.model.name(), a.platform.label(), a.replicas))
            .collect();
        format!(
            "plan=[{}] tenants=[{}] shards=[{}] routed={} overflow={} p99us={}",
            replicas.join(","),
            tenants.join(","),
            shards.join(","),
            self.routed,
            self.overflowed,
            (self.latency.quantile(0.99) * 1e6).round() as u64
        )
    }
}

impl Fleet {
    /// Builds the fleet: places the spec (cold or from the tuning
    /// database), compiles one template cache, and deals devices into
    /// shard pools. Classes must use distinct platforms.
    pub fn build(
        spec: &FleetSpec,
        cfg: FleetConfig,
        db: &mut TuningDb,
    ) -> Result<Fleet, PlacementError> {
        Fleet::build_traced(spec, cfg, db, &Tracer::disabled())
    }

    /// [`Fleet::build`] recording placement/deal phases on `tracer`.
    pub fn build_traced(
        spec: &FleetSpec,
        cfg: FleetConfig,
        db: &mut TuningDb,
        tracer: &Tracer,
    ) -> Result<Fleet, PlacementError> {
        assert!(cfg.shards > 0, "a fleet needs at least one shard");
        let mut cache = DeploymentCache::new();
        let plan = {
            let _p = tracer.phase_on(PID_FLEET, "placement", "place fleet spec");
            plan_placement(spec, db, &mut cache)?
        };

        let _p = tracer.phase_on(PID_FLEET, "build", "deal devices into shard pools");
        let mut pools: Vec<DevicePool> = (0..cfg.shards)
            .map(|_| DevicePool::with_cache(cache.clone()))
            .collect();
        // Deal each class round-robin: assignment slots in plan order,
        // then the spare (idle) boards of the class.
        let mut mu: HashMap<(usize, Model), f64> = HashMap::new();
        for c in &spec.classes {
            let mut cursor = 0usize;
            for a in plan.assignments.iter().filter(|a| a.platform == c.platform) {
                for _ in 0..a.replicas {
                    let shard = cursor % cfg.shards;
                    cursor += 1;
                    let idx = pools[shard].add_device(c.platform);
                    pools[shard]
                        .deploy(idx, a.model, &optimized_config(a.model, c.platform))
                        .map_err(|e| PlacementError::NoFeasibleClass {
                            model: a.model,
                            reasons: vec![(c.platform, e)],
                        })?;
                    *mu.entry((shard, a.model)).or_default() += a.device_rate_rps;
                }
            }
            for spare in cursor..c.count {
                pools[spare % cfg.shards].add_device(c.platform);
            }
        }

        let mut serving = Vec::new();
        for &model in Model::ALL.iter() {
            let mut shards = Vec::new();
            let mut rate_rps = Vec::new();
            for s in 0..cfg.shards {
                if let Some(&r) = mu.get(&(s, model)) {
                    shards.push(s);
                    rate_rps.push(r);
                }
            }
            if !shards.is_empty() {
                let router =
                    Router::new(hash_str(cfg.seed, model.name()), shards.len(), cfg.vnodes);
                serving.push(ModelShards {
                    model,
                    shards,
                    rate_rps,
                    router,
                });
            }
        }

        Ok(Fleet {
            sabotaged: vec![false; cfg.shards],
            classes: spec
                .classes
                .iter()
                .map(|c| (c.platform.label().to_string(), c.count))
                .collect(),
            cfg,
            plan,
            pools,
            serving,
            rollouts: Vec::new(),
            tracer: tracer.clone(),
        })
    }

    /// The placement the fleet was built from.
    pub fn plan(&self) -> &PlacementPlan {
        &self.plan
    }

    /// Aggregate steady-state serving capacity, requests/second — the
    /// QoS controller's capacity.
    pub fn capacity_rps(&self) -> f64 {
        self.plan.total_rate_rps
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// Total devices across all shard pools.
    pub fn devices(&self) -> usize {
        self.pools.iter().map(|p| p.devices().len()).sum()
    }

    /// The shards serving `model`, in shard order.
    pub fn shards_serving(&self, model: Model) -> Vec<usize> {
        self.serving
            .iter()
            .find(|m| m.model == model)
            .map(|m| m.shards.clone())
            .unwrap_or_default()
    }

    /// Name of the first device on `shard` serving `model` — the natural
    /// sabotage target for a fault plan.
    pub fn device_serving(&self, shard: usize, model: Model) -> Option<String> {
        self.pools[shard]
            .devices()
            .iter()
            .find(|d| d.deployment(model).is_some())
            .map(|d| d.name.clone())
    }

    /// Schedules a fleet-wide rollout, replayed shard by shard at `run`.
    pub fn schedule_rollout(&mut self, rollout: FleetRollout) {
        self.rollouts.push(rollout);
    }

    /// Arms `shard` with a committed fault plan (canary sabotage,
    /// reprogram failures). Sabotaged shards automatically retry
    /// scheduled rollouts at [`FleetRollout::retry_at_s`].
    pub fn sabotage_shard(&mut self, shard: usize, plan: FaultPlan) {
        self.pools[shard].set_fault_injector(&FaultInjector::new(plan));
        self.sabotaged[shard] = true;
    }

    /// Runs the fleet for `duration_s` of offered tenant load, consuming
    /// the fleet. Deterministic: same fleet + same tenants + same
    /// duration → byte-identical [`FleetRunResult::digest`].
    ///
    /// Every model a tenant offers must be served by the placement
    /// (checked, panics otherwise — that is a spec bug, not a runtime
    /// condition).
    pub fn run(self, tenants: &[TenantLoad], duration_s: f64) -> FleetRunResult {
        // 1. Merged arrival-ordered tenant trace, seeded per
        //    tenant × model stream.
        struct Arrival {
            t: f64,
            tenant: usize,
            model: Model,
        }
        let mut merged: Vec<Arrival> = Vec::new();
        {
            let _p = self
                .tracer
                .phase_on(PID_FLEET, "trace", "generate tenant traces");
            for (ti, tenant) in tenants.iter().enumerate() {
                for (mi, &(model, rate)) in tenant.offered.iter().enumerate() {
                    if rate <= 0.0 {
                        continue;
                    }
                    assert!(
                        self.serving.iter().any(|m| m.model == model),
                        "tenant {} offers {} which the placement does not serve",
                        tenant.policy.name,
                        model.name()
                    );
                    let mut rng = Rng64::seed_from_u64(hash2(
                        hash_str(self.cfg.seed, &tenant.policy.name),
                        mi as u64,
                    ));
                    let mut at = 0.0f64;
                    loop {
                        at += rng.exponential(rate);
                        if at > duration_s {
                            break;
                        }
                        merged.push(Arrival {
                            t: at,
                            tenant: ti,
                            model,
                        });
                    }
                }
            }
            merged.sort_by(|a, b| {
                a.t.total_cmp(&b.t)
                    .then(a.tenant.cmp(&b.tenant))
                    .then(a.model.name().cmp(b.model.name()))
            });
        }

        // 2. QoS admission + bounded-load consistent-hash routing against
        //    an expected-work model of each shard's backlog.
        let mut qos = QosController::new(
            tenants.iter().map(|t| t.policy.clone()).collect(),
            self.plan.total_rate_rps,
        );
        let mut until = vec![0.0f64; self.cfg.shards];
        let mut shard_traces: Vec<Vec<Request>> = vec![Vec::new(); self.cfg.shards];
        let mut owner: HashMap<u64, (usize, bool)> = HashMap::new();
        let (mut routed, mut overflowed) = (0u64, 0u64);
        {
            let _p = self
                .tracer
                .phase_on(PID_FLEET, "route", "admit + route trace");
            for (gid, a) in merged.iter().enumerate() {
                let verdict = qos.admit(a.tenant, a.t);
                if verdict == Verdict::Shed {
                    continue;
                }
                let ms = self
                    .serving
                    .iter()
                    .find(|m| m.model == a.model)
                    .expect("asserted served above");
                let loads: Vec<f64> = ms
                    .shards
                    .iter()
                    .map(|&s| (until[s] - a.t).max(0.0))
                    .collect();
                let (slot, over) = ms
                    .router
                    .route_bounded(
                        hash2(self.cfg.seed ^ 0x0F1C_E500, gid as u64),
                        &loads,
                        self.cfg.load_bound,
                    )
                    .expect("every serving shard is active");
                let shard = ms.shards[slot];
                routed += 1;
                if over {
                    overflowed += 1;
                }
                until[shard] = until[shard].max(a.t) + 1.0 / ms.rate_rps[slot];
                shard_traces[shard].push(Request {
                    id: gid as u64,
                    model: a.model,
                    arrival_s: a.t,
                    deadline_s: None,
                    input: None,
                });
                owner.insert(gid as u64, (a.tenant, verdict == Verdict::Admit));
            }
        }

        // 3. Expand fleet rollouts into per-shard staggered specs;
        //    sabotaged shards get the retry attempt too.
        let mut shard_specs: Vec<Vec<RolloutSpec>> = vec![Vec::new(); self.cfg.shards];
        for r in &self.rollouts {
            for ms in self.serving.iter().filter(|m| m.model == r.model) {
                for (k, &shard) in ms.shards.iter().enumerate() {
                    shard_specs[shard].push(RolloutSpec {
                        at_s: r.start_s + k as f64 * r.stagger_s,
                        model: r.model,
                        to: r.to.clone(),
                        verify_input: None,
                        policy: r.policy,
                    });
                    if self.sabotaged[shard] {
                        shard_specs[shard].push(RolloutSpec {
                            at_s: r.retry_at_s + k as f64 * r.stagger_s,
                            model: r.model,
                            to: r.to.clone(),
                            verify_input: None,
                            policy: r.policy,
                        });
                    }
                }
            }
        }

        // 4. Run every shard's server on its routed sub-trace.
        let mut shard_results: Vec<RunResult> = Vec::with_capacity(self.cfg.shards);
        for (s, (pool, trace)) in self.pools.into_iter().zip(shard_traces).enumerate() {
            let _p = self
                .tracer
                .phase_on(PID_FLEET, "shard", &format!("run shard {s}"));
            let flight = FlightRecorder::enabled(256);
            let mut server = Server::new(pool, self.cfg.serve).with_flight_recorder(&flight);
            for spec in shard_specs[s].drain(..) {
                server.schedule_rollout(spec);
            }
            shard_results.push(server.run_open_loop(trace));
        }

        // 5. Attribute completions/sheds back to tenants and publish the
        //    class-aggregated fleet metrics.
        let mut outcomes: Vec<TenantOutcome> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (offered, admitted, over, shed) = qos.counters(i);
                TenantOutcome {
                    name: t.policy.name.clone(),
                    offered,
                    admitted_in_budget: admitted,
                    admitted_over_budget: over,
                    shed_fleet: shed,
                    shed_shard: 0,
                    completed: 0,
                    completed_in_budget: 0,
                }
            })
            .collect();
        let mut latency = LatencyHistogram::new();
        let registry = Registry::new();
        let mut span_s = duration_s;
        for r in &shard_results {
            for c in &r.completions {
                let &(tenant, in_budget) = owner.get(&c.id).expect("completion has an owner");
                outcomes[tenant].completed += 1;
                if in_budget {
                    outcomes[tenant].completed_in_budget += 1;
                }
                let l = c.completion_s - c.arrival_s;
                latency.record(l);
                registry.histogram_observe(
                    "fleet_request_latency_seconds",
                    "End-to-end fleet request latency (arrival to completion).",
                    &[],
                    LATENCY_BOUNDS,
                    l,
                );
                span_s = span_s.max(c.completion_s);
            }
            for shed in &r.sheds {
                let &(tenant, _) = owner.get(&shed.id).expect("shed has an owner");
                outcomes[tenant].shed_shard += 1;
            }
        }

        registry.gauge_set(
            "fleet_shards_count",
            "Shards the fleet's devices are dealt into.",
            &[],
            self.cfg.shards as f64,
        );
        registry.counter_add(
            "fleet_routed_total",
            "Requests admitted and routed to a shard.",
            &[],
            routed as f64,
        );
        registry.counter_add(
            "fleet_router_overflow_total",
            "Routed requests that overflowed past their home shard (bounded load).",
            &[],
            overflowed as f64,
        );
        for o in &outcomes {
            let t = o.name.as_str();
            registry.counter_add(
                "fleet_admitted_total",
                "Requests admitted at the fleet door, by tenant and budget bucket.",
                &[("tenant", t), ("budget", "within")],
                o.admitted_in_budget as f64,
            );
            registry.counter_add(
                "fleet_admitted_total",
                "Requests admitted at the fleet door, by tenant and budget bucket.",
                &[("tenant", t), ("budget", "over")],
                o.admitted_over_budget as f64,
            );
            registry.counter_add(
                "fleet_shed_total",
                "Requests shed, by tenant and scope (fleet QoS door vs shard).",
                &[("tenant", t), ("scope", "fleet")],
                o.shed_fleet as f64,
            );
            registry.counter_add(
                "fleet_shed_total",
                "Requests shed, by tenant and scope (fleet QoS door vs shard).",
                &[("tenant", t), ("scope", "shard")],
                o.shed_shard as f64,
            );
            registry.counter_add(
                "fleet_completed_total",
                "Requests completed, by tenant.",
                &[("tenant", t)],
                o.completed as f64,
            );
        }
        // Class-scoped device aggregates: the fleet registry carries one
        // series per device *class*, not per device — per-device busy and
        // utilization stay in each shard's own registry.
        publish_class_metrics(&registry, &self.classes, &shard_results, span_s);

        FleetRunResult {
            plan: self.plan,
            tenants: outcomes,
            shards: shard_results,
            routed,
            overflowed,
            latency,
            registry,
            span_s,
        }
    }
}

/// Histogram bounds for `fleet_request_latency_seconds` (seconds).
const LATENCY_BOUNDS: &[f64] = &[
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
];

fn publish_class_metrics(
    registry: &Registry,
    classes: &[(String, usize)],
    shard_results: &[RunResult],
    span_s: f64,
) {
    for (label, count) in classes {
        let prefix = format!("{}-", label.to_lowercase());
        let mut busy = 0.0f64;
        for r in shard_results {
            for d in &r.devices {
                if d.device.starts_with(&prefix) {
                    busy += r
                        .registry
                        .value("serve_device_busy_seconds", &[("device", &d.device)])
                        .unwrap_or(0.0);
                }
            }
        }
        let class = label.as_str();
        registry.gauge_set(
            "fleet_class_devices_count",
            "Fleet inventory per device class.",
            &[("class", class)],
            *count as f64,
        );
        registry.gauge_set(
            "fleet_class_busy_seconds",
            "Aggregate simulated batch-execution seconds per device class.",
            &[("class", class)],
            busy,
        );
        let util = if span_s > 0.0 && *count > 0 {
            busy / (span_s * *count as f64)
        } else {
            0.0
        };
        registry.gauge_set(
            "fleet_class_utilization_ratio",
            "Class busy-fraction of the run span (aggregated over devices).",
            &[("class", class)],
            util,
        );
    }
}
