//! The fleet façade: placement → sharded pools → routed tenant traffic →
//! per-shard serving runs → aggregated outcomes.
//!
//! [`Fleet::build`] turns a [`FleetSpec`] into `shards` independent
//! [`DevicePool`]s. Every pool clones one warm template
//! [`DeploymentCache`], so a 500-device fleet pays for exactly one compile
//! and one calibration per distinct deployment — the pools share the
//! `Arc<Deployment>`s and the memoized batch simulations that hang off
//! them. Devices of each class are dealt round-robin across shards, so
//! every shard serves (a slice of) every model. Shards are racked
//! together: shard `s` lives in failure domain `dom-{s % domains}` of the
//! spec's topology, and a correlated [`FaultKind::DomainOutage`] takes
//! every serving board of the domain dark at once.
//!
//! [`Fleet::run`] is one deterministic pass:
//!
//! 1. Per-tenant Poisson streams are merged into one arrival-ordered
//!    trace (seeded per tenant × model — byte-identical reruns).
//! 2. Each arrival clears multi-tenant QoS ([`QosController`]) and is
//!    routed by its model's consistent-hash [`Router`] with bounded-load
//!    overflow, against an expected-work accounting of each shard's
//!    backlog. The accounting is fault-aware: armed domain outages and
//!    persistent slowdowns degrade a shard's modeled service rate, and
//!    three resilience mechanisms key off that degradation —
//!    per-shard **circuit breakers** ([`ShardHealth`]) that eject a
//!    breached shard from the ring and probe it back half-open,
//!    **request hedging** that duplicates a predicted straggler to the
//!    next ring shard (first completion wins, duplicates suppressed in
//!    the accounting), and **self-healing re-placement** that re-runs the
//!    placement optimizer over surviving inventory and adopts the victim
//!    shard's spare boards via the rollout wave machinery, logged as
//!    structured [`HealEvent`]s. A fleet with no armed domain outages or
//!    slowdowns routes exactly as it always did — the breaker and hedger
//!    never fire on pure overload, which QoS owns.
//! 3. Each shard's [`Server`] runs its routed sub-trace — with any
//!    fleet-wide rollouts (including heal adoptions) replayed shard by
//!    shard and a flight recorder armed for postmortems.
//! 4. Completions and sheds are attributed back to tenants
//!    (first-completion-wins across hedged copies), and class-aggregated
//!    `fleet_*` metrics are published (per-*device* series stay at pool
//!    scope — at 500 devices per-device label cardinality belongs to the
//!    shard registries, not the fleet one).

use crate::hash::{hash2, hash_str};
use crate::placement::{plan_placement, FleetSpec, PlacementError, PlacementPlan, PROBE_BATCH};
use crate::qos::{QosController, TenantPolicy, Verdict};
use crate::router::{BreakerState, BreakerTransition, HealthPolicy, Router, ShardHealth};
use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_core::OptimizationConfig;
use fpgaccel_device::FpgaPlatform;
use fpgaccel_fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
use fpgaccel_serve::{
    DeploymentCache, DeviceHealth, DevicePool, LatencyHistogram, Request, RolloutOutcome,
    RolloutPolicy, RolloutSpec, RunResult, ServeConfig, Server,
};
use fpgaccel_tensor::models::Model;
use fpgaccel_tensor::rng::Rng64;
use fpgaccel_trace::{FlightRecorder, Registry, Tracer, PID_FLEET};
use fpgaccel_tune::TuningDb;
use std::collections::{HashMap, HashSet};

/// Hedged duplicates carry the original request id with this bit set, so
/// completion accounting can fold both copies back onto one request.
pub const HEDGE_BIT: u64 = 1 << 63;

/// Fleet-level knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of shards the fleet's devices are dealt into.
    pub shards: usize,
    /// Seed for the routers, the routing keys, and the tenant traces.
    pub seed: u64,
    /// Ring points per shard in each model's router.
    pub vnodes: usize,
    /// Bounded-load overflow threshold (multiple of the mean shard load).
    pub load_bound: f64,
    /// Serving configuration applied to every shard server.
    pub serve: ServeConfig,
    /// Circuit-breaker and hedging policy applied per shard.
    pub health: HealthPolicy,
    /// Delay between a breaker opening on an unrecoverable shard and the
    /// heal rollout starting — long enough for the dead boards to finish
    /// their quarantine attempts and be declared lost, so the adoption
    /// waves only touch the spares.
    pub heal_delay_s: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            seed: 0xF1EE7,
            vnodes: 64,
            load_bound: 1.25,
            serve: ServeConfig::default(),
            health: HealthPolicy::default(),
            heal_delay_s: 0.15,
        }
    }
}

/// One tenant's offered load.
#[derive(Clone, Debug)]
pub struct TenantLoad {
    /// Admission contract.
    pub policy: TenantPolicy,
    /// Offered Poisson rate per model, requests/second.
    pub offered: Vec<(Model, f64)>,
}

/// A fleet-wide rollout: every shard serving `model` runs the existing
/// wave state machine, staggered shard by shard.
#[derive(Clone, Debug)]
pub struct FleetRollout {
    /// The model being upgraded.
    pub model: Model,
    /// The target configuration.
    pub to: OptimizationConfig,
    /// When shard 0 starts, simulated seconds.
    pub start_s: f64,
    /// Delay between successive shards' rollouts.
    pub stagger_s: f64,
    /// When sabotaged shards retry the upgrade (same stagger), after
    /// their first attempt rolled back.
    pub retry_at_s: f64,
    /// Per-shard rollout knobs.
    pub policy: RolloutPolicy,
}

/// One structured self-healing re-placement, triggered when a domain
/// outage made a shard's capacity unrecoverable in place.
#[derive(Clone, Debug)]
pub struct HealEvent {
    /// When the breaker opened and the heal was triggered, simulated
    /// seconds.
    pub t_s: f64,
    /// The shard whose capacity was lost.
    pub shard: usize,
    /// The failure domain that went dark.
    pub domain: String,
    /// Serving devices written off by the outage.
    pub lost: Vec<String>,
    /// Spare devices adopted into serving by the heal rollout.
    pub adopted: Vec<String>,
    /// Feasibility probes the surviving-inventory re-placement spent.
    pub plan_evaluations: usize,
    /// Estimated simulated second the adopted capacity is live — the
    /// breaker stays parked open until then. Infinite when nothing could
    /// be adopted.
    pub restore_s: f64,
    /// The re-placement's structured failure, when the surviving
    /// inventory cannot fit the demand. The breaker then stays open.
    pub error: Option<PlacementError>,
}

/// The shards serving one model: shard ids, per-shard aggregate service
/// rate, and the model's router over those shards.
struct ModelShards {
    model: Model,
    shards: Vec<usize>,
    rate_rps: Vec<f64>,
    router: Router,
}

/// A built fleet, ready to serve one trace.
pub struct Fleet {
    cfg: FleetConfig,
    spec: FleetSpec,
    plan: PlacementPlan,
    /// `(class label, device count)` from the spec, for the class-scoped
    /// metrics.
    classes: Vec<(String, usize)>,
    pools: Vec<DevicePool>,
    serving: Vec<ModelShards>,
    rollouts: Vec<FleetRollout>,
    sabotaged: Vec<bool>,
    /// Armed per-shard fault plans. Stored as plans — not injectors — so
    /// every [`Fleet::run`] builds fresh injectors: injector state is
    /// consumed one-shot during a run, and re-arming a rebuilt fleet (or
    /// arming a shard twice) must not leak consumed events across runs.
    fault_plans: Vec<Vec<FaultPlan>>,
    /// Armed fleet-level fault plans; domain-scoped events are expanded
    /// onto member shards at run time.
    fleet_plans: Vec<FaultPlan>,
    /// Warm copies for self-healing re-placement: the tuning database as
    /// of build (placements + tilings) and the shared template cache, so
    /// a heal's feasibility probes hit memoized compiles.
    heal_db: TuningDb,
    heal_cache: DeploymentCache,
    tracer: Tracer,
}

/// Per-tenant accounting of one fleet run.
#[derive(Clone, Debug)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Requests the tenant offered.
    pub offered: u64,
    /// Admitted within budget.
    pub admitted_in_budget: u64,
    /// Admitted from the tenant's surplus share.
    pub admitted_over_budget: u64,
    /// Shed at the fleet door (QoS).
    pub shed_fleet: u64,
    /// Shed inside a shard (queue capacity / deadline).
    pub shed_shard: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completed requests that were admitted within budget.
    pub completed_in_budget: u64,
}

impl TenantOutcome {
    /// Completed / offered (1.0 for an idle tenant).
    pub fn completion_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.completed as f64 / self.offered as f64
        }
    }

    /// Completed-in-budget / admitted-in-budget — the QoS guarantee
    /// metric (1.0 for an idle tenant).
    pub fn in_budget_completion_rate(&self) -> f64 {
        if self.admitted_in_budget == 0 {
            1.0
        } else {
            self.completed_in_budget as f64 / self.admitted_in_budget as f64
        }
    }
}

/// Everything one fleet run produced.
pub struct FleetRunResult {
    /// The placement the fleet was built from.
    pub plan: PlacementPlan,
    /// Per-tenant accounting, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Each shard's full serving result, in shard order.
    pub shards: Vec<RunResult>,
    /// Requests routed to a shard (admitted and served a route).
    pub routed: u64,
    /// Routed requests that overflowed past their home shard.
    pub overflowed: u64,
    /// Hedged duplicates fired at predicted stragglers.
    pub hedges: u64,
    /// Hedged duplicates that completed before their primary.
    pub hedge_wins: u64,
    /// Duplicate completions discarded by first-completion-wins.
    pub hedge_suppressed: u64,
    /// Primaries re-issued to another ring shard by the failover replay
    /// when an outage-attributed breaker opened (the dead shard's
    /// unacknowledged in-flight work).
    pub replays: u64,
    /// Requests routed while every serving shard's breaker was open.
    pub forced_routes: u64,
    /// Per-shard circuit-breaker transition logs, in shard order.
    pub breakers: Vec<Vec<BreakerTransition>>,
    /// Self-healing re-placements, in trigger order.
    pub heals: Vec<HealEvent>,
    /// Fleet-wide end-to-end latency (arrival → completion).
    pub latency: LatencyHistogram,
    /// Class-aggregated fleet metrics (`fleet_*` families).
    pub registry: Registry,
    /// Simulated span of the run, seconds.
    pub span_s: f64,
}

impl FleetRunResult {
    /// Shard rollouts that rolled back.
    pub fn rollbacks(&self) -> usize {
        self.shard_outcomes(RolloutOutcome::RolledBack)
    }

    /// Shard rollouts that promoted.
    pub fn promotions(&self) -> usize {
        self.shard_outcomes(RolloutOutcome::Promoted)
    }

    fn shard_outcomes(&self, o: RolloutOutcome) -> usize {
        self.shards
            .iter()
            .flat_map(|r| &r.rollouts)
            .filter(|rep| rep.outcome == o)
            .count()
    }

    /// Flight-recorder postmortems captured across all shards (shard
    /// rollbacks arm them).
    pub fn postmortems(&self) -> usize {
        self.shards.iter().map(|r| r.postmortems.len()).sum()
    }

    /// Breaker transitions fleet-wide that entered `to`
    /// (`"open"`/`"half-open"`/`"closed"`).
    pub fn breaker_transitions_to(&self, to: &str) -> usize {
        self.breakers
            .iter()
            .flat_map(|b| b.iter())
            .filter(|t| t.to == to)
            .count()
    }

    /// A stable single-line digest of the run, for determinism checks:
    /// two runs of the same fleet on the same trace must produce the same
    /// string, byte for byte.
    pub fn digest(&self) -> String {
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{}:{}/{}/{}/{}/{}/{}/{}",
                    t.name,
                    t.offered,
                    t.admitted_in_budget,
                    t.admitted_over_budget,
                    t.shed_fleet,
                    t.shed_shard,
                    t.completed,
                    t.completed_in_budget
                )
            })
            .collect();
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|r| {
                let rollouts: Vec<String> = r
                    .rollouts
                    .iter()
                    .map(|rep| format!("{}={}", rep.to_label, rep.outcome.label()))
                    .collect();
                format!(
                    "c{}s{}r[{}]",
                    r.metrics.completed,
                    r.metrics.shed(),
                    rollouts.join(",")
                )
            })
            .collect();
        let replicas: Vec<String> = self
            .plan
            .assignments
            .iter()
            .map(|a| format!("{}@{}x{}", a.model.name(), a.platform.label(), a.replicas))
            .collect();
        let breakers: Vec<String> = self
            .breakers
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(s, b)| {
                let ts: Vec<String> = b
                    .iter()
                    .map(|t| format!("{}@{:.0}us", t.to, t.t_s * 1e6))
                    .collect();
                format!("s{s}:{}", ts.join(">"))
            })
            .collect();
        let heals: Vec<String> = self
            .heals
            .iter()
            .map(|h| {
                format!(
                    "s{}@{:.0}us:l{}a{}{}",
                    h.shard,
                    h.t_s * 1e6,
                    h.lost.len(),
                    h.adopted.len(),
                    if h.error.is_some() { ":err" } else { "" }
                )
            })
            .collect();
        format!(
            "plan=[{}] tenants=[{}] shards=[{}] routed={} overflow={} p99us={} \
             hedges={}/{}/{} replays={} forced={} breakers=[{}] heals=[{}]",
            replicas.join(","),
            tenants.join(","),
            shards.join(","),
            self.routed,
            self.overflowed,
            (self.latency.quantile(0.99) * 1e6).round() as u64,
            self.hedges,
            self.hedge_wins,
            self.hedge_suppressed,
            self.replays,
            self.forced_routes,
            breakers.join(","),
            heals.join(",")
        )
    }
}

impl Fleet {
    /// Builds the fleet: places the spec (cold or from the tuning
    /// database), compiles one template cache, and deals devices into
    /// shard pools. Classes must use distinct platforms.
    pub fn build(
        spec: &FleetSpec,
        cfg: FleetConfig,
        db: &mut TuningDb,
    ) -> Result<Fleet, PlacementError> {
        Fleet::build_traced(spec, cfg, db, &Tracer::disabled())
    }

    /// [`Fleet::build`] recording placement/deal phases on `tracer`.
    pub fn build_traced(
        spec: &FleetSpec,
        cfg: FleetConfig,
        db: &mut TuningDb,
        tracer: &Tracer,
    ) -> Result<Fleet, PlacementError> {
        assert!(cfg.shards > 0, "a fleet needs at least one shard");
        let mut cache = DeploymentCache::new();
        let plan = {
            let _p = tracer.phase_on(PID_FLEET, "placement", "place fleet spec");
            plan_placement(spec, db, &mut cache)?
        };

        let _p = tracer.phase_on(PID_FLEET, "build", "deal devices into shard pools");
        let mut pools: Vec<DevicePool> = (0..cfg.shards)
            .map(|_| DevicePool::with_cache(cache.clone()))
            .collect();
        // Deal each class round-robin: assignment slots in plan order,
        // then the spare (idle) boards of the class.
        let mut mu: HashMap<(usize, Model), f64> = HashMap::new();
        for c in &spec.classes {
            let mut cursor = 0usize;
            for a in plan.assignments.iter().filter(|a| a.platform == c.platform) {
                for _ in 0..a.replicas {
                    let shard = cursor % cfg.shards;
                    cursor += 1;
                    let idx = pools[shard].add_device(c.platform);
                    pools[shard]
                        .deploy(idx, a.model, &optimized_config(a.model, c.platform))
                        .map_err(|e| PlacementError::NoFeasibleClass {
                            model: a.model,
                            reasons: vec![(c.platform, e)],
                        })?;
                    *mu.entry((shard, a.model)).or_default() += a.device_rate_rps;
                }
            }
            for spare in cursor..c.count {
                pools[spare % cfg.shards].add_device(c.platform);
            }
        }

        let mut serving = Vec::new();
        for &model in Model::ALL.iter() {
            let mut shards = Vec::new();
            let mut rate_rps = Vec::new();
            for s in 0..cfg.shards {
                if let Some(&r) = mu.get(&(s, model)) {
                    shards.push(s);
                    rate_rps.push(r);
                }
            }
            if !shards.is_empty() {
                let router =
                    Router::new(hash_str(cfg.seed, model.name()), shards.len(), cfg.vnodes);
                serving.push(ModelShards {
                    model,
                    shards,
                    rate_rps,
                    router,
                });
            }
        }

        Ok(Fleet {
            sabotaged: vec![false; cfg.shards],
            fault_plans: vec![Vec::new(); cfg.shards],
            fleet_plans: Vec::new(),
            classes: spec
                .classes
                .iter()
                .map(|c| (c.platform.label().to_string(), c.count))
                .collect(),
            spec: spec.clone(),
            heal_db: db.clone(),
            heal_cache: cache,
            cfg,
            plan,
            pools,
            serving,
            rollouts: Vec::new(),
            tracer: tracer.clone(),
        })
    }

    /// The placement the fleet was built from.
    pub fn plan(&self) -> &PlacementPlan {
        &self.plan
    }

    /// The spec the fleet was built from.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Aggregate steady-state serving capacity, requests/second — the
    /// QoS controller's capacity.
    pub fn capacity_rps(&self) -> f64 {
        self.plan.total_rate_rps
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// Number of failure domains the shards are striped across (at least
    /// one).
    pub fn domains(&self) -> usize {
        self.spec.domains.max(1)
    }

    /// The failure domain `shard` lives in: shards are racked together,
    /// striped `dom-{shard % domains}`.
    pub fn domain_of(&self, shard: usize) -> String {
        format!("dom-{}", shard % self.domains())
    }

    /// Device names of every board in `domain`, across its member shards.
    pub fn domain_members(&self, domain: &str) -> Vec<String> {
        let mut out = Vec::new();
        for (s, pool) in self.pools.iter().enumerate() {
            if self.domain_of(s) == domain {
                out.extend(pool.devices().iter().map(|d| d.name.clone()));
            }
        }
        out
    }

    /// Total devices across all shard pools.
    pub fn devices(&self) -> usize {
        self.pools.iter().map(|p| p.devices().len()).sum()
    }

    /// The shards serving `model`, in shard order.
    pub fn shards_serving(&self, model: Model) -> Vec<usize> {
        self.serving
            .iter()
            .find(|m| m.model == model)
            .map(|m| m.shards.clone())
            .unwrap_or_default()
    }

    /// Name of the first device on `shard` serving `model` — the natural
    /// sabotage target for a fault plan.
    pub fn device_serving(&self, shard: usize, model: Model) -> Option<String> {
        self.pools[shard]
            .devices()
            .iter()
            .find(|d| d.deployment(model).is_some())
            .map(|d| d.name.clone())
    }

    /// Schedules a fleet-wide rollout, replayed shard by shard at `run`.
    pub fn schedule_rollout(&mut self, rollout: FleetRollout) {
        self.rollouts.push(rollout);
    }

    /// Arms `shard` with a committed fault plan (canary sabotage,
    /// reprogram failures). Arming the same shard again *adds* the plan;
    /// all armed plans merge into one fresh injector per run, so reruns
    /// of a rebuilt fleet stay byte-identical. Sabotaged shards
    /// automatically retry scheduled rollouts at
    /// [`FleetRollout::retry_at_s`].
    pub fn sabotage_shard(&mut self, shard: usize, plan: FaultPlan) {
        self.fault_plans[shard].push(plan);
        self.sabotaged[shard] = true;
    }

    /// Arms a fleet-level fault plan. Device-targeted events are routed
    /// to the shard owning the device; [`FaultKind::DomainOutage`] events
    /// (targeting a `dom-*` name) are expanded at run time onto every
    /// serving board of the domain's member shards — a hang plus an
    /// exhausted reprogram budget each, so the boards end `Lost` and the
    /// shard's capacity is unrecoverable in place.
    pub fn arm(&mut self, plan: FaultPlan) {
        self.fleet_plans.push(plan);
    }

    /// Runs the fleet for `duration_s` of offered tenant load, consuming
    /// the fleet. Deterministic: same fleet + same tenants + same
    /// duration → byte-identical [`FleetRunResult::digest`].
    ///
    /// Every model a tenant offers must be served by the placement
    /// (checked, panics otherwise — that is a spec bug, not a runtime
    /// condition).
    pub fn run(self, tenants: &[TenantLoad], duration_s: f64) -> FleetRunResult {
        let Fleet {
            cfg,
            spec,
            plan,
            classes,
            mut pools,
            mut serving,
            rollouts,
            sabotaged,
            fault_plans,
            fleet_plans,
            mut heal_db,
            mut heal_cache,
            tracer,
        } = self;
        let shards_n = cfg.shards;
        let domains_n = spec.domains.max(1);

        // 0. Expand the armed fault plans into one fresh injector per
        //    shard. Injector state is consumed one-shot during the run,
        //    so the injectors must be rebuilt here — never reused from a
        //    previous arm or run.
        let mut shard_events: Vec<Vec<FaultEvent>> = vec![Vec::new(); shards_n];
        for (s, plans) in fault_plans.iter().enumerate() {
            for p in plans {
                shard_events[s].extend(p.events.iter().cloned());
            }
        }
        let mut device_shard: HashMap<String, usize> = HashMap::new();
        for (s, pool) in pools.iter().enumerate() {
            for d in pool.devices() {
                device_shard.insert(d.name.clone(), s);
            }
        }
        // First domain outage per shard, for heal attribution.
        let mut outages: Vec<Option<(f64, String)>> = vec![None; shards_n];
        for p in &fleet_plans {
            for e in &p.events {
                if e.kind == FaultKind::DomainOutage {
                    for s in 0..shards_n {
                        if format!("dom-{}", s % domains_n) != e.target {
                            continue;
                        }
                        if outages[s].is_none() {
                            outages[s] = Some((e.at_s, e.target.clone()));
                        }
                        // Every serving board of the domain goes dark:
                        // a hang plus an exhausted reprogram budget.
                        let dark: Vec<String> = pools[s]
                            .devices()
                            .iter()
                            .filter(|d| Model::ALL.iter().any(|&m| d.deployment(m).is_some()))
                            .map(|d| d.name.clone())
                            .collect();
                        for name in dark {
                            shard_events[s].push(FaultEvent {
                                at_s: e.at_s,
                                target: name.clone(),
                                kind: FaultKind::DeviceHang,
                            });
                            for _ in 0..cfg.serve.fault.max_reprogram_attempts {
                                shard_events[s].push(FaultEvent {
                                    at_s: e.at_s,
                                    target: name.clone(),
                                    kind: FaultKind::ReprogramFail,
                                });
                            }
                        }
                    }
                } else if e.target == "*" {
                    for events in shard_events.iter_mut() {
                        events.push(e.clone());
                    }
                } else if let Some(&s) = device_shard.get(&e.target) {
                    shard_events[s].push(e.clone());
                }
            }
        }
        for (s, events) in shard_events.iter().enumerate() {
            if !events.is_empty() {
                pools[s].set_fault_injector(&FaultInjector::new(FaultPlan::new(0, events.clone())));
            }
        }

        // Fault-aware capacity model: per (model, slot) rate deltas in
        // simulated time, from armed outages and slowdowns (and, later,
        // heal restores). With no armed resilience faults every shard
        // stays at its nominal rate and routing is byte-identical to the
        // fault-free fleet.
        let mut cap: Vec<Vec<Vec<(f64, f64)>>> = serving
            .iter()
            .map(|ms| vec![Vec::new(); ms.shards.len()])
            .collect();
        for (msi, ms) in serving.iter().enumerate() {
            for (k, &s) in ms.shards.iter().enumerate() {
                if let Some((t0, _)) = &outages[s] {
                    cap[msi][k].push((*t0, -ms.rate_rps[k]));
                }
            }
        }
        for (s, events) in shard_events.iter().enumerate() {
            for e in events {
                let FaultKind::DeviceSlow { factor } = e.kind else {
                    continue;
                };
                let Some(dev) = pools[s].devices().iter().find(|d| d.name == e.target) else {
                    continue;
                };
                for (msi, ms) in serving.iter().enumerate() {
                    if dev.deployment(ms.model).is_none() {
                        continue;
                    }
                    let Some(k) = ms.shards.iter().position(|&x| x == s) else {
                        continue;
                    };
                    let Some(r) = plan
                        .assignments
                        .iter()
                        .find(|a| a.model == ms.model && a.platform == dev.platform)
                        .map(|a| a.device_rate_rps)
                    else {
                        continue;
                    };
                    cap[msi][k].push((e.at_s, r * (1.0 / factor - 1.0)));
                }
            }
        }
        let rate_at = |cap: &[Vec<Vec<(f64, f64)>>], msi: usize, k: usize, nom: f64, t: f64| {
            let mut r = nom;
            for &(te, d) in &cap[msi][k] {
                if te <= t {
                    r += d;
                }
            }
            r.max(0.0)
        };

        // 1. Merged arrival-ordered tenant trace, seeded per
        //    tenant × model stream.
        struct Arrival {
            t: f64,
            tenant: usize,
            model: Model,
        }
        let mut merged: Vec<Arrival> = Vec::new();
        {
            let _p = tracer.phase_on(PID_FLEET, "trace", "generate tenant traces");
            for (ti, tenant) in tenants.iter().enumerate() {
                for (mi, &(model, rate)) in tenant.offered.iter().enumerate() {
                    if rate <= 0.0 {
                        continue;
                    }
                    assert!(
                        serving.iter().any(|m| m.model == model),
                        "tenant {} offers {} which the placement does not serve",
                        tenant.policy.name,
                        model.name()
                    );
                    let mut rng = Rng64::seed_from_u64(hash2(
                        hash_str(cfg.seed, &tenant.policy.name),
                        mi as u64,
                    ));
                    let mut at = 0.0f64;
                    loop {
                        at += rng.exponential(rate);
                        if at > duration_s {
                            break;
                        }
                        merged.push(Arrival {
                            t: at,
                            tenant: ti,
                            model,
                        });
                    }
                }
            }
            merged.sort_by(|a, b| {
                a.t.total_cmp(&b.t)
                    .then(a.tenant.cmp(&b.tenant))
                    .then(a.model.name().cmp(b.model.name()))
            });
        }

        // 2. QoS admission + bounded-load consistent-hash routing against
        //    the fault-aware expected-work model, with per-shard circuit
        //    breakers, hedging, and self-healing re-placement.
        let mut qos = QosController::new(
            tenants.iter().map(|t| t.policy.clone()).collect(),
            plan.total_rate_rps,
        );
        let mut until = vec![0.0f64; shards_n];
        let mut shard_traces: Vec<Vec<Request>> = vec![Vec::new(); shards_n];
        let mut owner: HashMap<u64, (usize, bool, f64)> = HashMap::new();
        let mut health: Vec<ShardHealth> = (0..shards_n)
            .map(|_| ShardHealth::new(cfg.health))
            .collect();
        let mut hedge_until = vec![f64::NEG_INFINITY; shards_n];
        let mut healed = vec![false; shards_n];
        let mut heals: Vec<HealEvent> = Vec::new();
        let mut heal_specs: Vec<Vec<RolloutSpec>> = vec![Vec::new(); shards_n];
        let mut lost_by_platform: Vec<(FpgaPlatform, usize)> = Vec::new();
        // Per-shard log of routed primaries `(gid, model idx, slot,
        // modeled finish)` — the failover replay's working set — plus the
        // set of requests that already have a duplicate in flight.
        let mut routed_log: Vec<Vec<(u64, usize, usize, f64)>> = vec![Vec::new(); shards_n];
        let mut hedged: HashSet<u64> = HashSet::new();
        let (mut routed, mut overflowed) = (0u64, 0u64);
        let (mut hedges, mut forced_routes, mut replays) = (0u64, 0u64, 0u64);
        {
            let _p = tracer.phase_on(PID_FLEET, "route", "admit + route trace");
            for (gid, a) in merged.iter().enumerate() {
                let verdict = qos.admit(a.tenant, a.t);
                if verdict == Verdict::Shed {
                    continue;
                }
                // Breaker clocks advance with fleet time: cooled-down
                // open breakers readmit their shard half-open for probes.
                for (s, h) in health.iter_mut().enumerate() {
                    if h.tick(a.t) {
                        set_shard_active(&mut serving, s, true);
                    }
                }
                let msi = serving
                    .iter()
                    .position(|m| m.model == a.model)
                    .expect("asserted served above");
                let key = hash2(cfg.seed ^ 0x0F1C_E500, gid as u64);
                let (slot, over, forced) = {
                    let ms = &serving[msi];
                    let loads: Vec<f64> = ms
                        .shards
                        .iter()
                        .map(|&s| (until[s] - a.t).max(0.0))
                        .collect();
                    match ms.router.route_bounded(key, &loads, cfg.load_bound) {
                        Some((k, o)) => (k, o, false),
                        // Every serving shard's breaker is open: the
                        // request must still go somewhere — least
                        // backlog, deterministic tie-break.
                        None => {
                            let k = (0..ms.shards.len())
                                .min_by(|&x, &y| {
                                    until[ms.shards[x]]
                                        .total_cmp(&until[ms.shards[y]])
                                        .then(x.cmp(&y))
                                })
                                .expect("model has at least one shard");
                            (k, true, true)
                        }
                    }
                };
                let shard = serving[msi].shards[slot];
                let nominal = serving[msi].rate_rps[slot];
                let now_rate = rate_at(&cap, msi, slot, nominal, a.t);
                let degraded = now_rate < nominal * (1.0 - 1e-9);
                let interval = if now_rate > 1e-12 {
                    1.0 / now_rate
                } else {
                    f64::INFINITY
                };
                let ell = (until[shard] - a.t).max(0.0) + interval;
                // Calibrated straggler cut: hedge_mult × the shard's
                // nominal service interval.
                let straggler = cfg.health.hedge_mult / nominal;
                // Capacity-attributed timeout signal: predicted latency
                // breaches the straggler cut *and* the shard is degraded.
                // Pure overload never trips the breaker — QoS owns it.
                let slow = degraded && ell > straggler;
                if forced {
                    forced_routes += 1;
                }

                match health[shard].state() {
                    BreakerState::HalfOpen => {
                        // The probe: judge the shard's modeled capacity.
                        if now_rate >= 0.5 * nominal {
                            health[shard].on_success(a.t);
                        } else if health[shard].on_timeout(a.t) {
                            set_shard_active(&mut serving, shard, false);
                        }
                    }
                    BreakerState::Closed => {
                        if slow {
                            if health[shard].on_timeout(a.t) {
                                set_shard_active(&mut serving, shard, false);
                                // A domain outage made this shard's
                                // capacity unrecoverable in place:
                                // re-place on surviving inventory.
                                let outage = outages[shard].clone();
                                if let Some((t0, dom)) = outage {
                                    if !healed[shard] && a.t >= t0 {
                                        healed[shard] = true;
                                        let (ev, specs, caps) = heal_shard(
                                            a.t,
                                            shard,
                                            dom,
                                            &spec,
                                            &pools[shard],
                                            &serving,
                                            &mut lost_by_platform,
                                            &mut heal_db,
                                            &mut heal_cache,
                                            &cfg,
                                        );
                                        if ev.error.is_none() && ev.restore_s.is_finite() {
                                            health[shard].extend_open(ev.restore_s);
                                            hedge_until[shard] =
                                                ev.restore_s + 0.5 * (ev.restore_s - a.t);
                                        }
                                        for (cm, ck, ct, cd) in caps {
                                            cap[cm][ck].push((ct, cd));
                                        }
                                        heal_specs[shard].extend(specs);
                                        heals.push(ev);
                                        // Failover replay: the dead shard
                                        // never acknowledges what it had
                                        // in flight, so re-issue every
                                        // primary whose modeled finish
                                        // reaches back into the outage
                                        // (including its brownout lead)
                                        // to the next ring shard, now.
                                        let mut replay_from = t0;
                                        for e in &shard_events[shard] {
                                            if let FaultKind::TransferStall { for_s, .. } = e.kind {
                                                if e.at_s <= t0 && e.at_s + for_s >= t0 {
                                                    replay_from = replay_from.min(e.at_s);
                                                }
                                            }
                                        }
                                        let log = std::mem::take(&mut routed_log[shard]);
                                        for (g, lmsi, lslot, fin) in log {
                                            let lms = &serving[lmsi];
                                            // The guard must absorb everything the
                                            // modeled finish cannot see: a batch
                                            // dispatched just before the outage is
                                            // watchdog-held for timeout_mult ×
                                            // its execution before it sheds, and a
                                            // queued request waits out the batch
                                            // accumulation window first.
                                            let guard = (2.0 * cfg.health.hedge_mult
                                                + cfg.serve.fault.timeout_mult
                                                    * cfg.serve.batch.max_batch as f64)
                                                / lms.rate_rps[lslot]
                                                + cfg.serve.batch.max_wait_s;
                                            if fin < replay_from - guard || hedged.contains(&g) {
                                                continue;
                                            }
                                            let lkey = hash2(cfg.seed ^ 0x0F1C_E500, g);
                                            let Some(hk) = lms.router.next_distinct(lkey, lslot)
                                            else {
                                                continue;
                                            };
                                            let hs = lms.shards[hk];
                                            let hrate =
                                                rate_at(&cap, lmsi, hk, lms.rate_rps[hk], a.t);
                                            until[hs] = until[hs].max(a.t)
                                                + if hrate > 1e-12 {
                                                    1.0 / hrate
                                                } else {
                                                    1.0 / lms.rate_rps[hk]
                                                };
                                            shard_traces[hs].push(Request {
                                                id: g | HEDGE_BIT,
                                                model: lms.model,
                                                arrival_s: a.t,
                                                deadline_s: None,
                                                input: None,
                                            });
                                            hedged.insert(g);
                                            replays += 1;
                                        }
                                    }
                                }
                            }
                        } else {
                            health[shard].on_success(a.t);
                        }
                    }
                    BreakerState::Open { .. } => {}
                }

                routed += 1;
                if over {
                    overflowed += 1;
                }
                until[shard] = until[shard].max(a.t)
                    + if now_rate > 1e-12 {
                        1.0 / now_rate
                    } else {
                        1.0 / nominal
                    };
                shard_traces[shard].push(Request {
                    id: gid as u64,
                    model: a.model,
                    arrival_s: a.t,
                    deadline_s: None,
                    input: None,
                });
                owner.insert(gid as u64, (a.tenant, verdict == Verdict::Admit, a.t));
                routed_log[shard].push((gid as u64, msi, slot, until[shard]));

                // Hedge: a predicted straggler (or any request landing on
                // a healing shard inside its guard window) is duplicated
                // to the next distinct ring shard after the straggler
                // cut. First completion wins; the duplicate never touches
                // the QoS budgets.
                if slow || a.t < hedge_until[shard] {
                    let ms = &serving[msi];
                    if let Some(hk) = ms.router.next_distinct(key, slot) {
                        let hs = ms.shards[hk];
                        let ht = a.t + straggler;
                        let hrate = rate_at(&cap, msi, hk, ms.rate_rps[hk], ht);
                        until[hs] = until[hs].max(ht)
                            + if hrate > 1e-12 {
                                1.0 / hrate
                            } else {
                                1.0 / ms.rate_rps[hk]
                            };
                        shard_traces[hs].push(Request {
                            id: gid as u64 | HEDGE_BIT,
                            model: a.model,
                            arrival_s: ht,
                            deadline_s: None,
                            input: None,
                        });
                        hedged.insert(gid as u64);
                        hedges += 1;
                    }
                }
            }
        }

        // 3. Expand fleet rollouts into per-shard staggered specs;
        //    sabotaged shards get the retry attempt too. Heal adoption
        //    rollouts ride the same machinery.
        let mut shard_specs: Vec<Vec<RolloutSpec>> = vec![Vec::new(); shards_n];
        for r in &rollouts {
            for ms in serving.iter().filter(|m| m.model == r.model) {
                for (k, &shard) in ms.shards.iter().enumerate() {
                    shard_specs[shard].push(RolloutSpec {
                        at_s: r.start_s + k as f64 * r.stagger_s,
                        model: r.model,
                        to: r.to.clone(),
                        verify_input: None,
                        adopt: Vec::new(),
                        policy: r.policy,
                    });
                    if sabotaged[shard] {
                        shard_specs[shard].push(RolloutSpec {
                            at_s: r.retry_at_s + k as f64 * r.stagger_s,
                            model: r.model,
                            to: r.to.clone(),
                            verify_input: None,
                            adopt: Vec::new(),
                            policy: r.policy,
                        });
                    }
                }
            }
        }
        for (s, specs) in heal_specs.iter_mut().enumerate() {
            shard_specs[s].append(specs);
        }

        // 4. Run every shard's server on its routed sub-trace.
        let mut shard_results: Vec<RunResult> = Vec::with_capacity(shards_n);
        for (s, (pool, trace)) in pools.into_iter().zip(shard_traces).enumerate() {
            let _p = tracer.phase_on(PID_FLEET, "shard", &format!("run shard {s}"));
            let flight = FlightRecorder::enabled(256);
            let mut server = Server::new(pool, cfg.serve).with_flight_recorder(&flight);
            for spec in shard_specs[s].drain(..) {
                server.schedule_rollout(spec);
            }
            shard_results.push(server.run_open_loop(trace));
        }

        // 5. Attribute completions/sheds back to tenants —
        //    first-completion-wins across hedged copies, duplicates
        //    suppressed — and publish the class-aggregated fleet metrics.
        let mut outcomes: Vec<TenantOutcome> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (offered, admitted, over, shed) = qos.counters(i);
                TenantOutcome {
                    name: t.policy.name.clone(),
                    offered,
                    admitted_in_budget: admitted,
                    admitted_over_budget: over,
                    shed_fleet: shed,
                    shed_shard: 0,
                    completed: 0,
                    completed_in_budget: 0,
                }
            })
            .collect();
        // Winner per original request id: earliest completion; at equal
        // times the primary copy beats the hedge.
        let mut winner: HashMap<u64, (f64, u64)> = HashMap::new();
        let mut completions = 0u64;
        for r in &shard_results {
            for c in &r.completions {
                completions += 1;
                let base = c.id & !HEDGE_BIT;
                let e = winner.entry(base).or_insert((c.completion_s, c.id));
                if c.completion_s < e.0
                    || (c.completion_s == e.0 && c.id & HEDGE_BIT == 0 && e.1 & HEDGE_BIT != 0)
                {
                    *e = (c.completion_s, c.id);
                }
            }
        }
        let hedge_wins = winner
            .values()
            .filter(|(_, id)| id & HEDGE_BIT != 0)
            .count() as u64;
        let hedge_suppressed = completions - winner.len() as u64;

        let mut latency = LatencyHistogram::new();
        let registry = Registry::new();
        let mut span_s = duration_s;
        for r in &shard_results {
            for c in &r.completions {
                let base = c.id & !HEDGE_BIT;
                let &(_, wid) = winner.get(&base).expect("completion recorded above");
                if wid != c.id {
                    continue; // suppressed duplicate
                }
                let &(tenant, in_budget, arrival_s) =
                    owner.get(&base).expect("completion has an owner");
                outcomes[tenant].completed += 1;
                if in_budget {
                    outcomes[tenant].completed_in_budget += 1;
                }
                // End-to-end latency measures from the *original*
                // arrival, even when the hedge copy won.
                let l = c.completion_s - arrival_s;
                latency.record(l);
                registry.histogram_observe(
                    "fleet_request_latency_seconds",
                    "End-to-end fleet request latency (arrival to completion).",
                    &[],
                    LATENCY_BOUNDS,
                    l,
                );
                span_s = span_s.max(c.completion_s);
            }
        }
        // A shed counts only when no copy of the request completed, and
        // once per request even when both copies shed.
        let mut shed_seen: HashSet<u64> = HashSet::new();
        for r in &shard_results {
            for shed in &r.sheds {
                let base = shed.id & !HEDGE_BIT;
                if winner.contains_key(&base) || !shed_seen.insert(base) {
                    continue;
                }
                let &(tenant, _, _) = owner.get(&base).expect("shed has an owner");
                outcomes[tenant].shed_shard += 1;
            }
        }

        registry.gauge_set(
            "fleet_shards_count",
            "Shards the fleet's devices are dealt into.",
            &[],
            shards_n as f64,
        );
        registry.gauge_set(
            "fleet_domains_count",
            "Correlated failure domains the shards are striped across.",
            &[],
            domains_n as f64,
        );
        registry.counter_add(
            "fleet_routed_total",
            "Requests admitted and routed to a shard.",
            &[],
            routed as f64,
        );
        registry.counter_add(
            "fleet_router_overflow_total",
            "Routed requests that overflowed past their home shard (bounded load).",
            &[],
            overflowed as f64,
        );
        registry.counter_add(
            "fleet_hedges_total",
            "Hedged duplicates fired at predicted straggler shards.",
            &[],
            hedges as f64,
        );
        registry.counter_add(
            "fleet_hedge_wins_total",
            "Hedged duplicates that completed before their primary copy.",
            &[],
            hedge_wins as f64,
        );
        registry.counter_add(
            "fleet_hedge_suppressed_total",
            "Duplicate completions discarded by first-completion-wins accounting.",
            &[],
            hedge_suppressed as f64,
        );
        registry.counter_add(
            "fleet_failover_replays_total",
            "Primaries re-issued to another shard by the outage failover replay.",
            &[],
            replays as f64,
        );
        registry.counter_add(
            "fleet_forced_routes_total",
            "Requests routed while every serving shard's breaker was open.",
            &[],
            forced_routes as f64,
        );
        // Register every transition label at zero so the families exist
        // (and dashboards resolve) even on a fault-free run.
        for to in ["open", "half-open", "closed"] {
            registry.counter_add(
                "fleet_breaker_transitions_total",
                "Circuit-breaker transitions, by target state.",
                &[("to", to)],
                0.0,
            );
        }
        for (s, h) in health.iter().enumerate() {
            for tr in h.transitions() {
                registry.counter_inc(
                    "fleet_breaker_transitions_total",
                    "Circuit-breaker transitions, by target state.",
                    &[("to", tr.to)],
                );
            }
            // Health ratio: fraction of the run the breaker was closed.
            let mut not_closed_s = 0.0f64;
            let mut left_closed: Option<f64> = None;
            for tr in h.transitions() {
                if tr.from == "closed" {
                    left_closed = Some(tr.t_s);
                } else if tr.to == "closed" {
                    if let Some(o) = left_closed.take() {
                        not_closed_s += tr.t_s - o;
                    }
                }
            }
            if let Some(o) = left_closed {
                not_closed_s += span_s.max(o) - o;
            }
            let ratio = if span_s > 0.0 {
                (1.0 - not_closed_s / span_s).clamp(0.0, 1.0)
            } else {
                1.0
            };
            registry.gauge_set(
                "fleet_shard_health_ratio",
                "Fraction of the run the shard's breaker was closed (healthy).",
                &[("shard", &s.to_string())],
                ratio,
            );
        }
        let heal_ok = heals.iter().filter(|h| h.error.is_none()).count();
        registry.counter_add(
            "fleet_heal_events_total",
            "Self-healing re-placements, by outcome.",
            &[("outcome", "replaced")],
            heal_ok as f64,
        );
        registry.counter_add(
            "fleet_heal_events_total",
            "Self-healing re-placements, by outcome.",
            &[("outcome", "failed")],
            (heals.len() - heal_ok) as f64,
        );
        for h in &heals {
            if h.error.is_none() && h.restore_s.is_finite() {
                registry.histogram_observe(
                    "fleet_heal_latency_seconds",
                    "Outage detection to estimated capacity restore.",
                    &[],
                    HEAL_BOUNDS,
                    h.restore_s - h.t_s,
                );
            }
        }
        for o in &outcomes {
            let t = o.name.as_str();
            registry.counter_add(
                "fleet_admitted_total",
                "Requests admitted at the fleet door, by tenant and budget bucket.",
                &[("tenant", t), ("budget", "within")],
                o.admitted_in_budget as f64,
            );
            registry.counter_add(
                "fleet_admitted_total",
                "Requests admitted at the fleet door, by tenant and budget bucket.",
                &[("tenant", t), ("budget", "over")],
                o.admitted_over_budget as f64,
            );
            registry.counter_add(
                "fleet_shed_total",
                "Requests shed, by tenant and scope (fleet QoS door vs shard).",
                &[("tenant", t), ("scope", "fleet")],
                o.shed_fleet as f64,
            );
            registry.counter_add(
                "fleet_shed_total",
                "Requests shed, by tenant and scope (fleet QoS door vs shard).",
                &[("tenant", t), ("scope", "shard")],
                o.shed_shard as f64,
            );
            registry.counter_add(
                "fleet_completed_total",
                "Requests completed, by tenant.",
                &[("tenant", t)],
                o.completed as f64,
            );
        }
        // Class-scoped device aggregates: the fleet registry carries one
        // series per device *class*, not per device — per-device busy and
        // utilization stay in each shard's own registry.
        publish_class_metrics(&registry, &classes, &shard_results, span_s);

        FleetRunResult {
            plan,
            tenants: outcomes,
            shards: shard_results,
            routed,
            overflowed,
            hedges,
            hedge_wins,
            hedge_suppressed,
            replays,
            forced_routes,
            breakers: health.iter().map(|h| h.transitions().to_vec()).collect(),
            heals,
            latency,
            registry,
            span_s,
        }
    }
}

/// Flips `shard`'s ring membership in every model router that serves it.
fn set_shard_active(serving: &mut [ModelShards], shard: usize, active: bool) {
    for ms in serving.iter_mut() {
        if let Some(k) = ms.shards.iter().position(|&x| x == shard) {
            ms.router.set_active(k, active);
        }
    }
}

/// Calibrated per-device steady-state rate of `model` on `platform`
/// through the warm heal cache; `None` when the pair is infeasible.
fn device_rate(model: Model, platform: FpgaPlatform, cache: &mut DeploymentCache) -> Option<f64> {
    let dep = cache
        .get_or_compile(model, platform, &optimized_config(model, platform))
        .ok()?;
    let lm = cache.calibration(&dep, PROBE_BATCH);
    Some(PROBE_BATCH as f64 / lm.seconds(PROBE_BATCH))
}

/// Capacity-model restore deltas `(model index, slot, at, +rate)` a heal
/// applies once its adopted boards come live.
type CapacityDeltas = Vec<(usize, usize, f64, f64)>;

/// Self-healing re-placement for a shard whose capacity a domain outage
/// made unrecoverable: re-plans the demand over the surviving inventory
/// (warm database and template cache — the probes hit memoized compiles),
/// then adopts the victim shard's healthy spare boards into serving the
/// lost models via heal [`RolloutSpec`]s. Returns the structured event,
/// the rollouts to schedule on the shard, and the capacity-model restore
/// deltas.
#[allow(clippy::too_many_arguments)]
fn heal_shard(
    t_open: f64,
    shard: usize,
    domain: String,
    spec: &FleetSpec,
    pool: &DevicePool,
    serving: &[ModelShards],
    lost_by_platform: &mut Vec<(FpgaPlatform, usize)>,
    heal_db: &mut TuningDb,
    heal_cache: &mut DeploymentCache,
    cfg: &FleetConfig,
) -> (HealEvent, Vec<RolloutSpec>, CapacityDeltas) {
    let mut lost_names = Vec::new();
    for d in pool.devices() {
        if Model::ALL.iter().any(|&m| d.deployment(m).is_some()) {
            lost_names.push(d.name.clone());
            match lost_by_platform.iter_mut().find(|(p, _)| *p == d.platform) {
                Some((_, n)) => *n += 1,
                None => lost_by_platform.push((d.platform, 1)),
            }
        }
    }
    // The surviving inventory: the spec minus every board written off so
    // far, fleet-wide.
    let mut survivor = spec.clone();
    for c in &mut survivor.classes {
        if let Some((_, n)) = lost_by_platform.iter().find(|(p, _)| *p == c.platform) {
            c.count = c.count.saturating_sub(*n);
        }
    }
    let heal_plan = match plan_placement(&survivor, heal_db, heal_cache) {
        Ok(p) => p,
        Err(e) => {
            return (
                HealEvent {
                    t_s: t_open,
                    shard,
                    domain,
                    lost: lost_names,
                    adopted: Vec::new(),
                    plan_evaluations: 0,
                    restore_s: f64::INFINITY,
                    error: Some(e),
                },
                Vec::new(),
                Vec::new(),
            );
        }
    };
    // Adopt the shard's healthy spare boards (standby capacity outside
    // the serving cage) to stand in for the lost ones, fastest feasible
    // spare first, until each lost model's rate is covered.
    let mut spares: Vec<(String, FpgaPlatform)> = pool
        .devices()
        .iter()
        .filter(|d| {
            d.health() == DeviceHealth::Healthy
                && Model::ALL.iter().all(|&m| d.deployment(m).is_none())
        })
        .map(|d| (d.name.clone(), d.platform))
        .collect();
    let mut specs = Vec::new();
    let mut caps = Vec::new();
    let mut adopted_all = Vec::new();
    let mut at = t_open + cfg.heal_delay_s;
    for (msi, ms) in serving.iter().enumerate() {
        let Some(k) = ms.shards.iter().position(|&x| x == shard) else {
            continue;
        };
        let target_rate = ms.rate_rps[k];
        let mut adopted: Vec<(String, FpgaPlatform)> = Vec::new();
        let mut got = 0.0f64;
        while got < target_rate {
            let mut best: Option<(usize, f64)> = None;
            for (i, (_, p)) in spares.iter().enumerate() {
                let Some(r) = device_rate(ms.model, *p, heal_cache) else {
                    continue;
                };
                if best.is_none_or(|(_, br)| r > br) {
                    best = Some((i, r));
                }
            }
            let Some((i, r)) = best else {
                break;
            };
            let (name, p) = spares.remove(i);
            adopted.push((name, p));
            got += r;
        }
        if adopted.is_empty() {
            continue;
        }
        // One rollout per adopted platform: bitstream configs are
        // per-platform. Serialized on the shard's rollout machinery.
        let mut plats: Vec<FpgaPlatform> = Vec::new();
        for (_, p) in &adopted {
            if !plats.contains(p) {
                plats.push(*p);
            }
        }
        for p in plats {
            let names: Vec<String> = adopted
                .iter()
                .filter(|(_, ap)| *ap == p)
                .map(|(n, _)| n.clone())
                .collect();
            // One wave reprograms the whole adoption in parallel — a heal
            // races the outage, so it must not serialize board by board
            // the way a cautious upgrade does.
            let pol = RolloutPolicy {
                wave_size: names.len().max(1),
                ..RolloutPolicy::default()
            };
            specs.push(RolloutSpec {
                at_s: at,
                model: ms.model,
                to: optimized_config(ms.model, p),
                verify_input: None,
                adopt: names,
                policy: pol,
            });
            at += pol.reprogram_s + 0.02;
        }
        caps.push((msi, k, got));
        adopted_all.extend(adopted.into_iter().map(|(n, _)| n));
    }
    // Conservative restore estimate: every adoption wave done plus a
    // guard margin — the breaker stays parked until the boards are live.
    let restore_s = if adopted_all.is_empty() {
        f64::INFINITY
    } else {
        at + 0.05
    };
    let caps = caps
        .into_iter()
        .map(|(m, k, r)| (m, k, restore_s, r))
        .collect();
    (
        HealEvent {
            t_s: t_open,
            shard,
            domain,
            lost: lost_names,
            adopted: adopted_all,
            plan_evaluations: heal_plan.evaluations,
            restore_s,
            error: None,
        },
        specs,
        caps,
    )
}

/// Histogram bounds for `fleet_request_latency_seconds` (seconds).
const LATENCY_BOUNDS: &[f64] = &[
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
];

/// Histogram bounds for `fleet_heal_latency_seconds` (seconds).
const HEAL_BOUNDS: &[f64] = &[0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0];

fn publish_class_metrics(
    registry: &Registry,
    classes: &[(String, usize)],
    shard_results: &[RunResult],
    span_s: f64,
) {
    for (label, count) in classes {
        let prefix = format!("{}-", label.to_lowercase());
        let mut busy = 0.0f64;
        for r in shard_results {
            for d in &r.devices {
                if d.device.starts_with(&prefix) {
                    busy += r
                        .registry
                        .value("serve_device_busy_seconds", &[("device", &d.device)])
                        .unwrap_or(0.0);
                }
            }
        }
        let class = label.as_str();
        registry.gauge_set(
            "fleet_class_devices_count",
            "Fleet inventory per device class.",
            &[("class", class)],
            *count as f64,
        );
        registry.gauge_set(
            "fleet_class_busy_seconds",
            "Aggregate simulated batch-execution seconds per device class.",
            &[("class", class)],
            busy,
        );
        let util = if span_s > 0.0 && *count > 0 {
            busy / (span_s * *count as f64)
        } else {
            0.0
        };
        registry.gauge_set(
            "fleet_class_utilization_ratio",
            "Class busy-fraction of the run span (aggregated over devices).",
            &[("class", class)],
            util,
        );
    }
}
