//! Seeded hashing shared by the router and the placement digest.
//!
//! `std`'s `DefaultHasher` is explicitly unstable across releases, and the
//! fleet's determinism guarantees (byte-identical reruns, cached placement
//! digests that survive process restarts) need a fixed function — so the
//! crate carries its own: the SplitMix64 finalizer, chained over input
//! words.

/// The SplitMix64 output permutation: a fixed, well-mixed 64-bit
/// bijection.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes two words into one (seeded combine).
pub fn hash2(seed: u64, x: u64) -> u64 {
    splitmix64(seed ^ splitmix64(x))
}

/// Hashes a string under `seed`, folding 8 bytes at a time through
/// [`hash2`]. Stable across platforms and releases.
pub fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h = splitmix64(seed ^ (s.len() as u64));
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = hash2(h, u64::from_le_bytes(word));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_distinct() {
        assert_eq!(hash_str(1, "a10"), hash_str(1, "a10"));
        assert_ne!(hash_str(1, "a10"), hash_str(2, "a10"));
        assert_ne!(hash_str(1, "a10"), hash_str(1, "a10 "));
        assert_ne!(hash2(0, 1), hash2(0, 2));
    }

    #[test]
    fn splitmix_mixes_counter_inputs() {
        // Successive counters must not land in the same region.
        let a = splitmix64(1) >> 32;
        let b = splitmix64(2) >> 32;
        assert_ne!(a, b);
    }
}
