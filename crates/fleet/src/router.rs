//! The shard router: seeded consistent hashing with bounded-load
//! overflow.
//!
//! Each shard owns `vnodes` points on a 64-bit hash ring; a key is owned
//! by the first active point clockwise of its hash. Two properties matter
//! to a fleet:
//!
//! * **Bounded remapping** — draining or losing a shard moves only the
//!   keys that shard owned (≈ `vnodes/total` of the ring); every other
//!   key keeps its shard, so warm queues and batches stay warm. The
//!   property tests pin this.
//! * **Bounded load** — a key whose home shard is already loaded past
//!   `bound ×` the mean walks the ring to the next active shard under the
//!   threshold (the "power of consistent choices" construction), falling
//!   back to the least-loaded active shard when every successor is hot.
//!
//! The ring is a pure function of `(seed, shards, vnodes)` — reruns and
//! remote replicas agree on every route without coordination.

use crate::hash::hash2;

/// A consistent-hash ring over shard indices `0..shards`.
#[derive(Clone, Debug)]
pub struct Router {
    /// `(point, shard)`, sorted by point.
    ring: Vec<(u64, usize)>,
    active: Vec<bool>,
    seed: u64,
}

impl Router {
    /// Builds the ring for `shards` shards with `vnodes` points each.
    pub fn new(seed: u64, shards: usize, vnodes: usize) -> Router {
        assert!(shards > 0, "a router needs at least one shard");
        assert!(vnodes > 0, "a shard needs at least one ring point");
        let mut ring = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                ring.push((hash2(seed, ((s as u64) << 32) | v as u64), s));
            }
        }
        ring.sort_unstable();
        Router {
            ring,
            active: vec![true; shards],
            seed,
        }
    }

    /// Number of shards (active or not).
    pub fn shards(&self) -> usize {
        self.active.len()
    }

    /// Marks a shard active (serving) or drained.
    pub fn set_active(&mut self, shard: usize, active: bool) {
        self.active[shard] = active;
    }

    /// Active shard count.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Index into the ring of the first point at or after `key`'s hash.
    fn home_position(&self, key: u64) -> usize {
        let h = hash2(self.seed ^ 0x5EED_0001, key);
        match self.ring.binary_search(&(h, usize::MAX)) {
            Ok(i) | Err(i) => i % self.ring.len(),
        }
    }

    /// The key's home shard: the first *active* shard clockwise of its
    /// hash. `None` when every shard is drained.
    pub fn route(&self, key: u64) -> Option<usize> {
        let start = self.home_position(key);
        for off in 0..self.ring.len() {
            let (_, s) = self.ring[(start + off) % self.ring.len()];
            if self.active[s] {
                return Some(s);
            }
        }
        None
    }

    /// Routes with bounded load: starting at the key's home shard, walks
    /// successive distinct active shards clockwise and picks the first
    /// whose `loads` entry is at most `bound ×` the mean active load;
    /// when every shard is past the threshold, the least-loaded active
    /// shard (lowest index on ties) takes the key. Returns the shard and
    /// whether the key overflowed past its home.
    ///
    /// `loads` is indexed by shard; entries of drained shards are
    /// ignored. `None` when every shard is drained.
    pub fn route_bounded(&self, key: u64, loads: &[f64], bound: f64) -> Option<(usize, bool)> {
        assert_eq!(loads.len(), self.active.len(), "one load per shard");
        let home = self.route(key)?;
        let active: Vec<usize> = (0..self.active.len()).filter(|&s| self.active[s]).collect();
        let mean = active.iter().map(|&s| loads[s]).sum::<f64>() / active.len() as f64;
        let threshold = bound * mean;
        // Walk distinct active shards in ring order from the home point.
        let start = self.home_position(key);
        let mut seen = vec![false; self.active.len()];
        let mut visited = 0usize;
        for off in 0..self.ring.len() {
            let (_, s) = self.ring[(start + off) % self.ring.len()];
            if !self.active[s] || seen[s] {
                continue;
            }
            seen[s] = true;
            visited += 1;
            if loads[s] <= threshold {
                return Some((s, s != home));
            }
            if visited == active.len() {
                break;
            }
        }
        let least = active
            .into_iter()
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
            .expect("at least one active shard");
        Some((least, least != home))
    }

    /// The next distinct *active* shard clockwise of `key`'s home point,
    /// skipping `exclude` — the hedge target for a request already routed
    /// to `exclude`. `None` when no other active shard exists.
    pub fn next_distinct(&self, key: u64, exclude: usize) -> Option<usize> {
        let start = self.home_position(key);
        for off in 0..self.ring.len() {
            let (_, s) = self.ring[(start + off) % self.ring.len()];
            if s != exclude && self.active[s] {
                return Some(s);
            }
        }
        None
    }
}

/// Knobs of the per-shard circuit breaker and the request hedger.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Consecutive capacity-attributed timeouts that trip the breaker
    /// open.
    pub open_after: usize,
    /// Simulated seconds an open breaker rests before admitting a
    /// half-open probe.
    pub cooldown_s: f64,
    /// Probe completions a half-open breaker needs before closing.
    pub probe_successes: usize,
    /// Hedging trigger: a request predicted to wait longer than
    /// `hedge_mult ×` the shard's calibrated nominal service interval is
    /// duplicated to the next ring shard.
    pub hedge_mult: f64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            open_after: 3,
            cooldown_s: 0.25,
            probe_successes: 1,
            hedge_mult: 4.0,
        }
    }
}

/// Circuit-breaker state of one shard.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BreakerState {
    /// Healthy: requests route normally.
    Closed,
    /// Ejected from the ring until `until_s`; its keys overflow to ring
    /// successors.
    Open {
        /// Simulated second the cooldown expires and a probe is allowed.
        until_s: f64,
    },
    /// Back on the ring for probe traffic; the next outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Stable label for transition logs and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// One logged breaker transition.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerTransition {
    /// Simulated second of the transition.
    pub t_s: f64,
    /// State left.
    pub from: &'static str,
    /// State entered.
    pub to: &'static str,
}

/// Health score and circuit breaker of one shard, fed by the fleet
/// driver's completion/timeout signals.
///
/// The state machine is the classic three-state breaker: `open_after`
/// consecutive capacity-attributed timeouts trip **closed → open** (the
/// shard leaves the ring); after `cooldown_s` the breaker turns
/// **half-open** and readmits the shard for probe traffic; the probe's
/// outcome either closes the breaker or re-opens it for another cooldown.
/// Every transition is timestamped in [`transitions`](Self::transitions).
#[derive(Clone, Debug)]
pub struct ShardHealth {
    policy: HealthPolicy,
    state: BreakerState,
    consecutive_timeouts: usize,
    probe_ok: usize,
    transitions: Vec<BreakerTransition>,
}

impl ShardHealth {
    /// A closed breaker under `policy`.
    pub fn new(policy: HealthPolicy) -> ShardHealth {
        ShardHealth {
            policy,
            state: BreakerState::Closed,
            consecutive_timeouts: 0,
            probe_ok: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The timestamped transition log, oldest first.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    fn transition(&mut self, t_s: f64, to: BreakerState) {
        self.transitions.push(BreakerTransition {
            t_s,
            from: self.state.label(),
            to: to.label(),
        });
        self.state = to;
    }

    /// Records a capacity-attributed timeout at `t_s`. Returns `true`
    /// when this timeout newly opened the breaker (closed → open or a
    /// failed half-open probe).
    pub fn on_timeout(&mut self, t_s: f64) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_timeouts += 1;
                if self.consecutive_timeouts >= self.policy.open_after {
                    self.consecutive_timeouts = 0;
                    self.transition(
                        t_s,
                        BreakerState::Open {
                            until_s: t_s + self.policy.cooldown_s,
                        },
                    );
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                self.probe_ok = 0;
                self.transition(
                    t_s,
                    BreakerState::Open {
                        until_s: t_s + self.policy.cooldown_s,
                    },
                );
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Records a completion at `t_s`. Closed: clears the timeout streak.
    /// Half-open: counts toward `probe_successes` and closes the breaker
    /// once met.
    pub fn on_success(&mut self, t_s: f64) {
        match self.state {
            BreakerState::Closed => self.consecutive_timeouts = 0,
            BreakerState::HalfOpen => {
                self.probe_ok += 1;
                if self.probe_ok >= self.policy.probe_successes {
                    self.probe_ok = 0;
                    self.transition(t_s, BreakerState::Closed);
                }
            }
            BreakerState::Open { .. } => {}
        }
    }

    /// Advances the clock: an open breaker past its cooldown turns
    /// half-open. Returns `true` on that transition (the caller readmits
    /// the shard to the ring for probe traffic).
    pub fn tick(&mut self, t_s: f64) -> bool {
        if let BreakerState::Open { until_s } = self.state {
            if t_s >= until_s {
                self.probe_ok = 0;
                self.transition(t_s, BreakerState::HalfOpen);
                return true;
            }
        }
        false
    }

    /// Pushes an open breaker's cooldown out to at least `until_s` — the
    /// self-healing path parks the breaker until the re-placement's
    /// estimated restore time so probes land on working boards.
    pub fn extend_open(&mut self, until_s: f64) {
        if let BreakerState::Open { until_s: cur } = self.state {
            self.state = BreakerState::Open {
                until_s: cur.max(until_s),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::splitmix64;

    const KEYS: u64 = 20_000;
    const SHARDS: usize = 10;
    const VNODES: usize = 64;

    fn keys() -> impl Iterator<Item = u64> {
        (0..KEYS).map(|i| splitmix64(0xABCD ^ i))
    }

    #[test]
    fn routing_is_deterministic_in_the_seed() {
        let a = Router::new(7, SHARDS, VNODES);
        let b = Router::new(7, SHARDS, VNODES);
        let c = Router::new(8, SHARDS, VNODES);
        assert!(keys().all(|k| a.route(k) == b.route(k)));
        assert!(keys().any(|k| a.route(k) != c.route(k)));
    }

    #[test]
    fn draining_any_shard_only_remaps_its_own_keys() {
        // The consistent-hashing contract, as a property over every
        // possible victim: keys not homed on the drained shard keep
        // their shard, exactly; the drained shard's share of the ring is
        // O(1/n) with vnode-level concentration bounds.
        let before: Vec<usize> = {
            let r = Router::new(42, SHARDS, VNODES);
            keys().map(|k| r.route(k).unwrap()).collect()
        };
        for victim in 0..SHARDS {
            let mut r = Router::new(42, SHARDS, VNODES);
            let owned = before.iter().filter(|&&s| s == victim).count();
            r.set_active(victim, false);
            let mut moved = 0usize;
            for (k, &was) in keys().zip(&before) {
                let now = r.route(k).unwrap();
                assert_ne!(now, victim, "drained shard must receive nothing");
                if was != victim {
                    assert_eq!(now, was, "key {k:#x} moved without losing its home");
                } else {
                    moved += 1;
                }
            }
            assert_eq!(moved, owned);
            // The victim's share of the keyspace stays near 1/n.
            let share = owned as f64 / KEYS as f64;
            assert!(
                share < 2.5 / SHARDS as f64,
                "shard {victim} owned {share:.3} of the keyspace"
            );
        }
    }

    #[test]
    fn reactivating_restores_the_original_routing() {
        let mut r = Router::new(42, SHARDS, VNODES);
        let before: Vec<usize> = keys().map(|k| r.route(k).unwrap()).collect();
        r.set_active(5, false);
        r.set_active(5, true);
        let after: Vec<usize> = keys().map(|k| r.route(k).unwrap()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn bounded_load_spreads_within_the_bound() {
        // Route a key stream while accounting unit load per key; no shard
        // may end past bound x mean + 1 (the +1 absorbing the in-flight
        // key that crossed the threshold).
        let r = Router::new(9, SHARDS, VNODES);
        let bound = 1.25f64;
        let mut loads = vec![0.0f64; SHARDS];
        for k in keys() {
            let (s, _) = r.route_bounded(k, &loads, bound).unwrap();
            loads[s] += 1.0;
        }
        let mean = loads.iter().sum::<f64>() / SHARDS as f64;
        for (s, &l) in loads.iter().enumerate() {
            assert!(
                l <= bound * mean + 1.0,
                "shard {s} holds {l} of mean {mean} (bound {bound})"
            );
        }
    }

    #[test]
    fn unloaded_routes_stay_home_and_every_drain_leaves_a_route() {
        let mut r = Router::new(11, 4, 32);
        let loads = vec![0.0; 4];
        for k in keys().take(500) {
            let (s, overflowed) = r.route_bounded(k, &loads, 1.5).unwrap();
            assert_eq!(Some(s), r.route(k));
            assert!(!overflowed, "zero load must never overflow");
        }
        for s in 0..3 {
            r.set_active(s, false);
        }
        assert!(keys().take(100).all(|k| r.route(k) == Some(3)));
        r.set_active(3, false);
        assert_eq!(r.route(1), None);
        assert_eq!(r.route_bounded(1, &loads, 1.5), None);
    }

    #[test]
    fn hedge_target_is_a_distinct_active_shard() {
        let mut r = Router::new(13, 5, 32);
        for k in keys().take(500) {
            let home = r.route(k).unwrap();
            let hedge = r.next_distinct(k, home).unwrap();
            assert_ne!(hedge, home, "hedge must leave the primary shard");
        }
        // With one shard left there is nowhere to hedge to.
        for s in 0..4 {
            r.set_active(s, false);
        }
        assert_eq!(r.next_distinct(1, 4), None);
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut h = ShardHealth::new(HealthPolicy {
            open_after: 3,
            cooldown_s: 1.0,
            probe_successes: 2,
            hedge_mult: 4.0,
        });
        assert_eq!(h.state(), BreakerState::Closed);
        // Two timeouts then a success: the streak resets, no trip.
        assert!(!h.on_timeout(0.1));
        assert!(!h.on_timeout(0.2));
        h.on_success(0.3);
        assert!(!h.on_timeout(0.4));
        assert!(!h.on_timeout(0.5));
        assert!(h.on_timeout(0.6), "third consecutive timeout trips");
        assert_eq!(h.state(), BreakerState::Open { until_s: 1.6 });
        // Open ignores further signals and holds until the cooldown.
        assert!(!h.on_timeout(0.7));
        h.on_success(0.8);
        assert!(!h.tick(1.0), "cooldown not yet elapsed");
        assert!(h.tick(1.6), "cooldown elapsed: half-open");
        // One probe success is not enough under probe_successes = 2.
        h.on_success(1.7);
        assert_eq!(h.state(), BreakerState::HalfOpen);
        h.on_success(1.8);
        assert_eq!(h.state(), BreakerState::Closed);
        let labels: Vec<(&str, &str)> = h.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            labels,
            vec![
                ("closed", "open"),
                ("open", "half-open"),
                ("half-open", "closed")
            ]
        );
    }

    #[test]
    fn failed_probe_reopens_without_flapping_closed() {
        // A shard that keeps timing out must cycle open → half-open →
        // open, never touching closed, and extend_open must push the
        // cooldown out instead of resetting state.
        let policy = HealthPolicy::default();
        let mut h = ShardHealth::new(policy);
        for i in 0..policy.open_after {
            h.on_timeout(0.01 * (i + 1) as f64);
        }
        let BreakerState::Open { until_s } = h.state() else {
            panic!("breaker must be open");
        };
        assert!(h.tick(until_s));
        assert!(h.on_timeout(until_s + 0.01), "failed probe re-opens");
        h.extend_open(until_s + 10.0);
        assert_eq!(
            h.state(),
            BreakerState::Open {
                until_s: until_s + 10.0
            }
        );
        assert!(!h.tick(until_s + 5.0), "extended cooldown holds");
        assert!(
            h.transitions().iter().all(|t| t.to != "closed"),
            "breaker never closed: {:?}",
            h.transitions()
        );
    }
}
