//! The shard router: seeded consistent hashing with bounded-load
//! overflow.
//!
//! Each shard owns `vnodes` points on a 64-bit hash ring; a key is owned
//! by the first active point clockwise of its hash. Two properties matter
//! to a fleet:
//!
//! * **Bounded remapping** — draining or losing a shard moves only the
//!   keys that shard owned (≈ `vnodes/total` of the ring); every other
//!   key keeps its shard, so warm queues and batches stay warm. The
//!   property tests pin this.
//! * **Bounded load** — a key whose home shard is already loaded past
//!   `bound ×` the mean walks the ring to the next active shard under the
//!   threshold (the "power of consistent choices" construction), falling
//!   back to the least-loaded active shard when every successor is hot.
//!
//! The ring is a pure function of `(seed, shards, vnodes)` — reruns and
//! remote replicas agree on every route without coordination.

use crate::hash::hash2;

/// A consistent-hash ring over shard indices `0..shards`.
#[derive(Clone, Debug)]
pub struct Router {
    /// `(point, shard)`, sorted by point.
    ring: Vec<(u64, usize)>,
    active: Vec<bool>,
    seed: u64,
}

impl Router {
    /// Builds the ring for `shards` shards with `vnodes` points each.
    pub fn new(seed: u64, shards: usize, vnodes: usize) -> Router {
        assert!(shards > 0, "a router needs at least one shard");
        assert!(vnodes > 0, "a shard needs at least one ring point");
        let mut ring = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                ring.push((hash2(seed, ((s as u64) << 32) | v as u64), s));
            }
        }
        ring.sort_unstable();
        Router {
            ring,
            active: vec![true; shards],
            seed,
        }
    }

    /// Number of shards (active or not).
    pub fn shards(&self) -> usize {
        self.active.len()
    }

    /// Marks a shard active (serving) or drained.
    pub fn set_active(&mut self, shard: usize, active: bool) {
        self.active[shard] = active;
    }

    /// Active shard count.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Index into the ring of the first point at or after `key`'s hash.
    fn home_position(&self, key: u64) -> usize {
        let h = hash2(self.seed ^ 0x5EED_0001, key);
        match self.ring.binary_search(&(h, usize::MAX)) {
            Ok(i) | Err(i) => i % self.ring.len(),
        }
    }

    /// The key's home shard: the first *active* shard clockwise of its
    /// hash. `None` when every shard is drained.
    pub fn route(&self, key: u64) -> Option<usize> {
        let start = self.home_position(key);
        for off in 0..self.ring.len() {
            let (_, s) = self.ring[(start + off) % self.ring.len()];
            if self.active[s] {
                return Some(s);
            }
        }
        None
    }

    /// Routes with bounded load: starting at the key's home shard, walks
    /// successive distinct active shards clockwise and picks the first
    /// whose `loads` entry is at most `bound ×` the mean active load;
    /// when every shard is past the threshold, the least-loaded active
    /// shard (lowest index on ties) takes the key. Returns the shard and
    /// whether the key overflowed past its home.
    ///
    /// `loads` is indexed by shard; entries of drained shards are
    /// ignored. `None` when every shard is drained.
    pub fn route_bounded(&self, key: u64, loads: &[f64], bound: f64) -> Option<(usize, bool)> {
        assert_eq!(loads.len(), self.active.len(), "one load per shard");
        let home = self.route(key)?;
        let active: Vec<usize> = (0..self.active.len()).filter(|&s| self.active[s]).collect();
        let mean = active.iter().map(|&s| loads[s]).sum::<f64>() / active.len() as f64;
        let threshold = bound * mean;
        // Walk distinct active shards in ring order from the home point.
        let start = self.home_position(key);
        let mut seen = vec![false; self.active.len()];
        let mut visited = 0usize;
        for off in 0..self.ring.len() {
            let (_, s) = self.ring[(start + off) % self.ring.len()];
            if !self.active[s] || seen[s] {
                continue;
            }
            seen[s] = true;
            visited += 1;
            if loads[s] <= threshold {
                return Some((s, s != home));
            }
            if visited == active.len() {
                break;
            }
        }
        let least = active
            .into_iter()
            .min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
            .expect("at least one active shard");
        Some((least, least != home))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::splitmix64;

    const KEYS: u64 = 20_000;
    const SHARDS: usize = 10;
    const VNODES: usize = 64;

    fn keys() -> impl Iterator<Item = u64> {
        (0..KEYS).map(|i| splitmix64(0xABCD ^ i))
    }

    #[test]
    fn routing_is_deterministic_in_the_seed() {
        let a = Router::new(7, SHARDS, VNODES);
        let b = Router::new(7, SHARDS, VNODES);
        let c = Router::new(8, SHARDS, VNODES);
        assert!(keys().all(|k| a.route(k) == b.route(k)));
        assert!(keys().any(|k| a.route(k) != c.route(k)));
    }

    #[test]
    fn draining_a_shard_only_remaps_its_own_keys() {
        // The consistent-hashing contract: keys not homed on the drained
        // shard keep their shard, exactly; the drained shard's share of
        // the ring is O(1/n) with vnode-level concentration bounds.
        let mut r = Router::new(42, SHARDS, VNODES);
        let before: Vec<usize> = keys().map(|k| r.route(k).unwrap()).collect();
        let victim = 3usize;
        let owned = before.iter().filter(|&&s| s == victim).count();
        r.set_active(victim, false);
        let mut moved = 0usize;
        for (k, &was) in keys().zip(&before) {
            let now = r.route(k).unwrap();
            assert_ne!(now, victim, "drained shard must receive nothing");
            if was != victim {
                assert_eq!(now, was, "key {k:#x} moved without losing its home");
            } else {
                moved += 1;
            }
        }
        assert_eq!(moved, owned);
        // The victim's share of the keyspace stays near 1/n.
        let share = owned as f64 / KEYS as f64;
        assert!(
            share < 2.5 / SHARDS as f64,
            "shard owned {share:.3} of the keyspace"
        );
    }

    #[test]
    fn reactivating_restores_the_original_routing() {
        let mut r = Router::new(42, SHARDS, VNODES);
        let before: Vec<usize> = keys().map(|k| r.route(k).unwrap()).collect();
        r.set_active(5, false);
        r.set_active(5, true);
        let after: Vec<usize> = keys().map(|k| r.route(k).unwrap()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn bounded_load_spreads_within_the_bound() {
        // Route a key stream while accounting unit load per key; no shard
        // may end past bound x mean + 1 (the +1 absorbing the in-flight
        // key that crossed the threshold).
        let r = Router::new(9, SHARDS, VNODES);
        let bound = 1.25f64;
        let mut loads = vec![0.0f64; SHARDS];
        for k in keys() {
            let (s, _) = r.route_bounded(k, &loads, bound).unwrap();
            loads[s] += 1.0;
        }
        let mean = loads.iter().sum::<f64>() / SHARDS as f64;
        for (s, &l) in loads.iter().enumerate() {
            assert!(
                l <= bound * mean + 1.0,
                "shard {s} holds {l} of mean {mean} (bound {bound})"
            );
        }
    }

    #[test]
    fn unloaded_routes_stay_home_and_every_drain_leaves_a_route() {
        let mut r = Router::new(11, 4, 32);
        let loads = vec![0.0; 4];
        for k in keys().take(500) {
            let (s, overflowed) = r.route_bounded(k, &loads, 1.5).unwrap();
            assert_eq!(Some(s), r.route(k));
            assert!(!overflowed, "zero load must never overflow");
        }
        for s in 0..3 {
            r.set_active(s, false);
        }
        assert!(keys().take(100).all(|k| r.route(k) == Some(3)));
        r.set_active(3, false);
        assert_eq!(r.route(1), None);
        assert_eq!(r.route_bounded(1, &loads, 1.5), None);
    }
}
