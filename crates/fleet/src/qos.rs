//! Multi-tenant QoS: budget admission and weighted-fair surplus sharing.
//!
//! Every tenant buys a steady-state budget (requests/second). The
//! controller's contract, asserted by the fleet experiment under a 10×
//! single-tenant surge:
//!
//! * **Intra-budget traffic always admits.** A tenant inside its budget
//!   (plus a small burst allowance for Poisson jitter) is never shed at
//!   the fleet door, no matter what the other tenants do.
//! * **Surplus is shared weighted-fair.** Capacity beyond the sum of
//!   budgets refills per-tenant surplus buckets proportionally to tenant
//!   weight. A surging tenant gets its budget plus *its* surplus share
//!   and sheds the rest — it cannot draw down a neighbour's share, so
//!   misbehaviour stays contained.
//!
//! Both buckets are deterministic token buckets driven by the arrival
//! clock: admission is a pure function of the arrival sequence.

/// One tenant's contract.
#[derive(Clone, Debug)]
pub struct TenantPolicy {
    /// Tenant name (metric label).
    pub name: String,
    /// Weight of the tenant's surplus share.
    pub weight: f64,
    /// Guaranteed steady-state admission rate, requests/second.
    pub budget_rps: f64,
    /// Token capacity of each bucket — the burst absorbed without
    /// shedding (Poisson arrivals are bursty at every timescale).
    pub burst: f64,
}

/// An admission decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted within the tenant's budget.
    Admit,
    /// Admitted from the tenant's weighted surplus share.
    AdmitOverBudget,
    /// Shed: over budget and the tenant's surplus share is exhausted.
    Shed,
}

/// Per-tenant bucket state and counters.
#[derive(Clone, Debug)]
struct TenantState {
    policy: TenantPolicy,
    surplus_rps: f64,
    budget_tokens: f64,
    surplus_tokens: f64,
    last_s: f64,
    offered: u64,
    admitted: u64,
    admitted_over: u64,
    shed: u64,
}

/// The fleet-door admission controller.
#[derive(Clone, Debug)]
pub struct QosController {
    tenants: Vec<TenantState>,
}

impl QosController {
    /// Builds the controller for `tenants` against a fleet of
    /// `capacity_rps` aggregate serving rate. Capacity beyond the summed
    /// budgets becomes the weighted-fair surplus pool.
    pub fn new(tenants: Vec<TenantPolicy>, capacity_rps: f64) -> QosController {
        let budgets: f64 = tenants.iter().map(|t| t.budget_rps).sum();
        let weights: f64 = tenants.iter().map(|t| t.weight.max(0.0)).sum();
        let surplus = (capacity_rps - budgets).max(0.0);
        QosController {
            tenants: tenants
                .into_iter()
                .map(|policy| {
                    let share = if weights > 0.0 {
                        surplus * policy.weight.max(0.0) / weights
                    } else {
                        0.0
                    };
                    TenantState {
                        budget_tokens: policy.burst,
                        surplus_tokens: policy.burst,
                        surplus_rps: share,
                        last_s: 0.0,
                        offered: 0,
                        admitted: 0,
                        admitted_over: 0,
                        shed: 0,
                        policy,
                    }
                })
                .collect(),
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant's policy.
    pub fn policy(&self, tenant: usize) -> &TenantPolicy {
        &self.tenants[tenant].policy
    }

    /// The tenant's weighted surplus admission rate, requests/second.
    pub fn surplus_rps(&self, tenant: usize) -> f64 {
        self.tenants[tenant].surplus_rps
    }

    /// Admits or sheds one request from `tenant` arriving at `t_s`.
    /// Arrival times per tenant must be non-decreasing (they come off a
    /// merged arrival-ordered trace).
    pub fn admit(&mut self, tenant: usize, t_s: f64) -> Verdict {
        let s = &mut self.tenants[tenant];
        let dt = (t_s - s.last_s).max(0.0);
        s.last_s = t_s;
        s.budget_tokens = (s.budget_tokens + dt * s.policy.budget_rps).min(s.policy.burst);
        s.surplus_tokens = (s.surplus_tokens + dt * s.surplus_rps).min(s.policy.burst);
        s.offered += 1;
        if s.budget_tokens >= 1.0 {
            s.budget_tokens -= 1.0;
            s.admitted += 1;
            Verdict::Admit
        } else if s.surplus_tokens >= 1.0 {
            s.surplus_tokens -= 1.0;
            s.admitted_over += 1;
            Verdict::AdmitOverBudget
        } else {
            s.shed += 1;
            Verdict::Shed
        }
    }

    /// `(offered, admitted-in-budget, admitted-over-budget, shed)` for a
    /// tenant so far.
    pub fn counters(&self, tenant: usize) -> (u64, u64, u64, u64) {
        let s = &self.tenants[tenant];
        (s.offered, s.admitted, s.admitted_over, s.shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_tenants() -> Vec<TenantPolicy> {
        ["alpha", "bravo", "charlie"]
            .into_iter()
            .map(|name| TenantPolicy {
                name: name.into(),
                weight: 1.0,
                budget_rps: 100.0,
                burst: 10.0,
            })
            .collect()
    }

    /// A uniform arrival comb at `rate` for tenant `t`.
    fn drive(q: &mut QosController, t: usize, rate: f64, dur: f64) -> Vec<Verdict> {
        let n = (rate * dur) as usize;
        (0..n).map(|i| q.admit(t, i as f64 / rate)).collect()
    }

    #[test]
    fn intra_budget_traffic_always_admits() {
        let mut q = QosController::new(three_tenants(), 400.0);
        let verdicts = drive(&mut q, 0, 80.0, 10.0);
        assert!(verdicts.iter().all(|&v| v == Verdict::Admit));
    }

    #[test]
    fn a_surging_tenant_keeps_budget_plus_fair_share_and_sheds_the_rest() {
        // Capacity 400, budgets 3x100: surplus 100 split three ways.
        let mut q = QosController::new(three_tenants(), 400.0);
        assert!((q.surplus_rps(2) - 100.0 / 3.0).abs() < 1e-9);
        // Tenant 2 surges to 10x its budget; tenant 0 stays at 80% load.
        let dur = 10.0;
        let surge = drive(&mut q, 2, 1000.0, dur);
        let calm = drive(&mut q, 0, 80.0, dur);
        assert!(
            calm.iter().all(|&v| v == Verdict::Admit),
            "isolation broken"
        );
        let admitted = surge.iter().filter(|&&v| v != Verdict::Shed).count() as f64;
        let shed = surge.iter().filter(|&&v| v == Verdict::Shed).count();
        assert!(shed > 0, "a 10x surge must shed");
        // Admitted ~= (budget + fair surplus share) x duration (+ bursts).
        let entitled = (100.0 + 100.0 / 3.0) * dur;
        assert!(
            (admitted - entitled).abs() <= 25.0,
            "admitted {admitted}, entitled {entitled}"
        );
    }

    #[test]
    fn weights_split_the_surplus_proportionally() {
        let mut tenants = three_tenants();
        tenants[0].weight = 3.0;
        let q = QosController::new(tenants, 400.0);
        assert!((q.surplus_rps(0) - 60.0).abs() < 1e-9);
        assert!((q.surplus_rps(1) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_surplus_caps_every_tenant_at_its_budget() {
        let mut q = QosController::new(three_tenants(), 300.0);
        let v = drive(&mut q, 1, 300.0, 5.0);
        let admitted = v.iter().filter(|&&x| x != Verdict::Shed).count() as f64;
        assert!((admitted - (100.0 * 5.0 + 10.0)).abs() <= 11.0);
    }
}
