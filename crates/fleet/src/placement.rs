//! The placement optimizer: model demand → replicas per device class.
//!
//! A fleet spec names its device classes (an [`FpgaPlatform`] and how many
//! boards of it the fleet owns) and the steady-state demand per model,
//! requests/second. Placement answers "how many devices of which class
//! serve which model":
//!
//! 1. **Feasibility** — each (model, class) pair is probed by compiling
//!    the model's optimized configuration through the shared
//!    [`DeploymentCache`]: a [`FlowError`] (a Table 6.2 resource
//!    overflow, a global-memory overrun on the HBM part, an illegal plan)
//!    marks the pair infeasible, structurally, without panicking.
//! 2. **Throughput** — each feasible deployment's calibrated
//!    [`BatchLatencyModel`](fpgaccel_core::BatchLatencyModel) gives the
//!    per-device steady-state rate at the probe batch size.
//! 3. **Packing** — models are placed most-constrained-first (fewest
//!    feasible classes), each filling from its fastest feasible class
//!    down, targeting `demand × (1 + headroom)` and never exceeding the
//!    class inventory.
//!
//! The resulting [`PlacementPlan`] is a pure function of the spec, so it
//! is cached in the [`TuningDb`] under the spec's digest — a warm fleet
//! start-up reloads the plan without spending a single feasibility probe.

use crate::hash::{hash2, hash_str};
use fpgaccel_core::bitstreams::optimized_config;
use fpgaccel_core::FlowError;
use fpgaccel_device::FpgaPlatform;
use fpgaccel_serve::DeploymentCache;
use fpgaccel_tensor::models::Model;
use fpgaccel_tune::{PlacementRecord, TuningDb};

/// Batch size the feasibility probe calibrates and rates throughput at.
pub const PROBE_BATCH: usize = 16;

/// One class of identical boards in the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceClass {
    /// The FPGA platform of every board in the class.
    pub platform: FpgaPlatform,
    /// Boards of this class the fleet owns.
    pub count: usize,
}

/// Steady-state demand for one model, requests/second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelDemand {
    /// The model.
    pub model: Model,
    /// Offered steady-state rate to provision for.
    pub rate_rps: f64,
}

/// The fleet inventory and demand the optimizer places.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetSpec {
    /// Device classes, in inventory order.
    pub classes: Vec<DeviceClass>,
    /// Per-model demand, in demand order.
    pub demands: Vec<ModelDemand>,
    /// Capacity slack above demand the plan targets (0.2 = 20%).
    pub headroom: f64,
    /// Correlated failure domains (racks / power domains) the fleet's
    /// shards are striped across. Shard `s` lives in domain
    /// `dom-{s % domains}`; a domain outage takes every board in the
    /// domain dark at once. `1` models a single-site fleet with no
    /// correlated-failure isolation.
    pub domains: usize,
}

impl FleetSpec {
    /// Stable digest of the spec — the placement cache key in the tuning
    /// database. Structural: any change to classes, demands, or headroom
    /// changes the digest.
    pub fn digest(&self) -> String {
        let mut h = hash2(0xF1EE_7000, self.classes.len() as u64);
        for c in &self.classes {
            h = hash_str(h, c.platform.label());
            h = hash2(h, c.count as u64);
        }
        h = hash2(h, self.demands.len() as u64);
        for d in &self.demands {
            h = hash_str(h, d.model.name());
            h = hash2(h, d.rate_rps.to_bits());
        }
        h = hash2(h, self.headroom.to_bits());
        h = hash2(h, self.domains.max(1) as u64);
        format!("fleet-{h:016x}")
    }
}

/// Why placement failed. Both variants are structured — a model that fits
/// nowhere is an error value carrying the per-class compile failures, not
/// a panic.
#[derive(Clone, Debug)]
pub enum PlacementError {
    /// The model compiles on none of the fleet's device classes.
    NoFeasibleClass {
        /// The unplaceable model.
        model: Model,
        /// The compile failure per probed class, in inventory order.
        reasons: Vec<(FpgaPlatform, FlowError)>,
    },
    /// Every feasible class is exhausted before the model's demand is
    /// covered.
    InsufficientCapacity {
        /// The under-provisioned model.
        model: Model,
        /// Demand the spec asked for, requests/second.
        demand_rps: f64,
        /// Rate the exhausted inventory actually covers.
        placed_rps: f64,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoFeasibleClass { model, reasons } => {
                write!(f, "{} fits no device class:", model.name())?;
                for (p, e) in reasons {
                    write!(f, " [{}: {e}]", p.label())?;
                }
                Ok(())
            }
            PlacementError::InsufficientCapacity {
                model,
                demand_rps,
                placed_rps,
            } => write!(
                f,
                "inventory exhausted placing {}: demand {demand_rps:.1} rps, \
                 placed {placed_rps:.1} rps",
                model.name()
            ),
        }
    }
}

impl std::error::Error for PlacementError {}

/// Replicas of one model on one device class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Assignment {
    /// The model served.
    pub model: Model,
    /// The class serving it.
    pub platform: FpgaPlatform,
    /// Devices of the class dedicated to the model.
    pub replicas: usize,
    /// Calibrated per-device steady-state rate, requests/second.
    pub device_rate_rps: f64,
}

/// A deterministic placement of the spec's demand onto its inventory.
#[derive(Clone, Debug)]
pub struct PlacementPlan {
    /// Digest of the spec this plan solves (the tuning-database key).
    pub spec_digest: String,
    /// Replica assignments, in placement order.
    pub assignments: Vec<Assignment>,
    /// Aggregate steady-state serving rate, requests/second.
    pub total_rate_rps: f64,
    /// Feasibility probes (compile + calibration) this planning spent —
    /// zero when the plan was reloaded from the database.
    pub evaluations: usize,
    /// True when the plan came out of the tuning database instead of a
    /// cold optimization.
    pub from_cache: bool,
}

impl PlacementPlan {
    /// The persistent-record form of the plan.
    pub fn record(&self) -> PlacementRecord {
        PlacementRecord {
            replicas: self
                .assignments
                .iter()
                .map(|a| (a.model.name().into(), a.platform.label().into(), a.replicas))
                .collect(),
            total_rate_rps: self.total_rate_rps,
            evaluations: self.evaluations,
        }
    }

    /// Devices the plan occupies.
    pub fn devices_used(&self) -> usize {
        self.assignments.iter().map(|a| a.replicas).sum()
    }
}

/// One probed (model, class) pair.
struct Probe {
    platform: FpgaPlatform,
    inventory_slot: usize,
    device_rate_rps: f64,
}

/// Plans `spec` against the tuning database: a cached plan for the spec's
/// digest is reloaded verbatim (zero probes); otherwise every (model,
/// class) pair is probed through `cache`, the demand is packed
/// most-constrained-model-first, and the winning plan is inserted into
/// `db` for the next start-up.
pub fn plan_placement(
    spec: &FleetSpec,
    db: &mut TuningDb,
    cache: &mut DeploymentCache,
) -> Result<PlacementPlan, PlacementError> {
    let digest = spec.digest();
    if let Some(plan) = reload(spec, &digest, db, cache) {
        return Ok(plan);
    }

    let mut evaluations = 0usize;
    let mut remaining: Vec<usize> = spec.classes.iter().map(|c| c.count).collect();

    // Probe every (model, class) pair once; infeasible pairs keep their
    // structured compile error for the NoFeasibleClass report.
    let mut feasible: Vec<Vec<Probe>> = Vec::with_capacity(spec.demands.len());
    for d in &spec.demands {
        let mut probes = Vec::new();
        let mut reasons = Vec::new();
        for (slot, c) in spec.classes.iter().enumerate() {
            evaluations += 1;
            match cache.get_or_compile(d.model, c.platform, &optimized_config(d.model, c.platform))
            {
                Ok(dep) => {
                    let lm = cache.calibration(&dep, PROBE_BATCH);
                    probes.push(Probe {
                        platform: c.platform,
                        inventory_slot: slot,
                        device_rate_rps: PROBE_BATCH as f64 / lm.seconds(PROBE_BATCH),
                    });
                }
                Err(e) => reasons.push((c.platform, e)),
            }
        }
        if probes.is_empty() && d.rate_rps > 0.0 {
            return Err(PlacementError::NoFeasibleClass {
                model: d.model,
                reasons,
            });
        }
        probes.sort_by(|a, b| {
            b.device_rate_rps
                .total_cmp(&a.device_rate_rps)
                .then(a.inventory_slot.cmp(&b.inventory_slot))
        });
        feasible.push(probes);
    }

    // Most-constrained model first (fewest feasible classes; demand-order
    // tie-break), each filling from its fastest class down.
    let mut order: Vec<usize> = (0..spec.demands.len()).collect();
    order.sort_by_key(|&i| (feasible[i].len(), i));

    let mut assignments = Vec::new();
    for &i in &order {
        let d = &spec.demands[i];
        let target = d.rate_rps * (1.0 + spec.headroom.max(0.0));
        let mut placed = 0.0f64;
        for p in &feasible[i] {
            if placed >= target {
                break;
            }
            let free = remaining[p.inventory_slot];
            if free == 0 {
                continue;
            }
            let want = ((target - placed) / p.device_rate_rps).ceil() as usize;
            let take = want.min(free).max(1);
            remaining[p.inventory_slot] -= take;
            placed += take as f64 * p.device_rate_rps;
            assignments.push(Assignment {
                model: d.model,
                platform: p.platform,
                replicas: take,
                device_rate_rps: p.device_rate_rps,
            });
        }
        if placed < d.rate_rps {
            return Err(PlacementError::InsufficientCapacity {
                model: d.model,
                demand_rps: d.rate_rps,
                placed_rps: placed,
            });
        }
    }
    // Placement walked models constrained-first; report in demand order.
    assignments.sort_by_key(|a| {
        spec.demands
            .iter()
            .position(|d| d.model == a.model)
            .unwrap_or(usize::MAX)
    });

    let plan = PlacementPlan {
        spec_digest: digest.clone(),
        total_rate_rps: assignments
            .iter()
            .map(|a| a.replicas as f64 * a.device_rate_rps)
            .sum(),
        assignments,
        evaluations,
        from_cache: false,
    };
    db.insert_placement(digest, plan.record());
    Ok(plan)
}

/// Reconstructs a plan from a cached record, re-deriving per-device rates
/// from the (memoized) calibrations. Returns `None` when no record exists
/// or the record no longer parses against the current model/platform
/// tables — the caller then re-plans cold.
fn reload(
    spec: &FleetSpec,
    digest: &str,
    db: &TuningDb,
    cache: &mut DeploymentCache,
) -> Option<PlacementPlan> {
    let rec = db.lookup_placement(digest)?;
    let mut assignments = Vec::with_capacity(rec.replicas.len());
    for (model, platform, replicas) in &rec.replicas {
        let model = *Model::ALL.iter().find(|m| m.name() == model)?;
        let platform = FpgaPlatform::from_label(platform)?;
        let dep = cache
            .get_or_compile(model, platform, &optimized_config(model, platform))
            .ok()?;
        let lm = cache.calibration(&dep, PROBE_BATCH);
        assignments.push(Assignment {
            model,
            platform,
            replicas: *replicas,
            device_rate_rps: PROBE_BATCH as f64 / lm.seconds(PROBE_BATCH),
        });
    }
    // A cached plan must still fit the spec's inventory (the digest
    // guarantees it, but a hand-edited database must not panic the build).
    for c in &spec.classes {
        let used: usize = assignments
            .iter()
            .filter(|a| a.platform == c.platform)
            .map(|a| a.replicas)
            .sum();
        if used > c.count {
            return None;
        }
    }
    Some(PlacementPlan {
        spec_digest: digest.to_string(),
        total_rate_rps: rec.total_rate_rps,
        assignments,
        evaluations: 0,
        from_cache: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        FleetSpec {
            classes: vec![
                DeviceClass {
                    platform: FpgaPlatform::Stratix10Sx,
                    count: 6,
                },
                DeviceClass {
                    platform: FpgaPlatform::Arria10Gx,
                    count: 4,
                },
            ],
            demands: vec![
                ModelDemand {
                    model: Model::LeNet5,
                    rate_rps: 2000.0,
                },
                ModelDemand {
                    model: Model::MobileNetV1,
                    rate_rps: 40.0,
                },
            ],
            headroom: 0.2,
            domains: 1,
        }
    }

    #[test]
    fn digests_are_structural() {
        let a = spec();
        let mut b = spec();
        assert_eq!(a.digest(), b.digest());
        b.demands[0].rate_rps += 1.0;
        assert_ne!(a.digest(), b.digest());
        let mut c = spec();
        c.classes[1].count += 1;
        assert_ne!(a.digest(), c.digest());
        let mut d = spec();
        d.domains = 4;
        assert_ne!(a.digest(), d.digest(), "domain topology is structural");
    }

    #[test]
    fn cold_plan_meets_demand_and_caches() {
        let mut db = TuningDb::new();
        let mut cache = DeploymentCache::new();
        let plan = plan_placement(&spec(), &mut db, &mut cache).unwrap();
        assert!(!plan.from_cache);
        assert!(plan.evaluations > 0);
        for d in spec().demands {
            let placed: f64 = plan
                .assignments
                .iter()
                .filter(|a| a.model == d.model)
                .map(|a| a.replicas as f64 * a.device_rate_rps)
                .sum();
            assert!(placed >= d.rate_rps, "{}: {placed}", d.model.name());
        }
        assert!(plan.devices_used() <= 10);
        assert_eq!(db.placements_len(), 1);

        // Warm: reloaded from the record, zero probes.
        let warm = plan_placement(&spec(), &mut db, &mut DeploymentCache::new()).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.evaluations, 0);
        assert_eq!(
            warm.assignments.len(),
            plan.assignments.len(),
            "reloaded plan must mirror the cold one"
        );
        for (w, c) in warm.assignments.iter().zip(&plan.assignments) {
            assert_eq!(
                (w.model, w.platform, w.replicas),
                (c.model, c.platform, c.replicas)
            );
        }
    }

    #[test]
    fn model_too_large_for_every_class_is_a_structured_error() {
        // ResNet-34 exceeds the Arria 10's BRAM inventory (Table 6.2), so
        // an A10-only fleet must report NoFeasibleClass — with the compile
        // failure attached — rather than panicking.
        let spec = FleetSpec {
            classes: vec![DeviceClass {
                platform: FpgaPlatform::Arria10Gx,
                count: 8,
            }],
            demands: vec![ModelDemand {
                model: Model::ResNet34,
                rate_rps: 10.0,
            }],
            headroom: 0.0,
            domains: 1,
        };
        let err =
            plan_placement(&spec, &mut TuningDb::new(), &mut DeploymentCache::new()).unwrap_err();
        match err {
            PlacementError::NoFeasibleClass { model, reasons } => {
                assert_eq!(model, Model::ResNet34);
                assert_eq!(reasons.len(), 1);
                assert_eq!(reasons[0].0, FpgaPlatform::Arria10Gx);
            }
            other => panic!("expected NoFeasibleClass, got {other}"),
        }
    }

    #[test]
    fn exhausted_inventory_is_insufficient_capacity() {
        let spec = FleetSpec {
            classes: vec![DeviceClass {
                platform: FpgaPlatform::Stratix10Sx,
                count: 1,
            }],
            demands: vec![ModelDemand {
                model: Model::MobileNetV1,
                rate_rps: 1e6,
            }],
            headroom: 0.0,
            domains: 1,
        };
        let err =
            plan_placement(&spec, &mut TuningDb::new(), &mut DeploymentCache::new()).unwrap_err();
        assert!(matches!(
            err,
            PlacementError::InsufficientCapacity {
                model: Model::MobileNetV1,
                ..
            }
        ));
    }
}
