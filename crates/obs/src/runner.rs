//! The standardized bench workload matrix behind `repro bench`.
//!
//! [`collect`] runs three fixed stages and flattens everything into one
//! [`BenchRecord`]:
//!
//! 1. **Compile** — every (model, platform) configuration is compiled
//!    through [`Flow`] with an enabled tracer; kernel count, synthesized
//!    fmax and compile-phase span count land in the record.
//! 2. **Pipeline** — the same configurations are compiled both staged
//!    (layer-by-layer through global memory) and as a streaming dataflow
//!    pipeline, and a fixed batch is simulated through each; per-image
//!    seconds and the pipelined/staged speedup land in the record.
//! 3. **Serve** — the three-device co-serving pool from the `serve`
//!    experiment is driven with seeded open-loop Poisson load at 1.0x and
//!    2.0x of pool capacity; p50/p99, shed rate and achieved throughput
//!    land in the record.
//!
//! Every number is simulated (deterministic clocks, seeded load), so two
//! [`collect`] calls on the same source tree produce byte-identical
//! records. Wall-clock profiler counters deliberately stay out — they are
//! exported through the metrics registry instead.

use crate::record::{BenchRecord, Direction};
use fpgaccel_core::bitstreams::{mobilenet_tile, optimized_config};
use fpgaccel_core::{tune_precision, Flow, OptimizationConfig, QuantSpec, TilingPreset};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_fault::{FaultEvent, FaultKind, FaultPlan};
use fpgaccel_fleet::{
    DeviceClass, Fleet, FleetConfig, FleetSpec, ModelDemand, TenantLoad, TenantPolicy,
};
use fpgaccel_serve::loadgen::{open_loop_poisson, with_deadline};
use fpgaccel_serve::{
    AdmissionPolicy, BatchPolicy, DeploymentCache, DevicePool, Request, ServeConfig, Server,
};
use fpgaccel_tensor::models::Model;
use fpgaccel_tensor::quant::{diff_outputs, QuantPrecision};
use fpgaccel_trace::Tracer;
use fpgaccel_tune::TuningDb;

/// Workload identifier stamped into the record; bump when the matrix
/// itself (configurations, load points, batch size) changes.
/// `core-v2` added the fleet stage (router latency, per-tenant sheds);
/// `core-v3` added the quant stage (per-rung error ratios and DSP
/// pressure, mixed-precision search results); `core-v4` added the
/// resilience stage (hedge rate, breaker opens, failover replays, heal
/// restore latency through a seeded domain outage).
pub const WORKLOAD: &str = "core-v4";

/// Same seed and trace shape as the `serve` experiment, so the bench
/// record tracks the serving stack the reports describe.
const SEED: u64 = 0x5E21;
const TRACE_S: f64 = 0.4;
const LENET_DEADLINE_S: f64 = 0.05;
const MOBILENET_DEADLINE_S: f64 = 4.0;
const SERVED: [Model; 2] = [Model::LeNet5, Model::MobileNetV1];

/// Images per simulated batch in the pipeline stage (smaller than the
/// `pipeline` experiment's 32: the bench runs this matrix twice for the
/// determinism probe).
const BATCH: usize = 16;

/// The evaluated (model, platform) configurations — the same four the
/// `pipeline` experiment reports on.
const CONFIGS: [(Model, FpgaPlatform); 4] = [
    (Model::LeNet5, FpgaPlatform::Stratix10Sx),
    (Model::MobileNetV1, FpgaPlatform::Stratix10Sx),
    (Model::MobileNetV1, FpgaPlatform::Stratix10Mx),
    (Model::MobileNetV1, FpgaPlatform::Arria10Gx),
];

/// The staged (layer-by-layer) baseline configuration.
fn staged_config(model: Model, platform: FpgaPlatform) -> OptimizationConfig {
    match model {
        Model::LeNet5 => OptimizationConfig::folded(TilingPreset::Naive),
        _ => optimized_config(model, platform),
    }
}

/// The streaming dataflow configuration (default planner knobs — the
/// bench tracks the un-tuned pipeline so it has no tuner dependency).
fn dataflow_config(model: Model, platform: FpgaPlatform) -> OptimizationConfig {
    match model {
        Model::LeNet5 => OptimizationConfig::dataflow(TilingPreset::Naive),
        _ => OptimizationConfig::dataflow(TilingPreset::MobileNet {
            one_by_one: mobilenet_tile(platform),
        }),
    }
}

/// The three-device pool from the `serve` experiment: LeNet everywhere,
/// MobileNet on the two Stratix 10 parts.
fn build_pool() -> DevicePool {
    let mut pool = DevicePool::new();
    for p in [
        FpgaPlatform::Stratix10Sx,
        FpgaPlatform::Stratix10Mx,
        FpgaPlatform::Arria10Gx,
    ] {
        let d = pool.add_device(p);
        pool.deploy(d, Model::LeNet5, &optimized_config(Model::LeNet5, p))
            .expect("LeNet deploys everywhere");
        if p != FpgaPlatform::Arria10Gx {
            pool.deploy(
                d,
                Model::MobileNetV1,
                &optimized_config(Model::MobileNetV1, p),
            )
            .expect("MobileNet deploys on Stratix 10");
        }
    }
    pool
}

/// Steady-state pool capacity for one model, requests/second, with each
/// device's time split evenly across the models it serves.
fn model_capacity_rps(pool: &DevicePool, model: Model) -> f64 {
    pool.devices()
        .iter()
        .filter_map(|d| {
            let lm = d.latency_model(model)?;
            let sharing = SERVED
                .iter()
                .filter(|&&m| d.latency_model(m).is_some())
                .count();
            Some(1.0 / (sharing as f64 * lm.per_image_s))
        })
        .sum()
}

/// One seeded Poisson stream per model at `mult` times that model's
/// capacity, merged with unique ids and per-model deadlines.
fn mixed_trace(pool: &DevicePool, mult: f64) -> Vec<Request> {
    let mut trace = Vec::new();
    for (slot, (&model, deadline)) in SERVED
        .iter()
        .zip([LENET_DEADLINE_S, MOBILENET_DEADLINE_S])
        .enumerate()
    {
        let rate = mult * model_capacity_rps(pool, model);
        let n = ((rate * TRACE_S).ceil() as usize).max(1);
        let mut stream = with_deadline(
            open_loop_poisson(SEED ^ slot as u64, rate, n, &[model]),
            deadline,
        );
        for r in &mut stream {
            r.id = r.id * SERVED.len() as u64 + slot as u64;
        }
        trace.extend(stream);
    }
    trace
}

/// Runs the full workload matrix and returns the bench record.
pub fn collect() -> BenchRecord {
    let mut rec = BenchRecord {
        workload: WORKLOAD.into(),
        ..BenchRecord::default()
    };

    // Stages 1+2 — compile and pipeline metrics per configuration.
    for &(model, platform) in &CONFIGS {
        let key = format!("{}.{}", model.name(), platform.label());

        let tracer = Tracer::enabled();
        let staged = Flow::new(model, platform)
            .with_tracer(&tracer)
            .compile(&staged_config(model, platform))
            .expect("staged configuration compiles");
        // Structural counts are Exact: a changed kernel count or compile
        // phase shape is a pipeline change, not noise.
        rec.push(
            &format!("compile.{key}.kernels"),
            staged.bitstream.kernels.len() as f64,
            "count",
            Direction::Exact,
            0.0,
        );
        rec.push(
            &format!("compile.{key}.fmax_mhz"),
            staged.bitstream.fmax_mhz,
            "mhz",
            Direction::Higher,
            0.02,
        );
        rec.push(
            &format!("compile.{key}.phase_events"),
            tracer.span_count() as f64,
            "count",
            Direction::Exact,
            0.0,
        );

        let pipelined = Flow::new(model, platform)
            .compile(&dataflow_config(model, platform))
            .expect("dataflow configuration compiles");
        let s = staged.simulate_batch(BATCH);
        let p = pipelined.simulate_batch(BATCH);
        rec.push(
            &format!("pipeline.{key}.staged_seconds_per_image"),
            s.seconds / BATCH as f64,
            "s",
            Direction::Lower,
            0.02,
        );
        rec.push(
            &format!("pipeline.{key}.pipelined_seconds_per_image"),
            p.seconds / BATCH as f64,
            "s",
            Direction::Lower,
            0.02,
        );
        rec.push(
            &format!("pipeline.{key}.speedup"),
            s.seconds / p.seconds,
            "ratio",
            Direction::Higher,
            0.02,
        );
    }

    // Stage 3 — the serving pool under seeded load at two operating
    // points: nominal capacity and 2x overload (the shedding regime).
    let pool = build_pool();
    for (tag, mult) in [("load1x", 1.0), ("load2x", 2.0)] {
        let trace = mixed_trace(&pool, mult);
        let r = Server::new(
            build_pool(),
            ServeConfig {
                batch: BatchPolicy {
                    max_batch: 8,
                    max_wait_s: 2e-3,
                },
                admission: AdmissionPolicy {
                    queue_capacity: 64,
                    default_deadline_s: None,
                },
                fault: Default::default(),
                brownout: Default::default(),
            },
        )
        .run_open_loop(trace);
        let key = format!("serve.{tag}");
        rec.push(
            &format!("{key}.p50_ms"),
            r.metrics.latency.quantile(0.50) * 1e3,
            "ms",
            Direction::Lower,
            0.05,
        );
        rec.push(
            &format!("{key}.p99_ms"),
            r.metrics.latency.quantile(0.99) * 1e3,
            "ms",
            Direction::Lower,
            0.05,
        );
        rec.push(
            &format!("{key}.shed_rate"),
            r.metrics.shed_rate(),
            "ratio",
            Direction::Lower,
            0.10,
        );
        rec.push(
            &format!("{key}.throughput_rps"),
            r.metrics.throughput_rps(),
            "rps",
            Direction::Higher,
            0.05,
        );
    }

    // Stage 4 — the sharded fleet under two-tenant QoS at 1.0x and 2.0x
    // of the bursty tenant's nominal point: router latency quantiles and
    // per-tenant shed rates track the fleet serving stack.
    fleet_stage(&mut rec);

    // Stage 5 — quantized inference: per-rung differential error headroom
    // and DSP pressure on LeNet, plus the mixed-precision search result.
    quant_stage(&mut rec);

    // Stage 6 — fleet resilience through a seeded domain outage: hedge
    // rate, breaker opens, failover replays and heal restore latency.
    resilience_stage(&mut rec);

    rec
}

/// Quantized LeNet on the S10SX at every precision rung: the worst
/// per-layer error as a fraction of its tolerance (the differential
/// harness' headroom — a regression here means the quantizer or the
/// tolerance model moved) and the modeled DSP pressure; then the greedy
/// mixed-precision search's DSP count and demotion tally.
fn quant_stage(rec: &mut BenchRecord) {
    let platform = FpgaPlatform::Stratix10Sx;
    for precision in QuantPrecision::ALL {
        let spec = QuantSpec::new(precision);
        let flow = Flow::new(Model::LeNet5, platform);
        let d = flow
            .compile(&OptimizationConfig::folded_base().with_quant(spec))
            .expect("quantized LeNet compiles on the S10SX");
        let probe = &flow.calibration_batch(&spec)[0];
        let got = d
            .quantized()
            .expect("deployment carries its quantization")
            .execute_all(probe)
            .expect("quantized host execution succeeds");
        let reference = d.graph.execute_all(probe);
        let q = d.quant.as_ref().expect("quantized deployment");
        let report = diff_outputs(&d.graph, &q.calib, q.precision, &got, &reference);
        let w = report.worst().expect("LeNet has layers");
        let key = format!("quant.lenet5.{}", precision.name());
        rec.push(
            &format!("{key}.worst_err_ratio"),
            f64::from(w.err / w.tol.max(f32::MIN_POSITIVE)),
            "ratio",
            Direction::Lower,
            0.25,
        );
        let (_, _, dsp) = d.bitstream.utilization;
        rec.push(
            &format!("{key}.dsp_pct"),
            dsp,
            "pct",
            Direction::Lower,
            0.02,
        );
    }
    let flow = Flow::new(Model::LeNet5, platform);
    let mut db = TuningDb::new();
    let mixed = tune_precision(
        &flow,
        &QuantSpec::new(QuantPrecision::Int8),
        0.05,
        &mut db,
        &Tracer::disabled(),
        &fpgaccel_trace::Registry::default(),
    )
    .expect("mixed-precision search succeeds on LeNet");
    rec.push(
        "quant.lenet5.mixed.dsps",
        mixed.record.dsps as f64,
        "count",
        Direction::Lower,
        0.0,
    );
    rec.push(
        "quant.lenet5.mixed.demoted",
        mixed.record.demoted() as f64,
        "count",
        Direction::Exact,
        0.0,
    );
}

/// One small two-shard LeNet fleet per load point; the `bursty` tenant
/// doubles its offered rate at 2x while `steady` stays fixed, so the
/// shed-rate series shows QoS isolation (steady sheds nothing at either
/// point).
fn fleet_stage(rec: &mut BenchRecord) {
    let rate = lenet_rate();
    let spec = FleetSpec {
        classes: vec![DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: 6,
        }],
        demands: vec![ModelDemand {
            model: Model::LeNet5,
            rate_rps: rate * 3.2,
        }],
        headroom: 0.25,
        domains: 1,
    };
    let mut db = TuningDb::new();
    for (tag, mult) in [("load1x", 1.0), ("load2x", 2.0)] {
        let fleet = Fleet::build(
            &spec,
            FleetConfig {
                shards: 2,
                serve: ServeConfig {
                    admission: AdmissionPolicy {
                        queue_capacity: 1 << 14,
                        default_deadline_s: None,
                    },
                    ..ServeConfig::default()
                },
                ..FleetConfig::default()
            },
            &mut db,
        )
        .expect("the LeNet fleet places");
        let cap = fleet.capacity_rps();
        let tenant = |name: &str, budget: f64, offered: f64| TenantLoad {
            policy: TenantPolicy {
                name: name.into(),
                weight: 1.0,
                budget_rps: budget,
                burst: 20.0,
            },
            offered: vec![(Model::LeNet5, offered)],
        };
        let r = fleet.run(
            &[
                tenant("steady", 0.45 * cap, 0.30 * cap),
                tenant("bursty", 0.20 * cap, mult * 0.5 * cap),
            ],
            0.2,
        );
        let key = format!("fleet.{tag}");
        rec.push(
            &format!("{key}.router_p50_ms"),
            r.latency.quantile(0.50) * 1e3,
            "ms",
            Direction::Lower,
            0.05,
        );
        rec.push(
            &format!("{key}.router_p99_ms"),
            r.latency.quantile(0.99) * 1e3,
            "ms",
            Direction::Lower,
            0.05,
        );
        rec.push(
            &format!("{key}.overflow_ratio"),
            r.overflowed as f64 / r.routed.max(1) as f64,
            "ratio",
            Direction::Lower,
            0.25,
        );
        for t in &r.tenants {
            rec.push(
                &format!("{key}.shed_rate.{}", t.name),
                (t.shed_fleet + t.shed_shard) as f64 / t.offered.max(1) as f64,
                "ratio",
                Direction::Lower,
                0.10,
            );
        }
    }
}

/// Calibrated single-board LeNet rate on the Stratix 10 SX — the demand
/// unit for both fleet stages.
fn lenet_rate() -> f64 {
    let mut cache = DeploymentCache::new();
    let p = FpgaPlatform::Stratix10Sx;
    let d = cache
        .get_or_compile(Model::LeNet5, p, &optimized_config(Model::LeNet5, p))
        .expect("LeNet compiles on Stratix 10 SX");
    let lm = cache.calibration(&d, 16);
    16.0 / lm.seconds(16)
}

/// The same two-shard LeNet fleet, striped over two failure domains and
/// driven through a seeded domain outage: the record tracks how much of
/// the routed traffic the resilience machinery duplicated (hedge rate),
/// the failover replays of the dead shard's in-flight work, the breaker
/// open count (exactly one — a flapping breaker is a regression) and the
/// detection-to-restore latency of the self-healing re-placement.
fn resilience_stage(rec: &mut BenchRecord) {
    let rate = lenet_rate();
    let spec = FleetSpec {
        classes: vec![DeviceClass {
            platform: FpgaPlatform::Stratix10Sx,
            count: 6,
        }],
        demands: vec![ModelDemand {
            model: Model::LeNet5,
            rate_rps: rate * 2.2,
        }],
        headroom: 0.25,
        domains: 2,
    };
    let mut db = TuningDb::new();
    let mut fleet = Fleet::build(
        &spec,
        FleetConfig {
            shards: 2,
            serve: ServeConfig {
                admission: AdmissionPolicy {
                    queue_capacity: 1 << 14,
                    default_deadline_s: None,
                },
                ..ServeConfig::default()
            },
            ..FleetConfig::default()
        },
        &mut db,
    )
    .expect("the domained LeNet fleet places");
    fleet.arm(FaultPlan::new(
        0x0B5_0DD,
        vec![FaultEvent {
            at_s: 0.08,
            target: "dom-0".into(),
            kind: FaultKind::DomainOutage,
        }],
    ));
    let cap = fleet.capacity_rps();
    let tenant = |name: &str, budget: f64, offered: f64| TenantLoad {
        policy: TenantPolicy {
            name: name.into(),
            weight: 1.0,
            budget_rps: budget,
            burst: 20.0,
        },
        offered: vec![(Model::LeNet5, offered)],
    };
    let r = fleet.run(
        &[
            tenant("steady", 0.45 * cap, 0.30 * cap),
            tenant("bursty", 0.20 * cap, 0.5 * cap),
        ],
        0.25,
    );
    rec.push(
        "resilience.outage.hedge_rate",
        r.hedges as f64 / r.routed.max(1) as f64,
        "ratio",
        Direction::Lower,
        0.25,
    );
    rec.push(
        "resilience.outage.replays",
        r.replays as f64,
        "count",
        Direction::Lower,
        0.25,
    );
    rec.push(
        "resilience.outage.breaker_opens",
        r.breaker_transitions_to("open") as f64,
        "count",
        Direction::Exact,
        0.0,
    );
    let heal = r.heals.first().expect("the outage triggers a heal");
    rec.push(
        "resilience.outage.heal_restore_s",
        heal.restore_s - heal.t_s,
        "s",
        Direction::Lower,
        0.10,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_covered_and_every_value_is_finite() {
        let rec = collect();
        // 4 configs x (3 compile + 3 pipeline) + 2 serve load points x 4
        // + 2 fleet load points x 5 + 3 quant rungs x 2 + 2 mixed
        // + 4 resilience.
        assert_eq!(rec.metrics.len(), 4 * 6 + 2 * 4 + 2 * 5 + 3 * 2 + 2 + 4);
        for m in &rec.metrics {
            assert!(m.value.is_finite(), "{} is not finite", m.id);
        }
        for &(model, platform) in &CONFIGS {
            let sp = rec
                .get(&format!(
                    "pipeline.{}.{}.speedup",
                    model.name(),
                    platform.label()
                ))
                .expect("speedup recorded");
            assert!(sp.value > 1.0, "pipelined must beat staged: {}", sp.value);
        }
        // Poisson arrivals at exact capacity already queue and shed a
        // little; 2x overload must shed much more.
        let shed1 = rec.get("serve.load1x.shed_rate").unwrap().value;
        let shed2 = rec.get("serve.load2x.shed_rate").unwrap().value;
        assert!(shed1 < 0.2, "1.0x load shed {shed1}");
        assert!(shed2 > 0.2, "2.0x overload shed {shed2}");
        assert!(
            shed2 > 2.0 * shed1,
            "overload must shed more: {shed1} vs {shed2}"
        );
        // QoS isolation in the fleet stage: the steady tenant never
        // sheds, the bursty one sheds more when it doubles its load.
        for tag in ["load1x", "load2x"] {
            let steady = rec.get(&format!("fleet.{tag}.shed_rate.steady")).unwrap();
            assert_eq!(steady.value, 0.0, "steady tenant shed at {tag}");
        }
        let b1 = rec.get("fleet.load1x.shed_rate.bursty").unwrap().value;
        let b2 = rec.get("fleet.load2x.shed_rate.bursty").unwrap().value;
        assert!(b2 > b1, "doubled burst must shed more: {b1} vs {b2}");
        // Every quant rung keeps differential headroom and the mixed
        // search beats the all-f32 DSP count it started from.
        for rung in ["fp16", "int16", "int8"] {
            let r = rec
                .get(&format!("quant.lenet5.{rung}.worst_err_ratio"))
                .unwrap()
                .value;
            assert!((0.0..1.0).contains(&r), "{rung} err ratio {r}");
        }
        assert!(rec.get("quant.lenet5.mixed.dsps").unwrap().value > 0.0);
        // The resilience stage's outage must open the breaker exactly
        // once, duplicate some traffic, and heal in finite time.
        assert_eq!(
            rec.get("resilience.outage.breaker_opens").unwrap().value,
            1.0
        );
        assert!(rec.get("resilience.outage.hedge_rate").unwrap().value > 0.0);
        assert!(rec.get("resilience.outage.replays").unwrap().value >= 1.0);
        let restore = rec.get("resilience.outage.heal_restore_s").unwrap().value;
        assert!(
            restore > 0.0 && restore.is_finite(),
            "heal restore latency {restore}"
        );
    }

    #[test]
    fn collect_is_byte_identical_across_runs() {
        assert_eq!(collect().to_json(), collect().to_json());
    }
}
