//! The schema-versioned bench trajectory record (`BENCH_core.json`).
//!
//! A record is a flat list of named scalar metrics produced by one run of
//! the standardized bench workload matrix ([`crate::runner`]). Every
//! metric carries its own comparison semantics — the direction in which
//! "better" lies and a relative tolerance band — so the comparator
//! ([`crate::compare`]) needs no out-of-band configuration: the committed
//! baseline is self-describing.
//!
//! Everything that lands in a record is **deterministic** (simulated
//! clocks, tracer phase ticks, seeded load), so regenerating the record
//! on the same source tree reproduces it byte for byte; wall-clock
//! profiler numbers are deliberately excluded (they go to the metrics
//! registry instead — see `docs/OBSERVABILITY.md`).

use fpgaccel_trace::json::Json;

/// Schema version stamped into (and required of) every record.
pub const SCHEMA_VERSION: u64 = 1;

/// Which direction of change in a metric is an improvement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (throughput, speedup, fmax).
    Higher,
    /// Smaller is better (latency, sheds, phase ticks).
    Lower,
    /// Any deviation beyond the tolerance is a regression (structural
    /// counts such as kernels per deployment).
    Exact,
}

impl Direction {
    /// Serialized form.
    pub fn label(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
            Direction::Exact => "exact",
        }
    }

    /// Parses the serialized form.
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            "exact" => Some(Direction::Exact),
            _ => None,
        }
    }
}

/// One named scalar with its comparison semantics.
#[derive(Clone, Debug)]
pub struct BenchMetric {
    /// Dotted identifier, e.g. `pipeline.LeNet-5.S10SX.speedup`.
    pub id: String,
    /// The measured value (always finite).
    pub value: f64,
    /// Unit label, e.g. `ms`, `mhz`, `ratio`, `count`.
    pub unit: String,
    /// Which way "better" lies.
    pub direction: Direction,
    /// Relative tolerance band: changes within `±tolerance` of the
    /// baseline are noise, not verdicts.
    pub tolerance: f64,
}

/// One run's worth of bench metrics.
#[derive(Clone, Debug, Default)]
pub struct BenchRecord {
    /// Workload identifier (bumped when the matrix itself changes).
    pub workload: String,
    /// The metrics, in collection order.
    pub metrics: Vec<BenchMetric>,
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite f64 deterministically (shortest round-trip form; a
/// non-finite value would poison the artifact, so it becomes 0).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl BenchRecord {
    /// Pushes one metric.
    pub fn push(&mut self, id: &str, value: f64, unit: &str, direction: Direction, tolerance: f64) {
        self.metrics.push(BenchMetric {
            id: id.to_string(),
            value,
            unit: unit.to_string(),
            direction,
            tolerance,
        });
    }

    /// Looks up a metric by id.
    pub fn get(&self, id: &str) -> Option<&BenchMetric> {
        self.metrics.iter().find(|m| m.id == id)
    }

    /// Renders the schema-versioned JSON artifact. Byte-identical across
    /// reruns of the same source tree.
    pub fn to_json(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|m| {
                format!(
                    "    {{\"id\": {}, \"value\": {}, \"unit\": {}, \"direction\": {}, \
                     \"tolerance\": {}}}",
                    json_str(&m.id),
                    json_num(m.value),
                    json_str(&m.unit),
                    json_str(m.direction.label()),
                    json_num(m.tolerance)
                )
            })
            .collect();
        format!(
            "{{\n  \"schema_version\": {},\n  \"workload\": {},\n  \"metrics\": [\n{}\n  ]\n}}\n",
            SCHEMA_VERSION,
            json_str(&self.workload),
            metrics.join(",\n")
        )
    }

    /// Parses a record, rejecting unknown schema versions (the comparator
    /// must never silently misread a future format).
    pub fn parse(text: &str) -> Result<BenchRecord, String> {
        let j = Json::parse(text).map_err(|e| format!("record is not valid JSON: {e}"))?;
        let version = j
            .get("schema_version")
            .and_then(|v| v.as_f64())
            .ok_or("record has no schema_version")?;
        if version != SCHEMA_VERSION as f64 {
            return Err(format!(
                "unsupported schema_version {version} (supported: {SCHEMA_VERSION})"
            ));
        }
        let workload = j
            .get("workload")
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or("record has no workload")?;
        let mut metrics = Vec::new();
        for m in j
            .get("metrics")
            .and_then(|v| v.as_array())
            .ok_or("record has no metrics array")?
        {
            let field = |k: &str| m.get(k).and_then(|v| v.as_f64());
            let text = |k: &str| m.get(k).and_then(|v| v.as_str().map(str::to_string));
            metrics.push(BenchMetric {
                id: text("id").ok_or("metric missing id")?,
                value: field("value").ok_or("metric missing value")?,
                unit: text("unit").ok_or("metric missing unit")?,
                direction: text("direction")
                    .as_deref()
                    .and_then(Direction::parse)
                    .ok_or("metric missing direction")?,
                tolerance: field("tolerance").ok_or("metric missing tolerance")?,
            });
        }
        Ok(BenchRecord { workload, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchRecord {
        let mut r = BenchRecord {
            workload: "core-v1".into(),
            ..BenchRecord::default()
        };
        r.push(
            "pipeline.LeNet-5.S10SX.speedup",
            2.5,
            "ratio",
            Direction::Higher,
            0.02,
        );
        r.push("serve.load1x.p99_ms", 12.25, "ms", Direction::Lower, 0.05);
        r.push(
            "compile.LeNet-5.S10SX.kernels",
            7.0,
            "count",
            Direction::Exact,
            0.0,
        );
        r
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = sample();
        let text = r.to_json();
        let back = BenchRecord::parse(&text).unwrap();
        assert_eq!(back.workload, "core-v1");
        assert_eq!(back.metrics.len(), 3);
        let m = back.get("serve.load1x.p99_ms").unwrap();
        assert_eq!(m.value, 12.25);
        assert_eq!(m.direction, Direction::Lower);
        assert_eq!(m.tolerance, 0.05);
        // Serialization is a fixed point: render → parse → render.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn unknown_schema_versions_are_rejected() {
        let text = sample()
            .to_json()
            .replace("\"schema_version\": 1", "\"schema_version\": 99");
        let err = BenchRecord::parse(&text).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
    }

    #[test]
    fn malformed_records_error_instead_of_panicking() {
        assert!(BenchRecord::parse("not json").is_err());
        assert!(BenchRecord::parse("{\"schema_version\": 1}").is_err());
    }
}
