//! Continuous performance observability: the bench trajectory recorder
//! and baseline comparator behind `repro bench`.
//!
//! The crate answers one question — *did this change make the stack
//! slower?* — with three pieces:
//!
//! - [`runner::collect`] runs a standardized, fully deterministic
//!   workload matrix (compile, staged-vs-pipelined simulation, serving
//!   under seeded load) and flattens it into a [`BenchRecord`];
//! - [`record`] defines the schema-versioned `BENCH_core.json` artifact,
//!   where every metric carries its own direction-of-better and relative
//!   tolerance band, making the committed baseline self-describing;
//! - [`compare`] diffs a fresh record against the committed baseline and
//!   produces a structured [`BenchVerdict`] (pass / regressed /
//!   improved per metric, coverage loss fails).
//!
//! The hot-path profiler, SLO burn-rate monitor and anomaly flight
//! recorder — the *runtime* half of the observability story — live in
//! `fpgaccel-trace` and `fpgaccel-serve`; see `docs/OBSERVABILITY.md`
//! for the full map.

pub mod compare;
pub mod record;
pub mod runner;

pub use compare::{compare, BenchVerdict, DeltaStatus, MetricDelta};
pub use record::{BenchMetric, BenchRecord, Direction, SCHEMA_VERSION};
pub use runner::{collect, WORKLOAD};
