//! The baseline comparator: current bench record vs the committed one,
//! with per-metric tolerance bands and a structured verdict.
//!
//! Each metric is judged by *its own* direction and tolerance (carried in
//! the record, so the baseline is self-describing): a change beyond the
//! band in the worse direction is a regression, beyond it in the better
//! direction an improvement, within it noise. The verdict is machine-
//! readable JSON for CI and a compact table for humans; missing metrics
//! (present in the baseline, absent now) fail the run — silently dropping
//! coverage must not read as "still fast".

use crate::record::{json_num, json_str, BenchRecord, Direction};

/// Verdict for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaStatus {
    /// Within the tolerance band.
    Pass,
    /// Beyond the band in the worse direction.
    Regressed,
    /// Beyond the band in the better direction.
    Improved,
}

impl DeltaStatus {
    /// Serialized form.
    pub fn label(self) -> &'static str {
        match self {
            DeltaStatus::Pass => "pass",
            DeltaStatus::Regressed => "regressed",
            DeltaStatus::Improved => "improved",
        }
    }
}

/// One metric's baseline-vs-current comparison.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Metric id.
    pub id: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `(current − baseline) / max(|baseline|, ε)`.
    pub rel_change: f64,
    /// The band the change was judged against.
    pub tolerance: f64,
    /// The verdict.
    pub status: DeltaStatus,
}

/// The full comparison outcome.
#[derive(Clone, Debug, Default)]
pub struct BenchVerdict {
    /// Per-metric deltas, in baseline order.
    pub deltas: Vec<MetricDelta>,
    /// Baseline metrics absent from the current record (coverage loss —
    /// fails the verdict).
    pub missing: Vec<String>,
    /// Current metrics absent from the baseline (new coverage —
    /// informational).
    pub added: Vec<String>,
}

impl BenchVerdict {
    /// Regressions, in baseline order.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.status == DeltaStatus::Regressed)
            .collect()
    }

    /// Improvements, in baseline order.
    pub fn improvements(&self) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.status == DeltaStatus::Improved)
            .collect()
    }

    /// Overall verdict: no regressions and no coverage loss.
    pub fn pass(&self) -> bool {
        self.missing.is_empty() && self.regressions().is_empty()
    }

    /// Machine-readable verdict for CI (`jq '.pass'`).
    pub fn to_json(&self) -> String {
        let deltas: Vec<String> = self
            .deltas
            .iter()
            .map(|d| {
                format!(
                    "    {{\"id\": {}, \"baseline\": {}, \"current\": {}, \"rel_change\": {}, \
                     \"tolerance\": {}, \"status\": {}}}",
                    json_str(&d.id),
                    json_num(d.baseline),
                    json_num(d.current),
                    json_num(d.rel_change),
                    json_num(d.tolerance),
                    json_str(d.status.label())
                )
            })
            .collect();
        let names = |v: &[String]| v.iter().map(|s| json_str(s)).collect::<Vec<_>>().join(", ");
        format!(
            "{{\n  \"schema_version\": 1,\n  \"pass\": {},\n  \"regressions\": {},\n  \
             \"improvements\": {},\n  \"missing\": [{}],\n  \"added\": [{}],\n  \
             \"deltas\": [\n{}\n  ]\n}}\n",
            self.pass(),
            self.regressions().len(),
            self.improvements().len(),
            names(&self.missing),
            names(&self.added),
            deltas.join(",\n")
        )
    }
}

/// Compares `current` against `baseline`, metric by metric.
pub fn compare(baseline: &BenchRecord, current: &BenchRecord) -> BenchVerdict {
    let mut verdict = BenchVerdict::default();
    for b in &baseline.metrics {
        let Some(c) = current.get(&b.id) else {
            verdict.missing.push(b.id.clone());
            continue;
        };
        let rel = (c.value - b.value) / b.value.abs().max(1e-12);
        // The *baseline's* direction and tolerance judge the change, so a
        // perturbed current record cannot vote on its own verdict.
        let status = match b.direction {
            _ if rel.abs() <= b.tolerance => DeltaStatus::Pass,
            Direction::Exact => DeltaStatus::Regressed,
            Direction::Higher if rel < 0.0 => DeltaStatus::Regressed,
            Direction::Lower if rel > 0.0 => DeltaStatus::Regressed,
            _ => DeltaStatus::Improved,
        };
        verdict.deltas.push(MetricDelta {
            id: b.id.clone(),
            baseline: b.value,
            current: c.value,
            rel_change: rel,
            tolerance: b.tolerance,
            status,
        });
    }
    for c in &current.metrics {
        if baseline.get(&c.id).is_none() {
            verdict.added.push(c.id.clone());
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(entries: &[(&str, f64, Direction, f64)]) -> BenchRecord {
        let mut r = BenchRecord {
            workload: "core-v1".into(),
            ..BenchRecord::default()
        };
        for &(id, v, dir, tol) in entries {
            r.push(id, v, "x", dir, tol);
        }
        r
    }

    #[test]
    fn identical_records_pass_with_zero_deltas() {
        let base = record(&[
            ("a.speedup", 2.0, Direction::Higher, 0.02),
            ("b.p99", 10.0, Direction::Lower, 0.05),
        ]);
        let v = compare(&base, &base.clone());
        assert!(v.pass());
        assert!(v.deltas.iter().all(|d| d.rel_change == 0.0));
        assert!(v.missing.is_empty() && v.added.is_empty());
    }

    #[test]
    fn direction_decides_which_side_of_the_band_regresses() {
        let base = record(&[
            ("hi", 2.0, Direction::Higher, 0.05),
            ("lo", 10.0, Direction::Lower, 0.05),
            ("ex", 7.0, Direction::Exact, 0.0),
        ]);
        let cur = record(&[
            ("hi", 1.8, Direction::Higher, 0.05), // -10%: worse
            ("lo", 9.0, Direction::Lower, 0.05),  // -10%: better
            ("ex", 8.0, Direction::Exact, 0.0),   // any drift: worse
        ]);
        let v = compare(&base, &cur);
        assert!(!v.pass());
        let ids: Vec<_> = v.regressions().iter().map(|d| d.id.clone()).collect();
        assert_eq!(ids, ["hi", "ex"]);
        assert_eq!(v.improvements()[0].id, "lo");
    }

    #[test]
    fn changes_within_tolerance_are_noise() {
        let base = record(&[("hi", 100.0, Direction::Higher, 0.05)]);
        let cur = record(&[("hi", 96.0, Direction::Higher, 0.05)]);
        let v = compare(&base, &cur);
        assert!(v.pass());
        assert_eq!(v.deltas[0].status, DeltaStatus::Pass);
    }

    #[test]
    fn missing_metrics_fail_and_added_metrics_inform() {
        let base = record(&[("gone", 1.0, Direction::Higher, 0.0)]);
        let cur = record(&[("new", 1.0, Direction::Higher, 0.0)]);
        let v = compare(&base, &cur);
        assert!(!v.pass(), "coverage loss must fail");
        assert_eq!(v.missing, ["gone"]);
        assert_eq!(v.added, ["new"]);
    }

    #[test]
    fn verdict_json_is_machine_readable() {
        use fpgaccel_trace::json::Json;
        let base = record(&[("hi", 2.0, Direction::Higher, 0.05)]);
        let cur = record(&[("hi", 1.0, Direction::Higher, 0.05)]);
        let v = compare(&base, &cur);
        let j = Json::parse(&v.to_json()).expect("valid JSON");
        assert_eq!(j.get("pass"), Some(&Json::Bool(false)));
        assert_eq!(j.get("regressions").unwrap().as_f64(), Some(1.0));
    }
}
