//! The real Rust reference inference engine.

use fpgaccel_tensor::graph::Graph;
use fpgaccel_tensor::models::Model;
use fpgaccel_tensor::Tensor;
use std::time::Instant;

/// A CPU reference engine: executes the (fused) network graph with the
/// rayon-parallel operators of `fpgaccel-tensor`. This is the functional
/// ground truth every simulated deployment is verified against, and it
/// yields genuinely *measured* host FPS for the bench harness.
pub struct ReferenceEngine {
    graph: Graph,
    flops: u64,
}

impl ReferenceEngine {
    /// Builds the engine for a model (graph is fused, like TF/TVM would).
    pub fn new(model: Model) -> Self {
        let graph = model.build().fuse();
        let flops = fpgaccel_tensor::flops::graph_flops(&graph);
        ReferenceEngine { graph, flops }
    }

    /// Wraps an existing graph.
    pub fn from_graph(graph: Graph) -> Self {
        let flops = fpgaccel_tensor::flops::graph_flops(&graph);
        ReferenceEngine { graph, flops }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// FLOPs per forward pass.
    pub fn flops(&self) -> u64 {
        self.flops
    }

    /// One forward pass.
    pub fn infer(&self, input: &Tensor) -> Tensor {
        self.graph.execute(input)
    }

    /// Classifies an input (argmax over the output probabilities).
    pub fn classify(&self, input: &Tensor) -> usize {
        self.infer(input).argmax()
    }

    /// Measures wall-clock FPS over `n` forward passes of `input`.
    /// Returns `(fps, gflops)`.
    pub fn measure_fps(&self, input: &Tensor, n: usize) -> (f64, f64) {
        assert!(n > 0, "need at least one pass");
        let t0 = Instant::now();
        let mut sink = 0.0f32;
        for _ in 0..n {
            sink += self.infer(input).data()[0];
        }
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        let fps = n as f64 / dt;
        (fps, fps * self.flops as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpgaccel_tensor::data;

    #[test]
    fn lenet_produces_probabilities() {
        let e = ReferenceEngine::new(Model::LeNet5);
        let out = e.infer(&data::synthetic_digit(3, 0));
        assert_eq!(out.numel(), 10);
        assert!((out.sum() - 1.0).abs() < 1e-5);
        assert!(out.all_finite());
    }

    #[test]
    fn classification_is_deterministic() {
        let e = ReferenceEngine::new(Model::LeNet5);
        let x = data::synthetic_digit(7, 1);
        assert_eq!(e.classify(&x), e.classify(&x));
    }

    #[test]
    fn fps_measurement_is_positive() {
        let e = ReferenceEngine::new(Model::LeNet5);
        let (fps, gflops) = e.measure_fps(&data::synthetic_digit(0, 0), 3);
        assert!(fps > 0.0);
        assert!(gflops > 0.0);
    }

    #[test]
    fn fused_engine_matches_unfused_graph() {
        let g = Model::LeNet5.build();
        let x = data::synthetic_digit(5, 2);
        let unfused = g.execute(&x);
        let fused = ReferenceEngine::new(Model::LeNet5).infer(&x);
        assert!(fpgaccel_tensor::allclose(&unfused, &fused, 1e-5, 1e-6));
    }
}
