//! # fpgaccel-baseline
//!
//! The CPU/GPU side of the thesis evaluation (§6.2, Tables 6.3/6.10/6.12/6.15):
//!
//! * [`engine`] — a *real* Rust CNN inference engine (the graph executor with
//!   rayon-parallel convolutions) used as functional ground truth and for
//!   genuinely measured host FPS.
//! * [`frameworks`] — calibrated performance models of the closed-source
//!   comparators (Keras/TensorFlow CPU, TVM LLVM-CPU with 1–56 threads,
//!   TensorFlow + cuDNN on the GTX 1060). The anchor FPS values are copied
//!   from the thesis tables; thread-scaling curves are fit to
//!   Figures 6.4–6.7. See DESIGN.md for the substitution rationale: a 2021
//!   Xeon-8280 + TF 2.1 stack is not reproducible here, and the comparison
//!   tables need the *published* numbers as the yardstick.

#![warn(missing_docs)]

pub mod engine;
pub mod frameworks;

pub use engine::ReferenceEngine;
pub use frameworks::{reference_fps, Framework};
