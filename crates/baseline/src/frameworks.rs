//! Calibrated performance models of the reference frameworks
//! (Tables 6.10/6.12/6.15, Figures 6.4–6.7).
//!
//! Anchor FPS values are the thesis' measurements on the dual Xeon 8280 and
//! the GTX 1060; thread scaling follows the curves the thesis describes:
//! MobileNet/ResNet scale near-linearly then saturate ("near-linear
//! improvements ... up to 16 threads", §6.4.2), while LeNet *degrades* with
//! added threads ("We observe a decrease in performance as the number of
//! threads increase", §6.4.1 footnote 8) because its layers are too small to
//! amortize synchronization.

use fpgaccel_tensor::models::Model;

/// A reference software stack.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Framework {
    /// Keras/TensorFlow 2.1 on the Xeon 8280 with its default thread pool
    /// (TF used 4 threads for LeNet and all 112 for the larger nets,
    /// §6.2 footnote 2).
    TfCpu,
    /// TVM v0.7 LLVM-CPU backend with an explicit thread count (1..=56).
    TvmCpu {
        /// Worker threads.
        threads: u32,
    },
    /// TensorFlow + cuDNN 7.6 on the GTX 1060.
    TfCudnn,
}

impl Framework {
    /// Label used in the thesis tables.
    pub fn label(self) -> String {
        match self {
            Framework::TfCpu => "TF-CPU".to_string(),
            Framework::TvmCpu { threads } => format!("TVM-{threads}T"),
            Framework::TfCudnn => "TF-cuDNN".to_string(),
        }
    }
}

/// Per-model anchors from the thesis tables:
/// `(tf_cpu, tvm_1t, tvm_peak, tvm_peak_threads, cudnn)`.
fn anchors(model: Model) -> (f64, f64, f64, f64, f64) {
    match model {
        // Table 6.10: TF-CPU 1075, TVM-1T 2345 (best), TF-cuDNN 1604.
        Model::LeNet5 => (1075.0, 2345.0, 2345.0, 1.0, 1604.0),
        // Table 6.12: TF-CPU 21.6, TVM 15.6 (1T) -> 90.1 (16T), cuDNN 43.7.
        Model::MobileNetV1 => (21.6, 15.6, 90.1, 16.0, 43.7),
        // Table 6.15: TF-CPU 16.3, TVM 5.8 -> 54.3 (56T), cuDNN 46.5.
        Model::ResNet18 => (16.3, 5.8, 54.3, 56.0, 46.5),
        // Table 6.15: TF-CPU 10.7, TVM 1.2 -> 13.7 (56T), cuDNN 31.7.
        Model::ResNet34 => (10.7, 1.2, 13.7, 56.0, 31.7),
    }
}

/// FPS of a reference framework on a model, per the calibrated model.
///
/// # Panics
/// Panics on a zero thread count.
pub fn reference_fps(model: Model, fw: Framework) -> f64 {
    let (tf_cpu, tvm_1t, tvm_peak, peak_threads, cudnn) = anchors(model);
    match fw {
        Framework::TfCpu => tf_cpu,
        Framework::TfCudnn => cudnn,
        Framework::TvmCpu { threads } => {
            assert!(threads > 0, "thread count must be positive");
            let t = threads as f64;
            if model == Model::LeNet5 {
                // LeNet: threading hurts (§6.4.1). Mild power-law decay.
                tvm_1t * t.powf(-0.30)
            } else {
                // Power-law ramp through (1, tvm_1t) and
                // (peak_threads, tvm_peak), flat beyond the peak.
                let alpha = (tvm_peak / tvm_1t).ln() / peak_threads.ln();
                let t_eff = t.min(peak_threads);
                tvm_1t * t_eff.powf(alpha)
            }
        }
    }
}

/// The thread sweep plotted in Figures 6.4–6.7 (1..=56 threads).
pub fn tvm_thread_sweep(model: Model) -> Vec<(u32, f64)> {
    (1..=56)
        .map(|t| (t, reference_fps(model, Framework::TvmCpu { threads: t })))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_table_values() {
        assert_eq!(reference_fps(Model::LeNet5, Framework::TfCpu), 1075.0);
        assert_eq!(reference_fps(Model::LeNet5, Framework::TfCudnn), 1604.0);
        assert_eq!(
            reference_fps(Model::LeNet5, Framework::TvmCpu { threads: 1 }),
            2345.0
        );
        assert_eq!(reference_fps(Model::MobileNetV1, Framework::TfCpu), 21.6);
        let m16 = reference_fps(Model::MobileNetV1, Framework::TvmCpu { threads: 16 });
        assert!((m16 - 90.1).abs() < 0.5);
        let r56 = reference_fps(Model::ResNet18, Framework::TvmCpu { threads: 56 });
        assert!((r56 - 54.3).abs() < 0.5);
        let r34 = reference_fps(Model::ResNet34, Framework::TvmCpu { threads: 56 });
        assert!((r34 - 13.7).abs() < 0.1);
    }

    #[test]
    fn lenet_degrades_with_threads() {
        let f1 = reference_fps(Model::LeNet5, Framework::TvmCpu { threads: 1 });
        let f8 = reference_fps(Model::LeNet5, Framework::TvmCpu { threads: 8 });
        let f56 = reference_fps(Model::LeNet5, Framework::TvmCpu { threads: 56 });
        assert!(f1 > f8 && f8 > f56);
    }

    #[test]
    fn big_nets_scale_then_saturate() {
        let f1 = reference_fps(Model::MobileNetV1, Framework::TvmCpu { threads: 1 });
        let f8 = reference_fps(Model::MobileNetV1, Framework::TvmCpu { threads: 8 });
        let f16 = reference_fps(Model::MobileNetV1, Framework::TvmCpu { threads: 16 });
        let f56 = reference_fps(Model::MobileNetV1, Framework::TvmCpu { threads: 56 });
        assert!(f8 > 2.0 * f1);
        assert!(f16 > f8);
        assert!((f56 - f16).abs() < 1e-9, "flat beyond the measured peak");
    }

    #[test]
    fn sweep_covers_56_threads() {
        let s = tvm_thread_sweep(Model::ResNet34);
        assert_eq!(s.len(), 56);
        assert_eq!(s[0].0, 1);
        assert_eq!(s[55].0, 56);
    }
}
