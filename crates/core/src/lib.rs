//! # fpgaccel-core
//!
//! The thesis' primary contribution: an end-to-end compilation flow from a
//! CNN model description to a (simulated) FPGA accelerator (Chapter 3).
//!
//! The flow imports a model graph, runs the Relay-style fusion and
//! padding-materialization passes, lowers every layer to OpenCL kernels
//! through the selected schedules (Chapter 5), synthesizes the kernel set
//! with the AOC model, and wires a host execution plan in one of the two
//! modes of §3.1:
//!
//! * **Pipelined execution** (`ExecMode::Pipelined`): one kernel per layer,
//!   activations stream through Intel channels, weight-free kernels run
//!   autorun, and one command queue per kernel gives concurrent execution —
//!   the LeNet deployment of §6.3.1.
//! * **Folded execution** (`ExecMode::Folded`): convolutions grouped by
//!   (operation, filter size, stride) into parameterized symbolic-shape
//!   kernels that are time-multiplexed across layers through global memory —
//!   the MobileNet/ResNet deployments of §6.3.2/§6.4.3.
//! * **Dataflow execution** (`ExecMode::Dataflow`): the `fpgaccel-pipeline`
//!   planner maps maximal fusable segments onto channel-connected stage
//!   chains with explicit FIFO depths, charges the AOC resource model for
//!   the whole pipeline at once, and degrades over-budget segments into
//!   folded staged execution with a structured per-resource reason.
//!
//! [`Deployment`] couples the simulated timeline (the `fpgaccel-runtime`
//! event simulation driven by the AOC timing model) with real tensor data
//! (the graph executor), and [`verify`] proves, end to end, that the exact
//! generated kernels — run through the IR interpreter — compute the same
//! numbers.

#![warn(missing_docs)]

pub mod autotune;
pub mod bitstreams;
pub mod dataflow;
pub mod deploy;
pub mod dse;
pub mod flow;
pub mod kernels;
pub mod options;
pub mod verify;

pub use autotune::{
    conv1x1_shapes, db_key, tune_model, tune_pipeline, tune_precision, FlowEvaluator,
    PipelineEvaluator, PipelineTuneOutcome, PrecisionEvaluator, PrecisionTuneOutcome,
};
pub use dataflow::{build_dataflow, CouplingSpec, DataflowPlan, DataflowStage, DataflowStep};
pub use deploy::{
    BatchLatencyModel, BatchStats, Deployment, DeploymentQuant, ExecutionPlan, InferResult,
};
pub use flow::{Flow, FlowError};
pub use options::{ExecMode, OptimizationConfig, QuantSpec, TilingPreset};
pub use verify::{verify_deployment, VerifyError};
