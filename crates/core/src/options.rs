//! Optimization configurations — the knobs of Table 4.1 and the bitstream
//! ladder of Table 6.4.

use fpgaccel_aoc::{AocOptions, Precision};
use fpgaccel_pipeline::PipelineOpts;
use fpgaccel_tensor::quant::QuantPrecision;
use fpgaccel_tir::compute::ConvSchedule;

/// The execution modes: the two of §3.1 plus the planner-driven dataflow
/// hybrid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// One kernel per layer, channel-connected, all kernels concurrently
    /// resident (small networks).
    Pipelined,
    /// Parameterized kernels time-multiplexed across layers through global
    /// memory (large networks).
    Folded,
    /// Planner-driven streaming dataflow: maximal fused segments become
    /// channel-connected pipelines under the device resource budget; layers
    /// that do not fit (or cannot stream) degrade gracefully to staged
    /// execution through the folded kernel pool.
    Dataflow,
}

/// Tiling/unroll factor tables for folded deployments (Tables 6.6/6.7/6.13).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TilingPreset {
    /// No tiling: every kernel keeps the default TVM schedule (the folded
    /// *base* bitstreams of Tables 6.11/6.14).
    Naive,
    /// MobileNetV1 (Table 6.7): 1x1 convs tiled `W2/C2/C1`, the 3x3 stem
    /// tiled `C1,F,F = 3x3x3`, depthwise convs tiled `W2,F,F = 7x3x3`,
    /// dense unrolled by 32.
    MobileNet {
        /// `(W_2vec, C_2vec, C_1vec)` for the 1x1 convolutions — per
        /// platform: S10MX 7/32/4, S10SX 7/16/4, A10 7/8/8.
        one_by_one: (usize, usize, usize),
    },
    /// ResNet-18/34 (Table 6.13): 7x7 stem unrolled `F,F`; 3x3 convs tiled
    /// `W2,C1,F,F = 7/8/3/3`; 1x1 projections unrolled `C1 = 8`; dense
    /// unrolled by 32.
    ResNet,
    /// A custom 1x1 tiling (used by the Table 6.6 sweep and the DSE).
    Custom1x1 {
        /// `(W_2vec, C_2vec, C_1vec)`.
        tile: (usize, usize, usize),
    },
    /// AlexNet (extension; not a thesis deployment): 11x11 and 5x5 stems
    /// unrolled `F,F` only (their input-channel counts do not divide
    /// evenly), 3x3 convs unrolled `C1 = 4`, dense unrolled by 32.
    AlexNet,
    /// One tiling applied to every convolution group (`c2vec` only for 1x1
    /// kernels, `c1vec` skipped for depthwise). Useful for custom networks
    /// whose dimensions the MobileNet/ResNet presets do not divide.
    Uniform {
        /// `W_2vec`.
        w2vec: usize,
        /// `C_2vec` (1x1 kernels only).
        c2vec: usize,
        /// `C_1vec` (non-depthwise kernels).
        c1vec: usize,
    },
}

impl TilingPreset {
    /// The convolution schedule for a folded group with filter `f`, stride
    /// `s`, depthwise flag `dw`.
    pub fn schedule(&self, dw: bool, f: usize, s: usize) -> ConvSchedule {
        match self {
            TilingPreset::Naive => ConvSchedule::Base,
            TilingPreset::MobileNet { one_by_one } => {
                if dw {
                    // 3x3 DW conv tiled W2,F,F = 7x3x3 (Table 6.7).
                    ConvSchedule::Tiled {
                        w2vec: 7,
                        c2vec: 1,
                        c1vec: 1,
                    }
                } else if f == 1 {
                    ConvSchedule::Tiled {
                        w2vec: one_by_one.0,
                        c2vec: one_by_one.1,
                        c1vec: one_by_one.2,
                    }
                } else {
                    // The 3x3 stem: C1,F,F = 3x3x3 (Table 6.7).
                    ConvSchedule::Tiled {
                        w2vec: 1,
                        c2vec: 1,
                        c1vec: 3,
                    }
                }
            }
            TilingPreset::ResNet => {
                if f == 7 {
                    // 7x7 conv: unroll F,F only (Table 6.13).
                    ConvSchedule::Tiled {
                        w2vec: 1,
                        c2vec: 1,
                        c1vec: 1,
                    }
                } else if f == 3 {
                    // 3x3 convs (either stride): 7/8/3/3 (Table 6.13).
                    ConvSchedule::Tiled {
                        w2vec: 7,
                        c2vec: 1,
                        c1vec: 8,
                    }
                } else {
                    // 1x1 projections: unroll C1 = 8 (Table 6.13).
                    let _ = s;
                    ConvSchedule::Tiled {
                        w2vec: 1,
                        c2vec: 1,
                        c1vec: 8,
                    }
                }
            }
            TilingPreset::AlexNet => {
                let _ = s;
                if f >= 5 {
                    ConvSchedule::Tiled {
                        w2vec: 1,
                        c2vec: 1,
                        c1vec: 1,
                    }
                } else {
                    ConvSchedule::Tiled {
                        w2vec: 1,
                        c2vec: 1,
                        c1vec: 4,
                    }
                }
            }
            TilingPreset::Custom1x1 { tile } => {
                if !dw && f == 1 {
                    ConvSchedule::Tiled {
                        w2vec: tile.0,
                        c2vec: tile.1,
                        c1vec: tile.2,
                    }
                } else {
                    TilingPreset::MobileNet { one_by_one: *tile }.schedule(dw, f, s)
                }
            }
            TilingPreset::Uniform {
                w2vec,
                c2vec,
                c1vec,
            } => ConvSchedule::Tiled {
                w2vec: *w2vec,
                c2vec: if !dw && f == 1 { *c2vec } else { 1 },
                c1vec: if dw { 1 } else { *c1vec },
            },
        }
    }

    /// Dense-layer unroll factor.
    pub fn dense_unroll(&self) -> Option<usize> {
        match self {
            TilingPreset::Naive => None,
            // Table 6.7 / §6.4.3: dense unrolled by 32.
            _ => Some(32),
        }
    }
}

/// Numeric quantization of the deployed datapath (the §8.1 future work made
/// real): the flow calibrates per-tensor ranges on a seeded batch, rewrites
/// every kernel with narrow-MAC loads and requantizing stores, and the cost
/// model prices the reduced precision.
///
/// The default percentile is 1.0 (full min/max coverage): per-layer
/// differential verification requires its probe inputs to fall inside the
/// calibrated ranges, and the compile-time batch is the only coverage the
/// flow can promise. Percentile clipping (e.g. 0.999) is an accuracy
/// deployment knob — outliers saturate by design — and pushes verification
/// from per-layer bounds to end-metric checks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantSpec {
    /// Datapath precision rung.
    pub precision: QuantPrecision,
    /// Calibration clip percentile over `|x|` (1.0 = exact min/max).
    pub percentile: f32,
    /// Seed of the synthetic calibration batch.
    pub calibration_seed: u64,
    /// Calibration batch size.
    pub calibration_samples: usize,
}

impl QuantSpec {
    /// A spec at `precision` with saturation-free defaults (percentile 1.0,
    /// 8 seeded samples).
    pub fn new(precision: QuantPrecision) -> Self {
        QuantSpec {
            precision,
            percentile: 1.0,
            calibration_seed: 0x5EED_CA11,
            calibration_samples: 8,
        }
    }

    /// The synthesis-cost precision this rung is priced at.
    pub fn aoc_precision(&self) -> Precision {
        match self.precision {
            QuantPrecision::Fp16 => Precision::Fp16,
            QuantPrecision::Int16 => Precision::Int16,
            QuantPrecision::Int8 => Precision::Int8,
        }
    }
}

/// A complete optimization configuration — one "bitstream" of the
/// evaluation.
#[derive(Clone, Debug)]
pub struct OptimizationConfig {
    /// Display label (Table 6.4 names).
    pub label: String,
    /// Execution mode.
    pub mode: ExecMode,
    /// Optimized schedules: activation fusion into the producing loop,
    /// cached writes (private accumulators), `F x F` unrolling, and the
    /// softmax loop-invariant code motion (§4.3–§4.5, §5.1).
    pub optimized_schedules: bool,
    /// Per-dense-layer unroll factors in layer order (empty = no unroll).
    /// LeNet's ladder uses 40/40/4 (Table 6.4).
    pub dense_unroll: Vec<usize>,
    /// Move activations between kernels over Intel channels (§4.6).
    pub channels: bool,
    /// Declare weight-free channel kernels autorun (§4.7). Requires
    /// `channels`.
    pub autorun: bool,
    /// One command queue per kernel + asynchronous enqueues (§4.8).
    pub concurrent: bool,
    /// Folded mode only: group convolutions into parameterized
    /// symbolic-shape kernels (§4.9). When `false`, TVM's default
    /// one-kernel-per-layer mapping is kept — which "can easily exhaust
    /// resources" (§3.2) and is why the naive MobileNet/ResNet designs do
    /// not fit the Arria 10.
    pub parameterized: bool,
    /// Folded-mode tiling table.
    pub tiling: TilingPreset,
    /// Dataflow-mode planner knobs: inter-stage FIFO sizing and the stage
    /// cap. Part of the config identity (and therefore of deployment-cache
    /// keys): two depth policies are two different bitstreams.
    pub pipeline: PipelineOpts,
    /// Emit parameterized kernels with the raw symbolic strides TVM
    /// generates (Listing 5.10) instead of applying the stride-1 coalescing
    /// workaround (Listing 5.11). AOC then cannot prove accesses contiguous
    /// and infers replicated non-aligned LSUs — the §5.3 caveat, kept as an
    /// ablation switch.
    pub explicit_strides: bool,
    /// Float-operation flags (§4.10) — on for every thesis bitstream.
    pub aoc: AocOptions,
    /// Enable the OpenCL event profiler (§5.2). Profiling requires events
    /// to complete before their timestamps can be read, so it forces
    /// synchronous execution and adds per-event host overhead —
    /// "Asynchronous OpenCL task enqueuing and concurrent execution is
    /// disabled when the ... profiler is enabled".
    pub profiling: bool,
    /// Quantize the datapath: calibrate ranges, rewrite kernels with
    /// narrow-MAC loads and requantizing boundaries, price the reduced
    /// precision in synthesis. `None` keeps the f32 datapath (every thesis
    /// bitstream).
    pub quant: Option<QuantSpec>,
}

impl OptimizationConfig {
    /// Table 6.4 `Base`: the untouched TVM flow.
    pub fn base() -> Self {
        OptimizationConfig {
            label: "Base".into(),
            mode: ExecMode::Pipelined,
            optimized_schedules: false,
            dense_unroll: vec![],
            channels: false,
            autorun: false,
            concurrent: false,
            parameterized: false,
            tiling: TilingPreset::Naive,
            pipeline: PipelineOpts::default(),
            explicit_strides: false,
            aoc: AocOptions::default(),
            profiling: false,
            quant: None,
        }
    }

    /// Table 6.4 `Unrolling`: conv inner product unrolled (`F x F`),
    /// dense layers unrolled 40/40/4.
    pub fn unrolling() -> Self {
        OptimizationConfig {
            label: "Unrolling".into(),
            optimized_schedules: true,
            dense_unroll: vec![40, 40, 4],
            ..Self::base()
        }
    }

    /// Table 6.4 `Channels`: + output feature maps moved over buffered
    /// channels, activations fused with the channel write.
    pub fn channels() -> Self {
        OptimizationConfig {
            label: "Channels".into(),
            channels: true,
            ..Self::unrolling()
        }
    }

    /// Table 6.4 `Autorun`: + pooling/flatten kernels declared autorun.
    pub fn autorun() -> Self {
        OptimizationConfig {
            label: "Autorun".into(),
            autorun: true,
            ..Self::channels()
        }
    }

    /// Table 6.4 `TVM-Autorun`: the same optimizations with
    /// unrolling/fusion/write-caches applied by TVM schedule primitives
    /// rather than by hand (§6.3.1 validates the automation).
    pub fn tvm_autorun() -> Self {
        OptimizationConfig {
            label: "TVM-Autorun".into(),
            ..Self::autorun()
        }
    }

    /// Folded-mode naive deployment (the MobileNet/ResNet "Base" rows):
    /// one kernel per layer, default schedules.
    pub fn folded_base() -> Self {
        OptimizationConfig {
            label: "Folded-Base".into(),
            mode: ExecMode::Folded,
            optimized_schedules: false,
            dense_unroll: vec![],
            channels: false,
            autorun: false,
            concurrent: false,
            parameterized: false,
            tiling: TilingPreset::Naive,
            pipeline: PipelineOpts::default(),
            explicit_strides: false,
            aoc: AocOptions::default(),
            profiling: false,
            quant: None,
        }
    }

    /// Folded-mode optimized deployment: parameterized kernels + a tiling
    /// preset.
    pub fn folded(tiling: TilingPreset) -> Self {
        OptimizationConfig {
            label: "Folded-Optimized".into(),
            optimized_schedules: true,
            parameterized: true,
            tiling,
            ..Self::folded_base()
        }
    }

    /// Streaming dataflow deployment: the planner maps maximal fused
    /// segments onto channel-connected pipelines (stages tiled per the
    /// preset), with graceful degradation to staged execution through the
    /// parameterized folded kernel pool when the device budget runs out.
    pub fn dataflow(tiling: TilingPreset) -> Self {
        OptimizationConfig {
            label: "Dataflow".into(),
            mode: ExecMode::Dataflow,
            channels: true,
            autorun: true,
            concurrent: true,
            ..Self::folded(tiling)
        }
    }

    /// Overrides the dataflow planner knobs (FIFO depth policy / stage
    /// cap). The label carries the policy so sibling configurations remain
    /// distinguishable in reports and cache keys.
    pub fn with_pipeline(mut self, opts: PipelineOpts) -> Self {
        self.pipeline = opts;
        self.label = format!("{} {:?}", self.label, opts.depth);
        self
    }

    /// Enables concurrent execution (the `[CE]` series of Figure 6.1).
    pub fn with_concurrent(mut self) -> Self {
        self.concurrent = true;
        self.label = format!("{} [CE]", self.label);
        self
    }

    /// Enables the OpenCL event profiler (§5.2) — disables asynchronous
    /// execution and adds per-event host overhead.
    pub fn with_profiling(mut self) -> Self {
        self.profiling = true;
        self.label = format!("{} [profiled]", self.label);
        self
    }

    /// Quantizes the datapath at `spec`. Forces per-layer kernels
    /// (`parameterized = false`): calibrated scales are compile-time
    /// constants, so a parameterized group shared across layers would force
    /// one scale set onto every member. Also retargets the synthesis cost
    /// model to the rung's precision.
    pub fn with_quant(mut self, spec: QuantSpec) -> Self {
        self.aoc.precision = spec.aoc_precision();
        self.parameterized = false;
        self.label = format!("{} [{}]", self.label, spec.precision.name());
        self.quant = Some(spec);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_cumulative() {
        let base = OptimizationConfig::base();
        assert!(!base.optimized_schedules && !base.channels && !base.autorun);
        let unroll = OptimizationConfig::unrolling();
        assert!(unroll.optimized_schedules && !unroll.channels);
        assert_eq!(unroll.dense_unroll, vec![40, 40, 4]);
        let chan = OptimizationConfig::channels();
        assert!(chan.channels && !chan.autorun);
        let auto = OptimizationConfig::autorun();
        assert!(auto.channels && auto.autorun);
    }

    #[test]
    fn mobilenet_preset_matches_table_6_7() {
        let t = TilingPreset::MobileNet {
            one_by_one: (7, 16, 4),
        };
        assert_eq!(
            t.schedule(false, 1, 1),
            ConvSchedule::Tiled {
                w2vec: 7,
                c2vec: 16,
                c1vec: 4
            }
        );
        assert_eq!(
            t.schedule(true, 3, 2),
            ConvSchedule::Tiled {
                w2vec: 7,
                c2vec: 1,
                c1vec: 1
            }
        );
        assert_eq!(
            t.schedule(false, 3, 2),
            ConvSchedule::Tiled {
                w2vec: 1,
                c2vec: 1,
                c1vec: 3
            }
        );
        assert_eq!(t.dense_unroll(), Some(32));
    }

    #[test]
    fn resnet_preset_matches_table_6_13() {
        let t = TilingPreset::ResNet;
        assert_eq!(
            t.schedule(false, 3, 1),
            ConvSchedule::Tiled {
                w2vec: 7,
                c2vec: 1,
                c1vec: 8
            }
        );
        assert_eq!(
            t.schedule(false, 7, 2),
            ConvSchedule::Tiled {
                w2vec: 1,
                c2vec: 1,
                c1vec: 1
            }
        );
        assert_eq!(
            t.schedule(false, 1, 2),
            ConvSchedule::Tiled {
                w2vec: 1,
                c2vec: 1,
                c1vec: 8
            }
        );
    }

    #[test]
    fn naive_preset_keeps_base_schedules() {
        assert_eq!(
            TilingPreset::Naive.schedule(false, 1, 1),
            ConvSchedule::Base
        );
        assert_eq!(TilingPreset::Naive.dense_unroll(), None);
    }

    #[test]
    fn ce_suffix_marks_label() {
        let c = OptimizationConfig::autorun().with_concurrent();
        assert!(c.concurrent);
        assert!(c.label.ends_with("[CE]"));
    }

    #[test]
    fn quant_rung_reprices_and_unshares_kernels() {
        let c = OptimizationConfig::folded(TilingPreset::Naive)
            .with_quant(QuantSpec::new(QuantPrecision::Int8));
        assert!(!c.parameterized, "scales are compile-time constants");
        assert_eq!(c.aoc.precision, Precision::Int8);
        assert!(c.label.ends_with("[int8]"), "{}", c.label);
        let spec = c.quant.unwrap();
        assert_eq!(spec.percentile, 1.0);
        assert_eq!(
            QuantSpec::new(QuantPrecision::Fp16).aoc_precision(),
            Precision::Fp16
        );
    }
}
