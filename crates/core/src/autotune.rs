//! Flow-side glue for the `fpgaccel-tune` auto-scheduler.
//!
//! `fpgaccel-tune` deliberately knows nothing about the compile flow — its
//! search engine evaluates candidates through the [`Evaluate`] trait. This
//! module supplies the flow-backed implementation ([`FlowEvaluator`]),
//! extracts the 1x1-convolution loop extents the proposal generator
//! validates against, derives tuning-database keys, and offers the one-call
//! [`tune_model`] entry point. [`Flow::with_tuned_config`] closes the loop:
//! a flow (or the serving layer's deployment cache) deploys the tuned
//! configuration straight from the database without ever searching.

use crate::flow::{Flow, FlowError};
use crate::options::{OptimizationConfig, QuantSpec, TilingPreset};
use fpgaccel_aoc::{synthesize, synthesize_mixed, AocOptions, Precision};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_pipeline::PipelineOpts;
use fpgaccel_tensor::graph::{Graph, Op};
use fpgaccel_tensor::models::Model;
use fpgaccel_tensor::quant::{self, Calibration, QuantPrecision, QuantizedGraph};
use fpgaccel_tensor::Tensor;
use fpgaccel_tir::Kernel;
use fpgaccel_trace::PID_TUNE;
use fpgaccel_trace::{Registry, Tracer};
use fpgaccel_tune::pipeline::{record_of, EvaluatePipeline, PipelineMeasured};
use fpgaccel_tune::precision::{
    precision_record_of, search_precision, EvaluatePrecision, PrecisionCost,
};
use fpgaccel_tune::{
    best_pipeline, pipeline_candidates, search_pipeline, shape_signature, Candidate, Conv1x1Shape,
    DbKey, EvalError, Evaluate, Measured, PipelineRecord, PrecisionRecord, SearchConfig,
    SearchSpace, TuneError, TuneOutcome, Tuner, TuningDb,
};
use std::collections::BTreeMap;

/// Loop extents of every (non-depthwise) 1x1 convolution in a fused,
/// padding-materialized graph — what the tuner's legality checks and shape
/// signature are computed from.
pub fn conv1x1_shapes(graph: &Graph) -> Vec<Conv1x1Shape> {
    graph
        .nodes
        .iter()
        .filter_map(|n| match n.op {
            Op::Conv2d {
                out_channels,
                kernel: 1,
                depthwise: false,
                ..
            } => Some(Conv1x1Shape {
                layer: n.name.clone(),
                w2: n.out_shape.dim(2),
                h2: n.out_shape.dim(1),
                c2: out_channels,
                c1: graph.nodes[n.inputs[0]].out_shape.dim(0),
            }),
            _ => None,
        })
        .collect()
}

/// The tuning-database key for a graph on a platform at a precision:
/// *(model, layer-shape signature, platform, precision)*.
pub fn db_key(graph: &Graph, platform: FpgaPlatform, precision: Precision) -> DbKey {
    DbKey {
        model: graph.name.clone(),
        shape_sig: shape_signature(&conv1x1_shapes(graph)),
        platform: format!("{platform:?}"),
        precision,
    }
}

/// The flow-backed candidate evaluator: synthesizes the 1x1-only bitstream,
/// times every 1x1 layer through it, and reports full-network latency when
/// the complete kernel set also fits — exactly the Table 6.6 methodology.
///
/// `Sync` by construction; each [`Evaluate::evaluate`] call clones its own
/// [`Flow`], so the tuner's worker threads never share mutable state.
pub struct FlowEvaluator {
    flow: Flow,
    graph: Graph,
}

impl FlowEvaluator {
    /// An evaluator for `flow`, importing the graph once up front.
    pub fn new(flow: &Flow) -> FlowEvaluator {
        FlowEvaluator {
            graph: flow.import_graph(),
            flow: flow.clone(),
        }
    }

    /// The imported (fused, padding-materialized) graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The search space for this model/platform pair: the 1x1 layer
    /// extents, the device's kernel-partition resource inventory, and its
    /// routing fanout capacity.
    pub fn space(&self) -> SearchSpace {
        let device = self.flow.platform.model();
        SearchSpace::new(
            conv1x1_shapes(&self.graph),
            device.kernel_budget(),
            self.flow.calib.routing_fanout_bits(self.flow.platform),
        )
    }

    /// The tuning-database key this evaluator's results belong under.
    pub fn key(&self, precision: Precision) -> DbKey {
        db_key(&self.graph, self.flow.platform, precision)
    }
}

impl Evaluate for FlowEvaluator {
    fn evaluate(&self, c: &Candidate) -> Result<Measured, EvalError> {
        use crate::kernels::build_folded;
        use fpgaccel_runtime::Sim;

        // Each evaluation owns its own flow (workers never share one).
        let flow = self.flow.clone();
        let device = flow.platform.model();
        let mut cfg = OptimizationConfig::folded(TilingPreset::Custom1x1 { tile: c.tile });
        cfg.aoc = AocOptions::with_precision(c.precision);

        let plan = build_folded(&self.graph, &cfg).map_err(|e| EvalError(e.to_string()))?;
        let only_1x1: Vec<_> = plan
            .kernels
            .iter()
            .filter(|k| k.name.starts_with("conv2d_1x1"))
            .cloned()
            .collect();
        if only_1x1.is_empty() {
            return Err(EvalError("model has no 1x1 convolutions".to_string()));
        }
        let bitstream = synthesize(&only_1x1, &device, &cfg.aoc, &flow.calib)
            .map_err(|e| EvalError(e.to_string()))?;

        // Time every 1x1 layer once through the lone kernel.
        let mut sim = Sim::new(
            device.clone(),
            cfg.aoc,
            flow.calib.clone(),
            bitstream.fmax_mhz,
        );
        let q = sim.create_queue();
        let mut prev = None;
        for inv in plan
            .invocations
            .iter()
            .filter(|i| i.kernel_name.starts_with("conv2d_1x1"))
        {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(sim.enqueue_kernel(
                q,
                bitstream.kernel(&inv.kernel_name),
                &inv.binding,
                &deps,
                &[],
            ));
        }
        sim.finish();
        let conv1x1_seconds = sim
            .events()
            .iter()
            .map(fpgaccel_runtime::SimEvent::duration)
            .sum();

        let seconds_per_image = flow.compile(&cfg).ok().map(|d| d.simulate_batch(1).seconds);
        Ok(Measured {
            seconds_per_image,
            conv1x1_seconds,
            dsps: bitstream.total_resources.dsp,
            ram_blocks: bitstream.total_resources.ram,
            fmax_mhz: bitstream.fmax_mhz,
            utilization: bitstream.utilization,
            routing_bits: bitstream.routing_pressure_bits(),
        })
    }
}

/// Tunes a zoo model for a platform in one call: warm database lookup,
/// search on a miss, winner recorded back into `db`. Spans land on the
/// tracer's tune track, `tune_*` metrics in `registry`.
///
/// # Errors
/// [`TuneError`] when the model has no 1x1 convolutions or nothing fits.
pub fn tune_model(
    model: Model,
    platform: FpgaPlatform,
    config: SearchConfig,
    db: &mut TuningDb,
    tracer: &Tracer,
    registry: &Registry,
) -> Result<TuneOutcome, TuneError> {
    let flow = Flow::new(model, platform).with_tracer(tracer);
    let eval = FlowEvaluator::new(&flow);
    let key = eval.key(Precision::F32);
    let tuner = Tuner::new(eval.space(), config)
        .with_tracer(tracer.clone())
        .with_registry(registry.clone());
    tuner.tune(&key, db, &eval)
}

impl Flow {
    /// The tuned deployment configuration for this flow's model/platform
    /// from a tuning database, or `None` when nothing has been tuned yet.
    /// The warm path: no search, no evaluation — just a keyed lookup.
    pub fn with_tuned_config(&self, db: &TuningDb) -> Option<OptimizationConfig> {
        let graph = self.import_graph();
        let key = db_key(&graph, self.platform, Precision::F32);
        let rec = db.lookup(&key)?;
        let mut cfg = OptimizationConfig::folded(TilingPreset::Custom1x1 { tile: rec.tile });
        cfg.label = "Folded-Tuned".into();
        cfg.aoc = AocOptions::with_precision(key.precision);
        Some(cfg)
    }

    /// `base` with the tuned dataflow planner knobs (FIFO depth policy and
    /// stage cap) from the database's pipeline section, or `None` when the
    /// pipeline has not been tuned for this model/platform yet.
    pub fn with_tuned_pipeline(
        &self,
        db: &TuningDb,
        base: OptimizationConfig,
    ) -> Option<OptimizationConfig> {
        let key = db_key(&self.import_graph(), self.platform, Precision::F32);
        let opts = db.lookup_pipeline(&key)?.opts()?;
        Some(base.with_pipeline(opts))
    }
}

/// Flow-backed dataflow-pipeline evaluator: compiles the model under a
/// candidate's planner options and simulates a short batch (pipelining
/// benefits only show across images, so single-image latency would
/// under-rank deep FIFOs).
pub struct PipelineEvaluator {
    flow: Flow,
    base: OptimizationConfig,
    /// Images simulated per evaluation.
    pub batch: usize,
}

impl PipelineEvaluator {
    /// An evaluator planning `base` (a dataflow configuration) variants.
    pub fn new(flow: &Flow, base: OptimizationConfig) -> PipelineEvaluator {
        PipelineEvaluator {
            flow: flow.clone(),
            base,
            batch: 8,
        }
    }

    /// The tuning-database key this evaluator's results belong under.
    pub fn key(&self) -> DbKey {
        db_key(
            &self.flow.import_graph(),
            self.flow.platform,
            Precision::F32,
        )
    }
}

impl EvaluatePipeline for PipelineEvaluator {
    fn evaluate_pipeline(&self, opts: &PipelineOpts) -> Result<PipelineMeasured, EvalError> {
        let cfg = self.base.clone().with_pipeline(*opts);
        let d = self
            .flow
            .compile(&cfg)
            .map_err(|e| EvalError(e.to_string()))?;
        let crate::deploy::ExecutionPlan::Dataflow(plan) = &d.plan else {
            return Err(EvalError(
                "pipeline tuning requires a dataflow base configuration".to_string(),
            ));
        };
        let (saved, stages, staged) = (
            plan.summary.dram_elems_saved,
            plan.summary.pipelined_nodes,
            plan.summary.staged_nodes,
        );
        let stats = d.simulate_batch(self.batch);
        Ok(PipelineMeasured {
            seconds_per_image: stats.seconds / self.batch.max(1) as f64,
            dram_elems_saved: saved,
            pipelined_stages: stages,
            staged_nodes: staged,
        })
    }
}

/// The outcome of [`tune_pipeline`].
#[derive(Clone, Debug)]
pub struct PipelineTuneOutcome {
    /// The winning planner configuration.
    pub opts: PipelineOpts,
    /// Its database record (cached or freshly measured).
    pub record: PipelineRecord,
    /// True when the database already held the record and no search ran.
    pub from_cache: bool,
}

/// Tunes the dataflow planner for a model/platform pair in one call: warm
/// database lookup, grid search over [`pipeline_candidates`] on a miss,
/// winner recorded back into `db`. Spans land on the tuner track,
/// `pipeline_tune_*` metrics in `registry`.
///
/// # Errors
/// [`EvalError`] when no candidate plans and simulates successfully.
pub fn tune_pipeline(
    flow: &Flow,
    base: OptimizationConfig,
    db: &mut TuningDb,
    tracer: &Tracer,
    registry: &Registry,
) -> Result<PipelineTuneOutcome, EvalError> {
    let eval = PipelineEvaluator::new(flow, base);
    let key = eval.key();
    let labels = &[
        ("model", key.model.as_str()),
        ("platform", key.platform.as_str()),
    ][..];
    if let Some(rec) = db.lookup_pipeline(&key) {
        if let Some(opts) = rec.opts() {
            registry.counter_inc(
                "pipeline_tune_db_hits_total",
                "Pipeline tuning-database hits (search skipped)",
                labels,
            );
            let _g = tracer.phase_on(PID_TUNE, "tune", "pipeline-db-hit");
            return Ok(PipelineTuneOutcome {
                opts,
                record: rec.clone(),
                from_cache: true,
            });
        }
    }
    let cands = pipeline_candidates();
    let results = {
        let _g = tracer.phase_on(PID_TUNE, "tune", "pipeline-search");
        search_pipeline(&cands, &eval, 0)
    };
    registry.counter_add(
        "pipeline_tune_evaluations_total",
        "Pipeline candidate evaluations spent",
        labels,
        cands.len() as f64,
    );
    let best = best_pipeline(&results).ok_or_else(|| {
        EvalError(
            results
                .iter()
                .find_map(|r| r.as_ref().err().map(|e| e.0.clone()))
                .unwrap_or_else(|| "no pipeline candidates evaluated".to_string()),
        )
    })?;
    let m = results[best].as_ref().expect("best index is Ok");
    registry.gauge_set(
        "pipeline_tune_best_seconds_per_image",
        "Best simulated seconds/image found by the pipeline search",
        labels,
        m.seconds_per_image,
    );
    let record = record_of(&cands[best], m, cands.len());
    db.insert_pipeline(key, record.clone());
    Ok(PipelineTuneOutcome {
        opts: cands[best],
        record,
        from_cache: false,
    })
}

/// Flow-backed mixed-precision evaluator: prices per-layer assignments with
/// [`synthesize_mixed`] over the per-layer kernel set (the AOC model's
/// per-precision DSP/RAM laws) and measures accuracy by running the tensor
/// crate's mixed-precision executor against the f32 reference on a probe
/// covered by the calibration batch.
pub struct PrecisionEvaluator {
    flow: Flow,
    graph: Graph,
    calib_q: Calibration,
    kernels: Vec<Kernel>,
    probe: Tensor,
    reference: Tensor,
}

impl PrecisionEvaluator {
    /// Builds the evaluator: imports the graph, calibrates it on the spec's
    /// seeded batch, lowers the per-layer kernel set, and records the f32
    /// reference output on the first calibration sample.
    ///
    /// # Errors
    /// [`FlowError`] when calibration or kernel planning fails.
    pub fn new(flow: &Flow, spec: &QuantSpec) -> Result<PrecisionEvaluator, FlowError> {
        let graph = flow.import_graph();
        let batch = flow.calibration_batch(spec);
        let calib_q = quant::calibrate(&graph, &batch, spec.percentile)?;
        // Per-layer kernels (kernel name == node name), exactly what a
        // quantized compile lowers: shared parameterized kernels cannot
        // carry per-layer precisions.
        let mut cfg = OptimizationConfig::folded_base();
        cfg.parameterized = false;
        let plan = crate::kernels::build_folded(&graph, &cfg).map_err(FlowError::Plan)?;
        let probe = batch[0].clone();
        let reference = graph.execute(&probe);
        Ok(PrecisionEvaluator {
            flow: flow.clone(),
            graph,
            calib_q,
            kernels: plan.kernels,
            probe,
            reference,
        })
    }

    /// The searchable layers: every lowered kernel's node, minus softmax
    /// (never requantized, so a softmax "demotion" would be a no-op the
    /// search could bank illusory savings against).
    pub fn layers(&self) -> Vec<String> {
        self.kernels
            .iter()
            .filter(|k| {
                self.graph
                    .nodes
                    .iter()
                    .find(|n| n.name == k.name)
                    .is_none_or(|n| !matches!(n.op, Op::Softmax))
            })
            .map(|k| k.name.clone())
            .collect()
    }

    /// The tuning-database key this evaluator's results belong under (the
    /// f32 baseline: the per-layer rungs live inside the record).
    pub fn key(&self) -> DbKey {
        db_key(&self.graph, self.flow.platform, Precision::F32)
    }
}

impl EvaluatePrecision for PrecisionEvaluator {
    fn price(&self, assignment: &BTreeMap<String, Precision>) -> Result<PrecisionCost, EvalError> {
        let device = self.flow.platform.model();
        let opts = AocOptions::default();
        let bitstream =
            synthesize_mixed(&self.kernels, &device, &opts, assignment, &self.flow.calib)
                .map_err(|e| EvalError(e.to_string()))?;
        Ok(PrecisionCost {
            dsps: bitstream.total_resources.dsp,
            ram_blocks: bitstream.total_resources.ram,
        })
    }

    fn accuracy(&self, assignment: &BTreeMap<String, Precision>) -> Result<f64, EvalError> {
        let by_name: BTreeMap<String, QuantPrecision> = assignment
            .iter()
            .filter_map(|(layer, p)| {
                let q = match p {
                    Precision::F32 => return None,
                    Precision::Fp16 => QuantPrecision::Fp16,
                    Precision::Int16 => QuantPrecision::Int16,
                    Precision::Int8 => QuantPrecision::Int8,
                };
                Some((layer.clone(), q))
            })
            .collect();
        let out = QuantizedGraph::mixed(&self.graph, &self.calib_q, &by_name)
            .execute(&self.probe)
            .map_err(|e| EvalError(e.to_string()))?;
        Ok(out
            .data()
            .iter()
            .zip(self.reference.data())
            .map(|(a, b)| (a - b).abs() as f64)
            .fold(0.0, f64::max))
    }
}

/// The outcome of [`tune_precision`].
#[derive(Clone, Debug)]
pub struct PrecisionTuneOutcome {
    /// The accepted per-layer assignment.
    pub assignment: BTreeMap<String, Precision>,
    /// Its database record (cached or freshly searched).
    pub record: PrecisionRecord,
    /// True when the database already held the record and no search ran.
    pub from_cache: bool,
}

/// Finds a per-layer mixed-precision assignment for a model/platform pair
/// in one call: warm database lookup (zero evaluations), greedy-demotion
/// search under `error_budget` on a miss, winner recorded back into `db`.
/// `spec` supplies the calibration knobs (its `precision` rung is unused:
/// the search walks the fixed fp32 → int8 → fp16 demotion ladder).
///
/// # Errors
/// [`EvalError`] when calibration, pricing, or the mixed executor fails.
pub fn tune_precision(
    flow: &Flow,
    spec: &QuantSpec,
    error_budget: f64,
    db: &mut TuningDb,
    tracer: &Tracer,
    registry: &Registry,
) -> Result<PrecisionTuneOutcome, EvalError> {
    let key = db_key(&flow.import_graph(), flow.platform, Precision::F32);
    let labels = &[
        ("model", key.model.as_str()),
        ("platform", key.platform.as_str()),
    ][..];
    if let Some(rec) = db.lookup_mixed(&key) {
        if let Some(assignment) = rec.assignment_map() {
            registry.counter_inc(
                "precision_tune_db_hits_total",
                "Mixed-precision tuning-database hits (search skipped)",
                labels,
            );
            let _g = tracer.phase_on(PID_TUNE, "tune", "precision-db-hit");
            return Ok(PrecisionTuneOutcome {
                assignment,
                record: rec.clone(),
                from_cache: true,
            });
        }
    }
    let eval = PrecisionEvaluator::new(flow, spec).map_err(|e| EvalError(e.to_string()))?;
    let layers = eval.layers();
    let outcome = {
        let _g = tracer.phase_on(PID_TUNE, "tune", "precision-search");
        search_precision(&layers, error_budget, &eval)?
    };
    registry.counter_add(
        "precision_tune_evaluations_total",
        "Mixed-precision accuracy evaluations spent",
        labels,
        outcome.evaluations as f64,
    );
    registry.gauge_set(
        "precision_tune_best_dsps",
        "Modeled DSPs of the best mixed-precision assignment",
        labels,
        outcome.cost.dsps as f64,
    );
    let record = precision_record_of(&layers, &outcome, error_budget);
    db.insert_mixed(key, record.clone());
    Ok(PrecisionTuneOutcome {
        assignment: outcome.assignment,
        record,
        from_cache: false,
    })
}

impl Flow {
    /// The tuned per-layer precision assignment for this flow's
    /// model/platform from the database's mixed section, or `None` when the
    /// precisions have not been tuned yet. The warm path: no calibration,
    /// no search — just a keyed lookup.
    pub fn with_tuned_precisions(&self, db: &TuningDb) -> Option<BTreeMap<String, Precision>> {
        let key = db_key(&self.import_graph(), self.platform, Precision::F32);
        db.lookup_mixed(&key)?.assignment_map()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpgaccel_tune::TuneRecord;

    #[test]
    fn mobilenet_shapes_give_the_table_6_6_axis_ladders() {
        let graph = Flow::new(Model::MobileNetV1, FpgaPlatform::Arria10Gx).import_graph();
        let shapes = conv1x1_shapes(&graph);
        assert!(!shapes.is_empty());
        let eval = FlowEvaluator::new(&Flow::new(Model::MobileNetV1, FpgaPlatform::Arria10Gx));
        let (w2s, c2s, c1s) = eval.space().axis_factors();
        // Every Table 6.6 hand-picked factor is on the legal ladders.
        assert!(w2s.contains(&7));
        for &(w2, c2, c1) in crate::bitstreams::TABLE_6_6_TILINGS {
            assert!(w2s.contains(&w2) && c2s.contains(&c2) && c1s.contains(&c1));
        }
    }

    #[test]
    fn evaluator_matches_the_legacy_dse_on_one_point() {
        let flow = Flow::new(Model::MobileNetV1, FpgaPlatform::Arria10Gx);
        let eval = FlowEvaluator::new(&flow);
        let m = eval.evaluate(&Candidate::new((7, 8, 8))).unwrap();
        let legacy =
            crate::dse::sweep_1x1(Model::MobileNetV1, FpgaPlatform::Arria10Gx, &[(7, 8, 8)]);
        let l = legacy[0].result.as_ref().unwrap();
        assert_eq!(m.dsps, l.dsps);
        assert_eq!(m.fmax_mhz, l.fmax_mhz);
        assert_eq!(m.conv1x1_seconds, l.conv1x1_seconds);
        assert_eq!(m.seconds_per_image, l.seconds_per_image);
    }

    #[test]
    fn tuned_config_deploys_from_the_database_and_compiles() {
        let flow = Flow::new(Model::MobileNetV1, FpgaPlatform::Arria10Gx);
        let mut db = TuningDb::new();
        assert!(flow.with_tuned_config(&db).is_none());
        let key = db_key(&flow.import_graph(), flow.platform, Precision::F32);
        db.insert(
            key,
            TuneRecord {
                tile: (7, 8, 8),
                seconds_per_image: 0.02,
                conv1x1_seconds: 0.01,
                dsps: 504,
                fmax_mhz: 190.0,
                evaluations: 84,
            },
        );
        let cfg = flow.with_tuned_config(&db).expect("record present");
        assert_eq!(cfg.label, "Folded-Tuned");
        flow.compile(&cfg)
            .expect("tuned config compiles on the A10");
    }

    #[test]
    fn pipeline_tuning_searches_caches_and_redeploys() {
        let flow = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx);
        let base = OptimizationConfig::dataflow(TilingPreset::Naive);
        let mut db = TuningDb::new();
        assert!(flow.with_tuned_pipeline(&db, base.clone()).is_none());

        let registry = Registry::default();
        let cold =
            tune_pipeline(&flow, base.clone(), &mut db, &Tracer::disabled(), &registry).unwrap();
        assert!(!cold.from_cache);
        assert_eq!(db.pipeline_len(), 1);
        assert!(cold.record.seconds_per_image > 0.0);
        assert!(cold.record.dram_elems_saved > 0, "LeNet pipelines fully");
        let labels = &[("model", "lenet5"), ("platform", "Stratix10Sx")][..];
        assert_eq!(
            registry.value("pipeline_tune_evaluations_total", labels),
            Some(fpgaccel_tune::pipeline_candidates().len() as f64)
        );

        // Warm path: same key hits the cached record without searching.
        let warm =
            tune_pipeline(&flow, base.clone(), &mut db, &Tracer::disabled(), &registry).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.record, cold.record);

        // And the tuned knobs deploy straight from the database.
        let cfg = flow.with_tuned_pipeline(&db, base).expect("record present");
        assert_eq!(cfg.pipeline, cold.opts);
        flow.compile(&cfg).expect("tuned pipeline config compiles");
    }

    #[test]
    fn precision_tuning_demotes_caches_and_serves_warm() {
        let flow = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx);
        let spec = QuantSpec::new(fpgaccel_tensor::quant::QuantPrecision::Int8);
        let mut db = TuningDb::new();
        assert!(flow.with_tuned_precisions(&db).is_none());

        let registry = Registry::default();
        let cold =
            tune_precision(&flow, &spec, 0.05, &mut db, &Tracer::disabled(), &registry).unwrap();
        assert!(!cold.from_cache);
        assert_eq!(db.mixed_len(), 1);
        assert!(
            cold.record.dsps < cold.record.baseline_dsps,
            "mixed assignment must save modeled DSPs ({} vs {})",
            cold.record.dsps,
            cold.record.baseline_dsps
        );
        assert!(cold.record.demoted() > 0);
        assert!(cold.record.worst_error <= 0.05);
        assert!(cold.record.evaluations > 0);
        let labels = &[("model", "lenet5"), ("platform", "Stratix10Sx")][..];
        let spent = registry
            .value("precision_tune_evaluations_total", labels)
            .unwrap();
        assert_eq!(spent, cold.record.evaluations as f64);

        // Warm path: the cached record serves with zero new evaluations.
        let warm =
            tune_precision(&flow, &spec, 0.05, &mut db, &Tracer::disabled(), &registry).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.assignment, cold.assignment);
        assert_eq!(
            registry.value("precision_tune_evaluations_total", labels),
            Some(spent),
            "a cache hit must not spend evaluations"
        );
        assert_eq!(
            registry.value("precision_tune_db_hits_total", labels),
            Some(1.0)
        );

        // And the assignment deploys straight from the database.
        let assignment = flow.with_tuned_precisions(&db).expect("record present");
        assert_eq!(assignment, cold.assignment);
    }

    #[test]
    fn zero_budget_precision_tuning_stays_all_f32() {
        let flow = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx);
        let spec = QuantSpec::new(fpgaccel_tensor::quant::QuantPrecision::Int8);
        let mut db = TuningDb::new();
        let out = tune_precision(
            &flow,
            &spec,
            0.0,
            &mut db,
            &Tracer::disabled(),
            &Registry::default(),
        )
        .unwrap();
        assert_eq!(out.record.demoted(), 0);
        assert_eq!(out.record.dsps, out.record.baseline_dsps);
    }

    /// MobileNet mixed-precision tuning: host f32 + mixed executions over
    /// 224x224 inputs, so this runs in the nightly `--include-ignored` soak.
    #[test]
    #[ignore = "minutes of host-side MobileNet execution; nightly soak covers it"]
    fn mobilenet_precision_tuning_saves_dsps_within_budget() {
        let flow = Flow::new(Model::MobileNetV1, FpgaPlatform::Stratix10Sx);
        let spec = QuantSpec::new(fpgaccel_tensor::quant::QuantPrecision::Int8);
        let mut db = TuningDb::new();
        let registry = Registry::default();
        let cold =
            tune_precision(&flow, &spec, 0.05, &mut db, &Tracer::disabled(), &registry).unwrap();
        assert!(!cold.from_cache);
        assert!(
            cold.record.dsps < cold.record.baseline_dsps,
            "MobileNet mixed assignment must save modeled DSPs"
        );
        assert!(cold.record.worst_error <= 0.05);
        // Warm path serves the MobileNet assignment with zero evaluations.
        let spent = registry
            .value(
                "precision_tune_evaluations_total",
                &[("model", "mobilenet_v1"), ("platform", "Stratix10Sx")],
            )
            .unwrap();
        let warm =
            tune_precision(&flow, &spec, 0.05, &mut db, &Tracer::disabled(), &registry).unwrap();
        assert!(warm.from_cache);
        assert_eq!(
            registry.value(
                "precision_tune_evaluations_total",
                &[("model", "mobilenet_v1"), ("platform", "Stratix10Sx"),]
            ),
            Some(spent)
        );
    }

    #[test]
    fn lenet_has_nothing_to_tune() {
        let mut db = TuningDb::new();
        let err = tune_model(
            Model::LeNet5,
            FpgaPlatform::Arria10Gx,
            SearchConfig::default(),
            &mut db,
            &Tracer::disabled(),
            &Registry::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TuneError::EmptySpace(_)));
    }
}
