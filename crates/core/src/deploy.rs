//! Deployments: a synthesized accelerator plus its host execution plan,
//! coupling real tensor computation with the simulated timeline.

use crate::dataflow::{DataflowPlan, DataflowStep};
use crate::kernels::{FoldedPlan, PipelinedStage};
use crate::options::OptimizationConfig;
use fpgaccel_aoc::{report as aoc_report, BitstreamReport, Calib};
use fpgaccel_device::DeviceModel;
use fpgaccel_fault::FaultInjector;
use fpgaccel_runtime::{Breakdown, ChannelCoupling, EventRetention, LatencyQuantiles, Sim};
use fpgaccel_tensor::flops::node_flops;
use fpgaccel_tensor::graph::Graph;
use fpgaccel_tensor::Tensor;
use fpgaccel_tir::Binding;
use fpgaccel_trace::Tracer;
use std::collections::HashMap;

/// The host execution plan.
#[derive(Clone, Debug)]
pub enum ExecutionPlan {
    /// Layer-pipelined stages (§6.3.1).
    Pipelined(Vec<PipelinedStage>),
    /// Time-multiplexed parameterized kernels (§6.3.2).
    Folded(FoldedPlan),
    /// Planner-driven streaming dataflow: channel-connected segments with
    /// staged fallback through the folded pool.
    Dataflow(DataflowPlan),
}

/// One inference result.
#[derive(Clone, Debug)]
pub struct InferResult {
    /// The network output (computed with real arithmetic).
    pub output: Tensor,
    /// Simulated end-to-end latency on the FPGA, seconds (including host
    /// overheads and transfers).
    pub simulated_seconds: f64,
}

/// Statistics from a simulated batch run.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Images processed.
    pub images: usize,
    /// Simulated wall-clock seconds for the whole batch.
    pub seconds: f64,
    /// Frames per second (§6.1.2).
    pub fps: f64,
    /// Network GFLOP/s (§6.1.2: FPS x FLOPs-per-pass).
    pub gflops: f64,
    /// Event-class breakdown (Figure 6.2).
    pub breakdown: Breakdown,
    /// Device-busy seconds per kernel.
    pub kernel_seconds: HashMap<String, f64>,
    /// FLOPs attributed to each kernel across the batch.
    pub kernel_flops: HashMap<String, u64>,
    /// Per-image completion latencies, seconds: first input-write queued to
    /// output-read end, in image order.
    pub latencies: Vec<f64>,
    /// p50/p95/p99/max over [`BatchStats::latencies`].
    pub latency: LatencyQuantiles,
    /// The simulated event timeline (for event-level analysis and the
    /// Figure 6.2-style plots). The full trace when profiling is enabled;
    /// a bounded tail of the newest events otherwise (the running
    /// aggregates above still cover the whole batch).
    pub events: Vec<fpgaccel_runtime::SimEvent>,
}

impl BatchStats {
    /// Per-kernel GFLOP/s (Tables 6.8/6.16).
    pub fn kernel_gflops(&self, kernel: &str) -> f64 {
        let secs = self.kernel_seconds.get(kernel).copied().unwrap_or(0.0);
        let flops = self.kernel_flops.get(kernel).copied().unwrap_or(0) as f64;
        if secs > 0.0 {
            flops / secs / 1e9
        } else {
            0.0
        }
    }

    /// Share of total kernel-busy time spent in a kernel (Tables 6.8/6.16).
    pub fn kernel_time_share(&self, kernel: &str) -> f64 {
        let total: f64 = self.kernel_seconds.values().sum();
        if total > 0.0 {
            self.kernel_seconds.get(kernel).copied().unwrap_or(0.0) / total
        } else {
            0.0
        }
    }
}

/// Affine batch-latency model: `seconds(n) ≈ base_s + n · per_image_s`.
///
/// Calibrated from two simulated batch sizes, it lets a scheduler predict
/// the completion time of an arbitrary batch without running the
/// discrete-event simulation — the basis for shortest-expected-completion
/// dispatch in the serving layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchLatencyModel {
    /// Fixed per-batch cost, seconds (first-image fill + host setup).
    pub base_s: f64,
    /// Marginal steady-state cost per additional image, seconds.
    pub per_image_s: f64,
}

impl BatchLatencyModel {
    /// Calibrates the model from a single-image run and a `probe`-image run
    /// (`probe ≥ 2`; larger probes average out pipeline fill).
    pub fn calibrate(d: &Deployment, probe: usize) -> BatchLatencyModel {
        let probe = probe.max(2);
        let one = d.simulate_batch(1).seconds;
        let many = d.simulate_batch(probe).seconds;
        let per_image_s = ((many - one) / (probe - 1) as f64).max(1e-12);
        BatchLatencyModel {
            base_s: (one - per_image_s).max(0.0),
            per_image_s,
        }
    }

    /// Predicted completion time for a batch of `n` images, seconds.
    pub fn seconds(&self, n: usize) -> f64 {
        self.base_s + n as f64 * self.per_image_s
    }
}

/// The quantization state a quantized compile carries into deployment: the
/// calibrated ranges every kernel's scales were derived from, and the rung.
/// Verification and the host's quantized executor both need it.
#[derive(Clone, Debug)]
pub struct DeploymentQuant {
    /// Datapath precision rung.
    pub precision: fpgaccel_tensor::quant::QuantPrecision,
    /// Calibrated per-tensor ranges (activations and weights).
    pub calib: fpgaccel_tensor::quant::Calibration,
}

/// A compiled, synthesized, deployable accelerator.
#[derive(Debug)]
pub struct Deployment {
    /// The fused network graph (functional semantics + parameters).
    pub graph: Graph,
    /// Host execution plan.
    pub plan: ExecutionPlan,
    /// Synthesis result.
    pub bitstream: BitstreamReport,
    /// Target device model.
    pub device: DeviceModel,
    /// Configuration this was compiled with.
    pub config: OptimizationConfig,
    /// Timing calibration.
    pub calib: Calib,
    /// Quantization state when compiled with [`OptimizationConfig::quant`];
    /// `None` for f32 deployments.
    pub quant: Option<DeploymentQuant>,
}

impl Deployment {
    /// Assembles a deployment from its parts. Normally produced by
    /// [`crate::Flow::compile`]; public so downstream users (and the
    /// integration tests) can deploy hand-built plans.
    pub fn new(
        graph: Graph,
        plan: ExecutionPlan,
        bitstream: BitstreamReport,
        device: DeviceModel,
        config: OptimizationConfig,
        calib: Calib,
    ) -> Self {
        Deployment {
            graph,
            plan,
            bitstream,
            device,
            config,
            calib,
            quant: None,
        }
    }

    /// The host-side quantized executor for a quantized deployment — the
    /// same grids the compiled kernels carry, run with integer MACs on the
    /// host. `None` for f32 deployments.
    pub fn quantized(&self) -> Option<fpgaccel_tensor::quant::QuantizedGraph<'_>> {
        self.quant.as_ref().map(|q| {
            fpgaccel_tensor::quant::QuantizedGraph::new(&self.graph, &q.calib, q.precision)
        })
    }

    /// Network FLOPs per forward pass.
    pub fn flops(&self) -> u64 {
        fpgaccel_tensor::flops::graph_flops(&self.graph)
    }

    /// One-line Quartus-style fit summary.
    pub fn fit_summary(&self) -> String {
        aoc_report::fit_summary(&self.bitstream)
    }

    /// Full fit report.
    pub fn fit_report(&self) -> String {
        aoc_report::full_report(&self.bitstream)
    }

    /// One-time deployment cost: transferring all network parameters to
    /// device global memory.
    pub fn setup_seconds(&self) -> f64 {
        let bytes = 4 * self.graph.param_count() as u64;
        self.device
            .link
            .transfer_seconds(bytes, fpgaccel_device::TransferDir::Write)
    }

    /// Runs one inference: real output tensor + simulated single-image
    /// latency.
    pub fn infer(&self, input: &Tensor) -> InferResult {
        let output = self.graph.execute(input);
        let stats = self.simulate_batch(1);
        InferResult {
            output,
            simulated_seconds: stats.seconds,
        }
    }

    /// Classifies an input.
    pub fn classify(&self, input: &Tensor) -> usize {
        self.graph.execute(input).argmax()
    }

    /// Simulates a steady-state batch of `n` images through the host plan
    /// and collects throughput statistics.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn simulate_batch(&self, n: usize) -> BatchStats {
        self.simulate_batch_traced(n, &Tracer::disabled(), "")
    }

    /// [`Deployment::simulate_batch`] with every simulated OpenCL event
    /// also recorded on `tracer` as nested queued/submit/run slices, under
    /// a device track group named `label` (see `fpgaccel_runtime::timeline`).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn simulate_batch_traced(&self, n: usize, tracer: &Tracer, label: &str) -> BatchStats {
        self.simulate_batch_full(n, tracer, label, &FaultInjector::disabled(), "")
    }

    /// [`Deployment::simulate_batch`] under a fault injector: transfers see
    /// the plan's active stalls and kernels see pending device hangs, both
    /// addressed to `target` in the injector's time view. A hung batch comes
    /// back with `seconds >= fpgaccel_fault::HANG_WATCHDOG_S`, which is how
    /// callers distinguish "device hung" from "batch was slow".
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn simulate_batch_faulted(
        &self,
        n: usize,
        injector: &FaultInjector,
        target: &str,
    ) -> BatchStats {
        self.simulate_batch_full(n, &Tracer::disabled(), "", injector, target)
    }

    fn simulate_batch_full(
        &self,
        n: usize,
        tracer: &Tracer,
        label: &str,
        injector: &FaultInjector,
        fault_target: &str,
    ) -> BatchStats {
        assert!(n > 0, "batch must contain at least one image");
        let mut sim = Sim::new(
            self.device.clone(),
            self.config.aoc,
            self.calib.clone(),
            self.bitstream.fmax_mhz,
        );
        sim.profiling = self.config.profiling;
        if tracer.is_enabled() {
            let label = if label.is_empty() {
                format!("{} {} x{}", self.device.platform, self.config.label, n)
            } else {
                label.to_string()
            };
            sim.set_tracer(tracer, &label);
        }
        if injector.is_enabled() {
            sim.set_fault_injector(injector, fault_target);
        }
        // Profiling analyses need the full timeline; otherwise keep only a
        // window of the newest events (all dependencies stay within the
        // current image) so long serving runs use bounded memory.
        let per_image = 2 + match &self.plan {
            ExecutionPlan::Pipelined(stages) => stages.len(),
            ExecutionPlan::Folded(plan) => plan.invocations.len(),
            ExecutionPlan::Dataflow(plan) => plan.ops_per_image(),
        };
        if !self.config.profiling {
            sim.retention = EventRetention::Recent((2 * per_image).max(64));
        }
        let in_bytes = 4 * self.graph.input_shape().numel() as u64;
        let out_bytes = 4 * self.graph.nodes[self.graph.output].out_shape.numel() as u64;

        // Map kernel name -> flops per single invocation set, accumulated
        // while enqueueing.
        let mut kernel_flops: HashMap<String, u64> = HashMap::new();
        // Per-image completion latency: every event's timestamps are fixed
        // at enqueue time, so each image's latency is known as soon as its
        // read-back is enqueued.
        let mut latencies: Vec<f64> = Vec::with_capacity(n);

        match &self.plan {
            ExecutionPlan::Pipelined(stages) => {
                let q_io = sim.create_queue();
                // The custom host uses a separate queue for read-backs so
                // input writes of image i+1 overlap output reads of image i
                // (§5.2 asynchronous enqueuing).
                let q_read = if self.config.concurrent {
                    sim.create_queue()
                } else {
                    q_io
                };
                let queues: Vec<_> = stages
                    .iter()
                    .map(|_| {
                        if self.config.concurrent {
                            sim.create_queue()
                        } else {
                            q_io
                        }
                    })
                    .collect();
                // Without channels, cross-queue dependencies can only be
                // enforced through CL events the host waits on, so
                // concurrency buys nothing for a global-memory chain (§4.8:
                // kernels "may also be synchronized in software using CL
                // events"; Figure 6.1 shows CE paying off only on the
                // channel-enabled bitstreams).
                let serial_sync =
                    !self.config.concurrent || !self.config.channels || self.config.profiling;
                for _ in 0..n {
                    let write_ev = sim.enqueue_write(q_io, "input", in_bytes, &[]);
                    let mut prev = write_ev;
                    let mut prev_is_transfer = true;
                    for (stage, &q) in stages.iter().zip(&queues) {
                        let report = self.bitstream.kernel(&stage.kernel.name);
                        let flops = node_flops(&self.graph, &self.graph.nodes[stage.node_id]);
                        *kernel_flops.entry(stage.kernel.name.clone()).or_default() += flops;
                        let ev = if stage.autorun {
                            sim.autorun_stage(report, &Binding::empty(), &[prev])
                        } else if self.config.channels && !prev_is_transfer {
                            sim.enqueue_kernel(q, report, &Binding::empty(), &[], &[prev])
                        } else {
                            sim.enqueue_kernel(q, report, &Binding::empty(), &[prev], &[])
                        };
                        if serial_sync {
                            sim.wait(ev);
                        }
                        prev = ev;
                        prev_is_transfer = false;
                    }
                    let read_ev = sim.enqueue_read(q_read, "output", out_bytes, &[prev]);
                    latencies.push(sim.event(read_ev).end - sim.event(write_ev).queued);
                    if !serial_sync {
                        // Even the asynchronous host must process each
                        // image's completion (result retrieval/verification,
                        // §5.2) — one task-overhead per image.
                        sim.host_work(self.calib.task_overhead(self.device.platform));
                    } else {
                        sim.wait(read_ev);
                    }
                }
            }
            ExecutionPlan::Folded(plan) => {
                let q = sim.create_queue();
                for _ in 0..n {
                    let write_ev = sim.enqueue_write(q, "input", in_bytes, &[]);
                    let mut prev = write_ev;
                    for inv in &plan.invocations {
                        let report = self.bitstream.kernel(&inv.kernel_name);
                        let flops = node_flops(&self.graph, &self.graph.nodes[inv.node_id]);
                        *kernel_flops.entry(inv.kernel_name.clone()).or_default() += flops;
                        prev = sim.enqueue_kernel(q, report, &inv.binding, &[prev], &[]);
                    }
                    let read_ev = sim.enqueue_read(q, "output", out_bytes, &[prev]);
                    latencies.push(sim.event(read_ev).end - sim.event(write_ev).queued);
                    sim.wait(read_ev);
                }
            }
            ExecutionPlan::Dataflow(plan) => {
                let q_io = sim.create_queue();
                let q_read = if self.config.concurrent {
                    sim.create_queue()
                } else {
                    q_io
                };
                // One queue per concurrently resident stage; each staged
                // run shares one queue (its invocations serialize through
                // global memory anyway).
                let step_queues: Vec<Vec<usize>> = plan
                    .steps
                    .iter()
                    .map(|step| {
                        let lanes = match step {
                            DataflowStep::Segment(stages) => stages.len(),
                            DataflowStep::Staged(_) => 1,
                        };
                        (0..lanes)
                            .map(|_| {
                                if self.config.concurrent {
                                    sim.create_queue()
                                } else {
                                    q_io
                                }
                            })
                            .collect()
                    })
                    .collect();
                let serial_sync =
                    !self.config.concurrent || !self.config.channels || self.config.profiling;
                for _ in 0..n {
                    let write_ev = sim.enqueue_write(q_io, "input", in_bytes, &[]);
                    // Boundary event: the last write into global memory the
                    // next step must observe.
                    let mut prev = write_ev;
                    for (step, queues) in plan.steps.iter().zip(&step_queues) {
                        match step {
                            DataflowStep::Segment(stages) => {
                                let mut prev_ev = prev;
                                for (stage, &q) in stages.iter().zip(queues) {
                                    let report = self.bitstream.kernel(&stage.kernel.name);
                                    let flops =
                                        node_flops(&self.graph, &self.graph.nodes[stage.node_id]);
                                    *kernel_flops.entry(stage.kernel.name.clone()).or_default() +=
                                        flops;
                                    let ev = match &stage.coupling {
                                        Some(c) => {
                                            let coupling = ChannelCoupling {
                                                producer: prev_ev,
                                                depth: c.depth,
                                                produced: c.produced,
                                                fill: c.fill,
                                            };
                                            if stage.autorun {
                                                sim.autorun_coupled(
                                                    report,
                                                    &Binding::empty(),
                                                    coupling,
                                                )
                                            } else {
                                                sim.enqueue_piped(
                                                    q,
                                                    report,
                                                    &Binding::empty(),
                                                    &[],
                                                    coupling,
                                                )
                                            }
                                        }
                                        // The segment head reads its input
                                        // from global memory.
                                        None => sim.enqueue_kernel(
                                            q,
                                            report,
                                            &Binding::empty(),
                                            &[prev],
                                            &[],
                                        ),
                                    };
                                    if serial_sync {
                                        sim.wait(ev);
                                    }
                                    prev_ev = ev;
                                }
                                prev = prev_ev;
                            }
                            DataflowStep::Staged(invs) => {
                                let q = queues[0];
                                for inv in invs {
                                    let report = self.bitstream.kernel(&inv.kernel_name);
                                    let flops =
                                        node_flops(&self.graph, &self.graph.nodes[inv.node_id]);
                                    *kernel_flops.entry(inv.kernel_name.clone()).or_default() +=
                                        flops;
                                    prev =
                                        sim.enqueue_kernel(q, report, &inv.binding, &[prev], &[]);
                                    if serial_sync {
                                        sim.wait(prev);
                                    }
                                }
                            }
                        }
                    }
                    let read_ev = sim.enqueue_read(q_read, "output", out_bytes, &[prev]);
                    latencies.push(sim.event(read_ev).end - sim.event(write_ev).queued);
                    if !serial_sync {
                        sim.host_work(self.calib.task_overhead(self.device.platform));
                    } else {
                        sim.wait(read_ev);
                    }
                }
            }
        }
        sim.finish();

        let seconds = sim.last_event_end().max(sim.now());
        let breakdown: Breakdown = sim.breakdown();
        let kernel_seconds = sim.kernel_seconds().clone();
        let fps = n as f64 / seconds;
        let gflops = fps * self.flops() as f64 / 1e9;
        let latency = LatencyQuantiles::of(&latencies);
        BatchStats {
            images: n,
            seconds,
            fps,
            gflops,
            breakdown,
            kernel_seconds,
            kernel_flops,
            latencies,
            latency,
            events: sim.events().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use crate::options::{OptimizationConfig, TilingPreset};
    use fpgaccel_device::FpgaPlatform;
    use fpgaccel_tensor::models::Model;
    use fpgaccel_tensor::{data, Shape};

    fn lenet(platform: FpgaPlatform, cfg: &OptimizationConfig) -> Deployment {
        Flow::new(Model::LeNet5, platform).compile(cfg).unwrap()
    }

    #[test]
    fn infer_returns_probabilities_and_time() {
        let d = lenet(
            FpgaPlatform::Stratix10Sx,
            &OptimizationConfig::tvm_autorun(),
        );
        let r = d.infer(&data::synthetic_digit(4, 0));
        assert_eq!(r.output.shape(), &Shape::d1(10));
        assert!((r.output.sum() - 1.0).abs() < 1e-5);
        assert!(r.simulated_seconds > 0.0 && r.simulated_seconds < 0.1);
    }

    #[test]
    fn faulted_batch_detects_hangs_and_is_deterministic() {
        use fpgaccel_fault::{FaultEvent, FaultKind, FaultPlan, HANG_WATCHDOG_S};
        let d = lenet(
            FpgaPlatform::Stratix10Sx,
            &OptimizationConfig::tvm_autorun().with_concurrent(),
        );
        let clean = d.simulate_batch(8);
        // Disabled injector: byte-identical to the plain path.
        let disabled = d.simulate_batch_faulted(8, &FaultInjector::disabled(), "dev");
        assert_eq!(clean.seconds, disabled.seconds);
        assert_eq!(clean.latencies, disabled.latencies);
        // A hang mid-batch pushes the batch past the watchdog.
        let plan = FaultPlan::new(
            0,
            vec![FaultEvent {
                at_s: clean.seconds * 0.5,
                target: "dev".into(),
                kind: FaultKind::DeviceHang,
            }],
        );
        let hung = d.simulate_batch_faulted(8, &FaultInjector::new(plan.clone()), "dev");
        assert!(hung.seconds >= HANG_WATCHDOG_S);
        let hung2 = d.simulate_batch_faulted(8, &FaultInjector::new(plan), "dev");
        assert_eq!(hung.seconds, hung2.seconds, "same plan, same timeline");
    }

    #[test]
    fn optimizations_ladder_improves_lenet_fps() {
        // The Figure 6.1 property: each added optimization helps, and
        // concurrent execution helps most.
        let p = FpgaPlatform::Stratix10Sx;
        let fps = |cfg: &OptimizationConfig| lenet(p, cfg).simulate_batch(64).fps;
        let base = fps(&OptimizationConfig::base());
        let unroll = fps(&OptimizationConfig::unrolling());
        let autorun = fps(&OptimizationConfig::autorun());
        let ce = fps(&OptimizationConfig::tvm_autorun().with_concurrent());
        assert!(unroll > base, "unrolling {unroll} !> base {base}");
        assert!(autorun >= unroll, "autorun {autorun} !>= unroll {unroll}");
        assert!(ce > 1.5 * autorun, "CE {ce} !>> autorun {autorun}");
        // End-to-end ladder in the thesis ballpark (9-10x on the S10SX).
        let ladder = ce / base;
        assert!(
            (3.0..40.0).contains(&ladder),
            "ladder {ladder} out of plausible range"
        );
    }

    #[test]
    fn batch_throughput_beats_single_image_latency() {
        let d = lenet(
            FpgaPlatform::Stratix10Sx,
            &OptimizationConfig::tvm_autorun().with_concurrent(),
        );
        let one = d.simulate_batch(1).seconds;
        let many = d.simulate_batch(50);
        assert!(many.seconds / 50.0 < one, "pipelining should amortize");
        assert!(many.fps > 0.0);
    }

    #[test]
    fn folded_mobilenet_profiles_per_kernel() {
        let d = Flow::new(Model::MobileNetV1, FpgaPlatform::Stratix10Sx)
            .compile(&OptimizationConfig::folded(TilingPreset::MobileNet {
                one_by_one: (7, 16, 4),
            }))
            .unwrap();
        let stats = d.simulate_batch(2);
        assert!(stats.fps > 0.1, "fps {}", stats.fps);
        // 1x1 convolutions dominate FLOPs; pads have zero FLOPs but
        // nonzero time (Table 6.8).
        let one = stats.kernel_gflops("conv2d_1x1_s1_relu6");
        assert!(one > 1.0, "1x1 gflops {one}");
        assert_eq!(stats.kernel_gflops("pad_any"), 0.0);
        assert!(stats.kernel_time_share("pad_any") > 0.02);
        let share_sum: f64 = stats
            .kernel_seconds
            .keys()
            .map(|k| stats.kernel_time_share(k))
            .sum();
        assert!((share_sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn batch_latencies_have_sane_quantiles() {
        let d = lenet(
            FpgaPlatform::Stratix10Sx,
            &OptimizationConfig::tvm_autorun().with_concurrent(),
        );
        let stats = d.simulate_batch(64);
        assert_eq!(stats.latencies.len(), 64);
        assert!(stats.latencies.iter().all(|&l| l > 0.0));
        let q = stats.latency;
        assert!(q.p50 > 0.0);
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99 && q.p99 <= q.max);
        // Every per-image latency fits within the whole batch span.
        assert!(q.max <= stats.seconds);
    }

    #[test]
    fn bounded_retention_leaves_aggregates_unchanged() {
        // Profiling keeps the full trace; the default drops old events. The
        // throughput statistics must be identical either way.
        let p = FpgaPlatform::Stratix10Sx;
        let cfg = OptimizationConfig::tvm_autorun();
        let full = lenet(p, &cfg.clone().with_profiling()).simulate_batch(40);
        let ring = lenet(p, &cfg).simulate_batch(40);
        // Profiling itself adds host overhead, so compare the ring run
        // against its own invariants instead of the profiled timings.
        assert!(full.events.len() >= ring.events.len());
        assert_eq!(ring.latencies.len(), 40);
        assert!(ring.fps >= full.fps);
    }

    #[test]
    fn latency_model_predicts_batch_seconds() {
        let d = lenet(
            FpgaPlatform::Stratix10Sx,
            &OptimizationConfig::tvm_autorun().with_concurrent(),
        );
        let m = BatchLatencyModel::calibrate(&d, 16);
        assert!(m.base_s >= 0.0 && m.per_image_s > 0.0);
        let actual = d.simulate_batch(48).seconds;
        let predicted = m.seconds(48);
        let err = (predicted - actual).abs() / actual;
        assert!(err < 0.15, "prediction off by {:.1}%", err * 100.0);
        // More images always predicted slower.
        assert!(m.seconds(10) < m.seconds(11));
    }

    #[test]
    fn traced_compile_and_batch_record_spans() {
        let tracer = fpgaccel_trace::Tracer::enabled();
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .with_tracer(&tracer)
            .compile(&OptimizationConfig::tvm_autorun())
            .unwrap();
        let compile_spans = tracer.span_count();
        // compile, import, schedule+codegen, memory check, aoc synthesis.
        assert!(compile_spans >= 5, "got {compile_spans} flow phases");
        let stats = d.simulate_batch_traced(2, &tracer, "lenet-s10sx");
        let spans = tracer.events();
        // Three slices per simulated event, on top of the flow phases.
        assert_eq!(spans.len() - compile_spans, 3 * stats.events.len());
        // The run-slice busy time equals the live breakdown's busy time.
        let busy_us: f64 = spans
            .iter()
            .filter(|s| s.args.iter().any(|(k, v)| k == "phase" && v == "run"))
            .map(|s| s.dur_us)
            .sum();
        let live = stats.breakdown.kernel_s + stats.breakdown.write_s + stats.breakdown.read_s;
        assert!((busy_us / 1e6 - live).abs() < 1e-9);
    }

    #[test]
    fn untraced_batch_records_nothing() {
        let d = lenet(FpgaPlatform::Stratix10Sx, &OptimizationConfig::base());
        let tracer = fpgaccel_trace::Tracer::disabled();
        d.simulate_batch_traced(1, &tracer, "x");
        assert_eq!(tracer.span_count(), 0);
    }

    #[test]
    fn setup_transfers_all_parameters_once() {
        let d = lenet(FpgaPlatform::Stratix10Sx, &OptimizationConfig::base());
        let s = d.setup_seconds();
        assert!(s > 0.0 && s < 0.1);
    }
}
