//! Canned bitstream configurations matching the thesis evaluation tables.

use crate::options::{OptimizationConfig, TilingPreset};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;

/// The LeNet bitstream ladder of Table 6.4, in order: Base, Unrolling,
/// Channels, Autorun, TVM-Autorun.
pub fn lenet_ladder() -> Vec<OptimizationConfig> {
    vec![
        OptimizationConfig::base(),
        OptimizationConfig::unrolling(),
        OptimizationConfig::channels(),
        OptimizationConfig::autorun(),
        OptimizationConfig::tvm_autorun(),
    ]
}

/// The seven 1x1-convolution tiling configurations of Table 6.6
/// (`W_2vec / C_2vec / C_1vec`).
pub const TABLE_6_6_TILINGS: &[(usize, usize, usize)] = &[
    (7, 4, 8),
    (7, 4, 16),
    (7, 8, 4),
    (7, 8, 8),
    (7, 8, 16),
    (7, 16, 4),
    (7, 16, 8),
];

/// The per-platform 1x1 tiling deployed for MobileNetV1 (§6.3.2 / Table 6.7):
/// S10MX 7/32/4, S10SX 7/16/4, A10 7/8/8.
pub fn mobilenet_tile(platform: FpgaPlatform) -> (usize, usize, usize) {
    match platform {
        FpgaPlatform::Stratix10Mx => (7, 32, 4),
        FpgaPlatform::Stratix10Sx => (7, 16, 4),
        FpgaPlatform::Arria10Gx => (7, 8, 8),
    }
}

/// The optimized folded configuration for a model on a platform
/// (Tables 6.7/6.13); LeNet maps to the pipelined TVM-Autorun + CE
/// configuration of Table 6.4.
pub fn optimized_config(model: Model, platform: FpgaPlatform) -> OptimizationConfig {
    match model {
        Model::LeNet5 => OptimizationConfig::tvm_autorun().with_concurrent(),
        Model::MobileNetV1 => OptimizationConfig::folded(TilingPreset::MobileNet {
            one_by_one: mobilenet_tile(platform),
        }),
        Model::ResNet18 | Model::ResNet34 => OptimizationConfig::folded(TilingPreset::ResNet),
    }
}

/// The naive baseline configuration for a model (pipelined Base for LeNet,
/// folded Base for the larger networks).
pub fn baseline_config(model: Model) -> OptimizationConfig {
    match model {
        Model::LeNet5 => OptimizationConfig::base(),
        _ => OptimizationConfig::folded_base(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_five_rungs_in_table_order() {
        let l = lenet_ladder();
        let labels: Vec<&str> = l.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["Base", "Unrolling", "Channels", "Autorun", "TVM-Autorun"]
        );
    }

    #[test]
    fn platform_tiles_match_section_6_3_2() {
        assert_eq!(mobilenet_tile(FpgaPlatform::Stratix10Mx), (7, 32, 4));
        assert_eq!(mobilenet_tile(FpgaPlatform::Stratix10Sx), (7, 16, 4));
        assert_eq!(mobilenet_tile(FpgaPlatform::Arria10Gx), (7, 8, 8));
    }

    #[test]
    fn table_6_6_has_seven_configs() {
        assert_eq!(TABLE_6_6_TILINGS.len(), 7);
        assert!(TABLE_6_6_TILINGS.iter().all(|t| t.0 == 7));
    }

    #[test]
    fn optimized_lenet_is_pipelined_concurrent() {
        let c = optimized_config(Model::LeNet5, FpgaPlatform::Stratix10Sx);
        assert!(c.concurrent && c.channels && c.autorun);
    }
}
