//! Lowering graph nodes to OpenCL kernels: per-layer kernels for pipelined
//! execution, grouped parameterized kernels for folded execution (§3.1,
//! §4.9, §5.3).

use crate::options::OptimizationConfig;
use fpgaccel_tensor::graph::{Graph, Node, NodeId, Op};
use fpgaccel_tensor::ops::Activation;
use fpgaccel_tir::compute::{
    self, ConvDims, ConvSchedule, ConvSpec, DenseSchedule, DenseSpec, EpilogueSpec, IoMode,
    PoolKind,
};
use fpgaccel_tir::{Binding, Dim, Kernel};

/// One stage of a pipelined deployment.
#[derive(Clone, Debug)]
pub struct PipelinedStage {
    /// Graph node implemented by this kernel.
    pub node_id: NodeId,
    /// The kernel.
    pub kernel: Kernel,
    /// Declared autorun (§4.7).
    pub autorun: bool,
}

/// One kernel invocation of a folded deployment.
#[derive(Clone, Debug)]
pub struct Invocation {
    /// Graph node computed by this invocation.
    pub node_id: NodeId,
    /// Kernel executed.
    pub kernel_name: String,
    /// Symbolic-dimension arguments (§5.3).
    pub binding: Binding,
}

/// The kernel set + schedule of a folded deployment.
#[derive(Clone, Debug)]
pub struct FoldedPlan {
    /// Unique kernels (parameterized conv groups, the parameterized pad,
    /// and fixed per-node kernels).
    pub kernels: Vec<Kernel>,
    /// Layer execution order.
    pub invocations: Vec<Invocation>,
}

/// Identity of a parameterized convolution group: the thesis groups
/// "convolutions with the same stride and filter size" (§4.9); activation
/// and depthwise-ness must also match because they are baked into the
/// datapath.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GroupKey {
    /// Depthwise convolution.
    pub depthwise: bool,
    /// Filter size `F`.
    pub f: usize,
    /// Stride `S`.
    pub s: usize,
    /// Fused activation.
    pub activation: Activation,
}

impl GroupKey {
    /// Kernel name for this group (e.g. `conv2d_3x3_s1_relu`).
    pub fn kernel_name(&self) -> String {
        let op = if self.depthwise {
            "conv2d_dw"
        } else {
            "conv2d"
        };
        let act = match self.activation {
            Activation::None => "id",
            Activation::Relu => "relu",
            Activation::Relu6 => "relu6",
        };
        format!("{op}_{f}x{f}_s{s}_{act}", f = self.f, s = self.s)
    }
}

/// Problems constructing a plan (tile divisibility, unsupported layouts).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanError(pub String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan error: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

pub(crate) fn conv_geometry(
    graph: &Graph,
    node: &Node,
) -> (usize, usize, usize, usize, usize, usize, bool) {
    let Op::Conv2d {
        out_channels,
        kernel,
        stride,
        pad,
        depthwise,
    } = node.op
    else {
        panic!("conv_geometry on non-conv node");
    };
    assert_eq!(
        pad, 0,
        "padding must be materialized before lowering (§3.1)"
    );
    let in_shape = &graph.nodes[node.inputs[0]].out_shape;
    (
        out_channels,
        in_shape.dim(0),
        node.out_shape.dim(1),
        node.out_shape.dim(2),
        kernel,
        stride,
        depthwise,
    )
}

pub(crate) fn epilogue_of(node: &Node) -> EpilogueSpec {
    EpilogueSpec {
        bias: node.bias.is_some(),
        bn: node.fused.bn.is_some(),
        residual: node.fused.add_from.is_some(),
        activation: node.fused.activation,
    }
}

/// Builds per-layer kernels for a pipelined deployment. The graph must be a
/// linear chain (§3.1 pipelines activations layer to layer).
///
/// # Errors
/// Returns [`PlanError`] for non-chain graphs or indivisible dense unrolls.
pub fn build_pipelined(
    graph: &Graph,
    config: &OptimizationConfig,
) -> Result<Vec<PipelinedStage>, PlanError> {
    let nodes: Vec<&Node> = graph.kernel_nodes().collect();
    // Linear-chain check: every kernel consumes exactly the previous node.
    for (i, n) in nodes.iter().enumerate() {
        if n.inputs.len() != 1 || n.fused.add_from.is_some() {
            return Err(PlanError(format!(
                "pipelined execution requires a linear chain; node `{}` has \
                 residual/multi-input structure",
                n.name
            )));
        }
        let expected_input = if i == 0 { 0 } else { nodes[i - 1].id };
        if n.inputs[0] != expected_input {
            return Err(PlanError(format!(
                "pipelined execution requires a linear chain; node `{}` skips a layer",
                n.name
            )));
        }
    }

    let last = nodes.len() - 1;
    let mut dense_seen = 0usize;
    let mut stages = Vec::with_capacity(nodes.len());
    for (i, node) in nodes.iter().enumerate() {
        let in_numel = graph.nodes[node.inputs[0]].out_shape.numel();
        let out_numel = node.out_shape.numel();
        // Channel depths sized to the producer's output feature map so the
        // FIFO never stalls the producer (§4.11).
        let io_in = if config.channels && i > 0 {
            IoMode::channel(format!("ch_{}", i - 1), in_numel)
        } else {
            IoMode::Global
        };
        let io_out = if config.channels && i < last {
            IoMode::channel(format!("ch_{i}"), out_numel)
        } else {
            IoMode::Global
        };

        let mut kernel = lower_node(graph, node, io_in, io_out, config, &mut dense_seen)?;
        let autorun = config.autorun && kernel.autorun_eligible();
        if autorun {
            kernel.mark_autorun();
        }
        stages.push(PipelinedStage {
            node_id: node.id,
            kernel,
            autorun,
        });
    }
    Ok(stages)
}

pub(crate) fn lower_node(
    graph: &Graph,
    node: &Node,
    io_in: IoMode,
    io_out: IoMode,
    config: &OptimizationConfig,
    dense_seen: &mut usize,
) -> Result<Kernel, PlanError> {
    let in_shape = &graph.nodes[node.inputs[0]].out_shape;
    Ok(match &node.op {
        Op::Conv2d { .. } => {
            let (c2, c1, h2, w2, f, s, dw) = conv_geometry(graph, node);
            let spec = ConvSpec {
                name: node.name.clone(),
                dims: ConvDims::constant(c2, c1, h2, w2, f, s)
                    .with_input(Dim::Const(in_shape.dim(1)), Dim::Const(in_shape.dim(2))),
                depthwise: dw,
                epilogue: epilogue_of(node),
                io_in,
                io_out,
                schedule: if config.optimized_schedules {
                    ConvSchedule::Fused { unroll_ff: true }
                } else {
                    ConvSchedule::Base
                },
                explicit_strides: false,
            };
            compute::conv2d(&spec)
        }
        Op::Dense { units } => {
            let n = in_shape.dim(0);
            let schedule = match config.dense_unroll.get(*dense_seen) {
                Some(&factor) if config.optimized_schedules => {
                    if !n.is_multiple_of(factor) {
                        return Err(PlanError(format!(
                            "dense unroll factor {factor} does not divide N = {n} for `{}`",
                            node.name
                        )));
                    }
                    DenseSchedule::Unrolled { factor }
                }
                _ => DenseSchedule::Base,
            };
            *dense_seen += 1;
            compute::dense(&DenseSpec {
                name: node.name.clone(),
                m: Dim::Const(*units),
                n: Dim::Const(n),
                epilogue: epilogue_of(node),
                io_in,
                io_out,
                schedule,
            })
        }
        Op::MaxPool {
            window,
            stride,
            pad,
        } => {
            assert_eq!(*pad, 0, "pool padding must be materialized");
            compute::pool(
                &node.name,
                PoolKind::Max,
                in_shape.dim(0),
                in_shape.dim(1),
                in_shape.dim(2),
                *window,
                *stride,
                io_in,
                io_out,
            )
        }
        Op::AvgPool {
            window,
            stride,
            pad,
        } => {
            assert_eq!(*pad, 0, "pool padding must be materialized");
            compute::pool(
                &node.name,
                PoolKind::Avg,
                in_shape.dim(0),
                in_shape.dim(1),
                in_shape.dim(2),
                *window,
                *stride,
                io_in,
                io_out,
            )
        }
        Op::Pad { pad } => compute::pad(
            &node.name,
            in_shape.dim(0),
            in_shape.dim(1),
            in_shape.dim(2),
            *pad,
            io_in,
            io_out,
        ),
        Op::Flatten => compute::copy(&node.name, in_shape.numel(), io_in, io_out),
        Op::Softmax => compute::softmax(
            &node.name,
            in_shape.dim(0),
            io_in,
            io_out,
            config.optimized_schedules,
        ),
        other => {
            return Err(PlanError(format!(
                "op {:?} should have been fused before lowering",
                other.kind_name()
            )))
        }
    })
}

/// Builds the folded plan: parameterized conv groups keyed by
/// (depthwise, F, S, activation), one parameterized pad kernel, and fixed
/// kernels for the remaining layers.
///
/// # Errors
/// Returns [`PlanError`] when a layer's dimensions are not divisible by the
/// group's tile factors (§4.11 requirement 2).
pub fn build_folded(graph: &Graph, config: &OptimizationConfig) -> Result<FoldedPlan, PlanError> {
    build_folded_subset(graph, config, None)
}

/// [`build_folded`] restricted to a node subset: only nodes whose id is in
/// `include` (all kernel nodes when `None`) contribute groups, kernels and
/// invocations. The dataflow planner uses this to build the staged kernel
/// pool for the layers it demoted out of the pipeline.
pub(crate) fn build_folded_subset(
    graph: &Graph,
    config: &OptimizationConfig,
    include: Option<&std::collections::HashSet<NodeId>>,
) -> Result<FoldedPlan, PlanError> {
    let included = |id: NodeId| include.is_none_or(|set| set.contains(&id));
    if !config.parameterized {
        return build_folded_per_layer(graph, config, &included);
    }
    // Pass 1: collect conv groups and their epilogue unions.
    #[derive(Default, Clone)]
    struct GroupInfo {
        bias: bool,
        bn: bool,
        residual: bool,
    }
    let mut group_order: Vec<GroupKey> = Vec::new();
    let mut groups: std::collections::HashMap<GroupKey, GroupInfo> =
        std::collections::HashMap::new();
    let mut needs_pad = false;
    for node in graph.kernel_nodes() {
        if !included(node.id) {
            continue;
        }
        match &node.op {
            Op::Conv2d {
                kernel,
                stride,
                depthwise,
                ..
            } => {
                let key = GroupKey {
                    depthwise: *depthwise,
                    f: *kernel,
                    s: *stride,
                    activation: node.fused.activation,
                };
                let info = groups.entry(key).or_insert_with(|| {
                    group_order.push(key);
                    GroupInfo::default()
                });
                info.bias |= node.bias.is_some();
                info.bn |= node.fused.bn.is_some();
                info.residual |= node.fused.add_from.is_some();
            }
            Op::Pad { .. } => needs_pad = true,
            _ => {}
        }
    }

    // Pass 2: materialize group kernels.
    let mut kernels: Vec<Kernel> = Vec::new();
    for key in &group_order {
        let info = &groups[key];
        let dims = ConvDims {
            c2: Dim::sym("ff"),
            c1: if key.depthwise {
                Dim::sym("ff")
            } else {
                Dim::sym("rc")
            },
            h2: Dim::sym("hh"),
            w2: Dim::sym("ww"),
            h1: Dim::sym("ih"),
            w1: Dim::sym("iw"),
            f: key.f,
            s: key.s,
        };
        let spec = ConvSpec {
            name: key.kernel_name(),
            dims,
            depthwise: key.depthwise,
            epilogue: EpilogueSpec {
                bias: info.bias,
                bn: info.bn,
                residual: info.residual,
                activation: key.activation,
            },
            io_in: IoMode::Global,
            io_out: IoMode::Global,
            schedule: if config.optimized_schedules {
                config.tiling.schedule(key.depthwise, key.f, key.s)
            } else {
                ConvSchedule::Base
            },
            // The flow applies the Listing 5.11 stride-1 coalescing
            // workaround unless the ablation switch keeps TVM's raw
            // symbolic strides (Listing 5.10).
            explicit_strides: config.explicit_strides,
        };
        kernels.push(compute::conv2d(&spec));
    }
    if needs_pad {
        kernels.push(compute::pad_param("pad_any"));
    }

    // Pass 3: fixed kernels + the invocation schedule.
    let mut invocations = Vec::new();
    let mut dense_seen = 0usize;
    for node in graph.kernel_nodes() {
        if !included(node.id) {
            continue;
        }
        match &node.op {
            Op::Conv2d {
                kernel: f,
                stride,
                depthwise,
                ..
            } => {
                let key = GroupKey {
                    depthwise: *depthwise,
                    f: *f,
                    s: *stride,
                    activation: node.fused.activation,
                };
                let (c2, c1, h2, w2, _, _, dw) = conv_geometry(graph, node);
                if config.optimized_schedules {
                    if let ConvSchedule::Tiled {
                        w2vec,
                        c2vec,
                        c1vec,
                    } = config.tiling.schedule(key.depthwise, key.f, key.s)
                    {
                        let check = |what: &str, v: usize, tile: usize| {
                            if !v.is_multiple_of(tile) {
                                Err(PlanError(format!(
                                    "layer `{}`: {what} = {v} not divisible by tile {tile}",
                                    node.name
                                )))
                            } else {
                                Ok(())
                            }
                        };
                        check("W2", w2, w2vec)?;
                        check("C2", c2, c2vec)?;
                        if !dw {
                            check("C1", c1, c1vec)?;
                        }
                    }
                }
                let in_shape = &graph.nodes[node.inputs[0]].out_shape;
                let mut binding = Binding::empty();
                binding.set("ff", c2);
                if !dw {
                    binding.set("rc", c1);
                }
                binding.set("hh", h2);
                binding.set("ww", w2);
                binding.set("ih", in_shape.dim(1));
                binding.set("iw", in_shape.dim(2));
                invocations.push(Invocation {
                    node_id: node.id,
                    kernel_name: key.kernel_name(),
                    binding,
                });
            }
            Op::Pad { pad } => {
                let in_shape = &graph.nodes[node.inputs[0]].out_shape;
                let mut binding = Binding::empty();
                binding.set("pc", in_shape.dim(0));
                binding.set("ph", in_shape.dim(1));
                binding.set("pw", in_shape.dim(2));
                binding.set("pp", *pad);
                invocations.push(Invocation {
                    node_id: node.id,
                    kernel_name: "pad_any".into(),
                    binding,
                });
            }
            _ => {
                // Fixed single-layer kernel (pools, dense, softmax, flatten).
                let mut cfg = config.clone();
                if let Some(factor) = config.tiling.dense_unroll() {
                    let n = graph.nodes[node.inputs[0]].out_shape.dim(0);
                    cfg.dense_unroll = if config.optimized_schedules && n.is_multiple_of(factor) {
                        vec![factor; 8]
                    } else {
                        vec![]
                    };
                }
                let kernel = lower_node(
                    graph,
                    node,
                    IoMode::Global,
                    IoMode::Global,
                    &cfg,
                    &mut dense_seen,
                )?;
                invocations.push(Invocation {
                    node_id: node.id,
                    kernel_name: kernel.name.clone(),
                    binding: Binding::empty(),
                });
                kernels.push(kernel);
            }
        }
    }

    Ok(FoldedPlan {
        kernels,
        invocations,
    })
}

/// TVM's default one-kernel-per-layer folded mapping (§3.2): every node
/// gets a constant-shape kernel with global I/O. This is the naive baseline
/// whose LSU area exhausts the Arria 10 for MobileNet/ResNet.
fn build_folded_per_layer(
    graph: &Graph,
    config: &OptimizationConfig,
    included: &impl Fn(NodeId) -> bool,
) -> Result<FoldedPlan, PlanError> {
    let mut kernels = Vec::new();
    let mut invocations = Vec::new();
    let mut dense_seen = 0usize;
    for node in graph.kernel_nodes() {
        if !included(node.id) {
            continue;
        }
        let kernel = lower_node(
            graph,
            node,
            IoMode::Global,
            IoMode::Global,
            config,
            &mut dense_seen,
        )?;
        invocations.push(Invocation {
            node_id: node.id,
            kernel_name: kernel.name.clone(),
            binding: Binding::empty(),
        });
        kernels.push(kernel);
    }
    Ok(FoldedPlan {
        kernels,
        invocations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TilingPreset;
    use fpgaccel_tensor::models::Model;

    fn lenet_graph() -> Graph {
        Model::LeNet5.build().fuse().materialize_padding()
    }

    #[test]
    fn lenet_pipelined_has_nine_stages() {
        let g = lenet_graph();
        let stages = build_pipelined(&g, &OptimizationConfig::tvm_autorun()).unwrap();
        // conv1, pool1, conv2, pool2, flatten, dense1-3, softmax.
        assert_eq!(stages.len(), 9);
        // Pool and flatten stages are autorun (Table 6.4).
        let autoruns: Vec<&str> = stages
            .iter()
            .filter(|s| s.autorun)
            .map(|s| s.kernel.name.as_str())
            .collect();
        assert_eq!(autoruns, vec!["pool1", "pool2", "flatten"]);
    }

    #[test]
    fn base_config_uses_global_io_everywhere() {
        let g = lenet_graph();
        let stages = build_pipelined(&g, &OptimizationConfig::base()).unwrap();
        for s in &stages {
            assert!(s.kernel.chan_in.is_empty() && s.kernel.chan_out.is_empty());
            assert!(!s.autorun);
        }
    }

    #[test]
    fn channel_config_wires_a_chain() {
        let g = lenet_graph();
        let stages = build_pipelined(&g, &OptimizationConfig::channels()).unwrap();
        // First reads global, last writes global, interior channelized.
        assert!(stages.first().unwrap().kernel.chan_in.is_empty());
        assert!(stages.last().unwrap().kernel.chan_out.is_empty());
        for w in stages.windows(2) {
            let out = &w[0].kernel.chan_out;
            let inp = &w[1].kernel.chan_in;
            assert_eq!(out.len(), 1);
            assert_eq!(inp.len(), 1);
            assert_eq!(out[0].name, inp[0].name);
        }
    }

    #[test]
    fn resnet_rejects_pipelined_mode() {
        let g = Model::ResNet18.build().fuse().materialize_padding();
        let err = build_pipelined(&g, &OptimizationConfig::tvm_autorun()).unwrap_err();
        assert!(err.0.contains("linear chain"), "{err}");
    }

    #[test]
    fn mobilenet_folded_groups_match_table_6_7() {
        let g = Model::MobileNetV1.build().fuse().materialize_padding();
        let plan = build_folded(
            &g,
            &OptimizationConfig::folded(TilingPreset::MobileNet {
                one_by_one: (7, 16, 4),
            }),
        )
        .unwrap();
        let names: Vec<&str> = plan.kernels.iter().map(|k| k.name.as_str()).collect();
        // The parameterized groups of Table 6.7.
        assert!(names.contains(&"conv2d_1x1_s1_relu6"));
        assert!(names.contains(&"conv2d_dw_3x3_s1_relu6"));
        assert!(names.contains(&"conv2d_dw_3x3_s2_relu6"));
        assert!(names.contains(&"conv2d_3x3_s2_relu6"));
        assert!(names.contains(&"pad_any"));
        assert!(names.contains(&"fc"));
        assert!(names.contains(&"softmax"));
        // 27 convolutions collapse into 4 parameterized kernels.
        let conv_kernels = names.iter().filter(|n| n.starts_with("conv2d")).count();
        assert_eq!(conv_kernels, 4);
        // Every conv layer is an invocation of one of them.
        let conv_invocations = plan
            .invocations
            .iter()
            .filter(|i| i.kernel_name.starts_with("conv2d"))
            .count();
        assert_eq!(conv_invocations, 27);
    }

    #[test]
    fn resnet_folded_groups_match_table_6_13() {
        let g = Model::ResNet18.build().fuse().materialize_padding();
        let plan = build_folded(&g, &OptimizationConfig::folded(TilingPreset::ResNet)).unwrap();
        let names: Vec<&str> = plan.kernels.iter().map(|k| k.name.as_str()).collect();
        assert!(names.contains(&"conv2d_7x7_s2_relu"));
        assert!(names.contains(&"conv2d_3x3_s1_relu"));
        assert!(names.contains(&"conv2d_3x3_s2_relu"));
        assert!(names.contains(&"conv2d_1x1_s2_id"));
        assert!(names.contains(&"pad_any"));
        assert!(names.contains(&"pool1"));
        assert!(names.contains(&"pool"));
    }

    #[test]
    fn folded_bindings_carry_layer_shapes() {
        let g = Model::ResNet18.build().fuse().materialize_padding();
        let plan = build_folded(&g, &OptimizationConfig::folded(TilingPreset::ResNet)).unwrap();
        let conv1 = plan
            .invocations
            .iter()
            .find(|i| g.nodes[i.node_id].name == "conv1")
            .unwrap();
        assert_eq!(conv1.binding.get("ff"), 64);
        assert_eq!(conv1.binding.get("rc"), 3);
        assert_eq!(conv1.binding.get("hh"), 112);
    }

    #[test]
    fn indivisible_tiles_are_rejected() {
        let g = Model::MobileNetV1.build().fuse().materialize_padding();
        // c2vec = 48 does not divide MobileNet's 64-channel layers.
        let err = build_folded(
            &g,
            &OptimizationConfig::folded(TilingPreset::MobileNet {
                one_by_one: (7, 48, 4),
            }),
        )
        .unwrap_err();
        assert!(err.0.contains("not divisible"), "{err}");
    }

    #[test]
    fn residual_union_marks_group_kernels() {
        let g = Model::ResNet18.build().fuse().materialize_padding();
        let plan = build_folded(&g, &OptimizationConfig::folded(TilingPreset::ResNet)).unwrap();
        let k = plan
            .kernels
            .iter()
            .find(|k| k.name == "conv2d_3x3_s1_relu")
            .unwrap();
        // The group contains conv_b layers with fused residual adds, so the
        // shared kernel carries a `res` argument.
        assert!(k.bufs.iter().any(|b| b.name == "res"));
    }
}
