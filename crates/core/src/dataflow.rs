//! Streaming dataflow execution (§4.6–§4.7 taken whole-network): the
//! `fpgaccel-pipeline` planner maps maximal fused segments of the graph
//! onto channel-connected stage kernels, charging the whole deployment
//! against the device inventory at once; layers that do not fit — or cannot
//! stream — degrade gracefully into staged invocations of the parameterized
//! folded kernel pool. This module supplies the planner's two missing
//! halves: the resource [`Estimator`] (lower a node, price it with the AOC
//! synthesis model) and the materializer that turns the abstract plan into
//! kernels, channel couplings and an executable step list.

use crate::kernels::{self, Invocation, PlanError};
use crate::options::OptimizationConfig;
use fpgaccel_aoc::{synthesize_kernel, Calib};
use fpgaccel_device::{DeviceModel, Resources};
use fpgaccel_pipeline::{ChainNode, Estimator, PipelinePlan, PlanItem};
use fpgaccel_tensor::graph::{Graph, Node, NodeId, Op};
use fpgaccel_tir::compute::{
    self, ConvDims, ConvSchedule, ConvSpec, DenseSchedule, DenseSpec, IoMode, PoolKind,
};
use fpgaccel_tir::{Dim, Kernel};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// The channel FIFO between a stage and its in-segment producer, as the
/// runtime needs it: declared depth, elements crossing per image, and the
/// consumer's lookahead window.
#[derive(Clone, Copy, Debug)]
pub struct CouplingSpec {
    /// Declared FIFO depth in elements.
    pub depth: usize,
    /// Elements the producer writes per image.
    pub produced: usize,
    /// Elements the consumer must see before its first output.
    pub fill: usize,
}

/// One pipeline stage of a dataflow deployment.
#[derive(Clone, Debug)]
pub struct DataflowStage {
    /// Graph node implemented by this stage.
    pub node_id: NodeId,
    /// The stage kernel (channel I/O on in-segment edges).
    pub kernel: Kernel,
    /// Declared autorun (weight-free, channel-only stages).
    pub autorun: bool,
    /// Coupling to the previous stage in the segment (`None` for the
    /// segment head, which reads global memory).
    pub coupling: Option<CouplingSpec>,
}

/// One step of the hybrid execution order.
#[derive(Clone, Debug)]
pub enum DataflowStep {
    /// A channel-connected pipelined segment: all stages concurrently
    /// resident, overlapped per the coupling model.
    Segment(Vec<DataflowStage>),
    /// A run of staged invocations through the folded kernel pool.
    Staged(Vec<Invocation>),
}

/// A materialized dataflow plan: the executable steps, every kernel the
/// bitstream must carry, and the planner's decision record.
#[derive(Clone, Debug)]
pub struct DataflowPlan {
    /// Execution steps in network order.
    pub steps: Vec<DataflowStep>,
    /// All kernels (stage kernels + the staged pool) for synthesis.
    pub kernels: Vec<Kernel>,
    /// The planner's placement summary: segments, depths, fallbacks with
    /// structured reasons, channel/DRAM accounting.
    pub summary: PipelinePlan,
    /// Elements of activations that still cross DRAM per image (staged
    /// outputs and segment-boundary outputs, network output included).
    pub boundary_elems: u64,
}

impl DataflowPlan {
    /// Simulated events per image (stages + staged invocations).
    pub fn ops_per_image(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                DataflowStep::Segment(stages) => stages.len(),
                DataflowStep::Staged(invs) => invs.len(),
            })
            .sum()
    }
}

/// Consumer lookahead window: channel elements a stage must have buffered
/// beyond its consumption point to keep the producer from blocking. This
/// tracks how [`lower_stage`] actually consumes — activations stream in
/// `C`-major row-major order:
///
/// * Streaming depthwise/pool stages hold an `F`-row ring of *one* channel
///   and pop `S` rows between output rows: `F` rows (`F · W_1`) of cushion
///   absorbs the refill burst.
/// * Full-cache stages (dense convs, dense, softmax — §4.6 staging) pop
///   every element into local memory the moment it arrives, so one input
///   row of slack suffices; the FIFO never holds the feature map.
/// * Streaming pad buffers nothing and pops interleaved with emission.
fn fill_elems(graph: &Graph, node: &Node) -> usize {
    let in_shape = &graph.nodes[node.inputs[0]].out_shape;
    let row = in_shape.dim(in_shape.dims().len().saturating_sub(1));
    match &node.op {
        Op::Conv2d {
            kernel, depthwise, ..
        } => {
            if *depthwise {
                row * *kernel
            } else {
                row
            }
        }
        Op::MaxPool { window, .. } | Op::AvgPool { window, .. } => row * *window,
        // 1-D inputs (flatten output): a fixed small cushion.
        Op::Dense { .. } | Op::Softmax => row.min(in_shape.numel()),
        Op::Pad { .. } => row,
        Op::Flatten => 1,
        _ => row,
    }
}

/// PipeCNN-style `VEC_SIZE` for one dataflow edge: the widest `floatN`
/// channel word (N ≤ 8) that evenly divides the edge tensor's row, so every
/// streaming loop that walks rows unrolls by it cleanly. Both endpoints of
/// an edge see the same tensor and therefore agree on the word width. The
/// cap bounds the replicated datapath a consumer pays per channel word.
fn edge_width(graph: &Graph, producer: NodeId) -> usize {
    let shape = &graph.nodes[producer].out_shape;
    let row = shape.dim(shape.dims().len().saturating_sub(1));
    (2..=8usize)
        .rev()
        .find(|v| row.is_multiple_of(*v))
        .unwrap_or(1)
}

/// Lowers the graph into the planner's chain description. `linear` marks
/// nodes whose input edge can become a channel: exactly one input, no
/// residual side input, consuming the immediately preceding kernel node,
/// and that producer's output having no other consumer.
pub(crate) fn chain_of(graph: &Graph) -> Vec<ChainNode> {
    let nodes: Vec<&Node> = graph.kernel_nodes().collect();
    let mut uses: HashMap<NodeId, usize> = HashMap::new();
    for n in &nodes {
        for &i in &n.inputs {
            *uses.entry(i).or_default() += 1;
        }
        if let Some(a) = n.fused.add_from {
            *uses.entry(a).or_default() += 1;
        }
    }
    nodes
        .iter()
        .enumerate()
        .map(|(i, n)| ChainNode {
            id: n.id,
            name: n.name.clone(),
            out_numel: n.out_shape.numel(),
            fill_elems: fill_elems(graph, n),
            linear: i > 0
                && n.inputs.len() == 1
                && n.fused.add_from.is_none()
                && n.inputs[0] == nodes[i - 1].id
                && uses.get(&nodes[i - 1].id).copied().unwrap_or(0) == 1,
        })
        .collect()
}

/// Lowers one node as a dedicated pipeline stage. Unlike the per-layer
/// pipelined lowering (which always uses the fused `F×F`-unrolled
/// schedule), stages adopt the folded tiling preset when the layer's
/// dimensions divide it — the pipeline then matches the folded pool's
/// per-layer speed while dropping the global-memory round trip.
pub(crate) fn lower_stage(
    graph: &Graph,
    node: &Node,
    io_in: IoMode,
    io_out: IoMode,
    config: &OptimizationConfig,
) -> Result<Kernel, PlanError> {
    let in_shape = &graph.nodes[node.inputs[0]].out_shape;
    Ok(match &node.op {
        Op::Conv2d { .. } => {
            let (c2, c1, h2, w2, f, s, dw) = kernels::conv_geometry(graph, node);
            // §4.6 charges a full-fmap local cache for channel-input
            // kernels — the BRAM wall that kept big-fmap layers out of
            // pipelines. Depthwise convolution is a per-channel op and
            // activations stream c-major, so a ring buffer of the last F
            // input rows is all the reuse window the stage needs.
            if dw && s <= f && matches!(io_in, IoMode::Channel { .. }) {
                return Ok(compute::conv2d_dw_stream(&ConvSpec {
                    name: node.name.clone(),
                    dims: ConvDims::constant(c2, c1, h2, w2, f, s)
                        .with_input(Dim::Const(in_shape.dim(1)), Dim::Const(in_shape.dim(2))),
                    depthwise: true,
                    epilogue: kernels::epilogue_of(node),
                    io_in,
                    io_out,
                    schedule: ConvSchedule::Fused { unroll_ff: true },
                    explicit_strides: false,
                }));
            }
            // A dedicated stage does not need the full-fat engine folded
            // execution amortizes over many layers — it only needs to keep
            // up with the pipeline bottleneck. Lean schedules (a narrowed
            // 1x1 tile, plain F x F unrolling for depthwise) cut each
            // stage's ALUT/BRAM footprint severalfold, which is what lets
            // more than a couple of layers fit on the chip at once.
            let schedule = if config.optimized_schedules {
                if dw {
                    ConvSchedule::Fused { unroll_ff: true }
                } else {
                    match config.tiling.schedule(dw, f, s) {
                        ConvSchedule::Tiled {
                            w2vec,
                            c2vec,
                            c1vec,
                        } => {
                            let (c2vec, c1vec) = (c2vec.min(4), c1vec.min(4));
                            if w2.is_multiple_of(w2vec)
                                && c2.is_multiple_of(c2vec)
                                && c1.is_multiple_of(c1vec)
                            {
                                ConvSchedule::Tiled {
                                    w2vec,
                                    c2vec,
                                    c1vec,
                                }
                            } else {
                                ConvSchedule::Fused { unroll_ff: true }
                            }
                        }
                        _ => ConvSchedule::Fused { unroll_ff: true },
                    }
                }
            } else {
                ConvSchedule::Base
            };
            compute::conv2d(&ConvSpec {
                name: node.name.clone(),
                dims: ConvDims::constant(c2, c1, h2, w2, f, s)
                    .with_input(Dim::Const(in_shape.dim(1)), Dim::Const(in_shape.dim(2))),
                depthwise: dw,
                epilogue: kernels::epilogue_of(node),
                io_in,
                io_out,
                schedule,
                explicit_strides: false,
            })
        }
        Op::Dense { units } => {
            let n = in_shape.dim(0);
            let schedule = match config.tiling.dense_unroll() {
                Some(factor) if config.optimized_schedules && n.is_multiple_of(factor) => {
                    DenseSchedule::Unrolled { factor }
                }
                _ => DenseSchedule::Base,
            };
            compute::dense(&DenseSpec {
                name: node.name.clone(),
                m: Dim::Const(*units),
                n: Dim::Const(n),
                epilogue: kernels::epilogue_of(node),
                io_in,
                io_out,
                schedule,
            })
        }
        // Pool and pad are per-channel ops too: the streaming variants
        // replace the full-fmap cache with an F-row ring (pool) or nothing
        // at all (pad), and with channel output they are autorun-eligible.
        Op::MaxPool {
            window,
            stride,
            pad,
        } if *pad == 0 && *stride <= *window && matches!(io_in, IoMode::Channel { .. }) => {
            compute::pool_stream(
                &node.name,
                PoolKind::Max,
                in_shape.dim(0),
                in_shape.dim(1),
                in_shape.dim(2),
                *window,
                *stride,
                io_in,
                io_out,
            )
        }
        Op::AvgPool {
            window,
            stride,
            pad,
        } if *pad == 0 && *stride <= *window && matches!(io_in, IoMode::Channel { .. }) => {
            compute::pool_stream(
                &node.name,
                PoolKind::Avg,
                in_shape.dim(0),
                in_shape.dim(1),
                in_shape.dim(2),
                *window,
                *stride,
                io_in,
                io_out,
            )
        }
        Op::Pad { pad } if matches!(io_in, IoMode::Channel { .. }) => compute::pad_stream(
            &node.name,
            in_shape.dim(0),
            in_shape.dim(1),
            in_shape.dim(2),
            *pad,
            io_in,
            io_out,
        ),
        _ => kernels::lower_node(graph, node, io_in, io_out, config, &mut 0)?,
    })
}

/// Stage-cost memo key: (node id, channel-in depth, channel-out depth).
type StageKey = (usize, Option<usize>, Option<usize>);

/// Prices placements for the planner by lowering candidate kernels and
/// running them through the AOC synthesis resource model — the same model
/// the final [`fpgaccel_aoc::synthesize`] pass charges, so a plan that fits
/// here fits there.
struct FlowEstimator<'a> {
    graph: &'a Graph,
    config: &'a OptimizationConfig,
    device: &'a DeviceModel,
    calib: &'a Calib,
    stage_cache: RefCell<HashMap<StageKey, Resources>>,
    staged_cache: RefCell<HashMap<Vec<usize>, Resources>>,
}

impl Estimator for FlowEstimator<'_> {
    fn stage_cost(
        &self,
        id: usize,
        chan_in: Option<usize>,
        chan_out: Option<usize>,
    ) -> Result<Resources, String> {
        if let Some(r) = self.stage_cache.borrow().get(&(id, chan_in, chan_out)) {
            return Ok(*r);
        }
        let node = &self.graph.nodes[id];
        let io_in = chan_in.map_or(IoMode::Global, |d| {
            IoMode::channel_wide(
                format!("df_in_{id}"),
                d,
                edge_width(self.graph, node.inputs[0]),
            )
        });
        let io_out = chan_out.map_or(IoMode::Global, |d| {
            IoMode::channel_wide(format!("df_out_{id}"), d, edge_width(self.graph, id))
        });
        let kernel =
            lower_stage(self.graph, node, io_in, io_out, self.config).map_err(|e| e.to_string())?;
        let res = synthesize_kernel(&kernel, self.device, &self.config.aoc, self.calib).resources;
        self.stage_cache
            .borrow_mut()
            .insert((id, chan_in, chan_out), res);
        Ok(res)
    }

    fn staged_cost(&self, ids: &[usize]) -> Result<Resources, String> {
        let mut key: Vec<usize> = ids.to_vec();
        key.sort_unstable();
        if let Some(r) = self.staged_cache.borrow().get(&key) {
            return Ok(*r);
        }
        let include: HashSet<NodeId> = ids.iter().copied().collect();
        let plan = kernels::build_folded_subset(self.graph, self.config, Some(&include))
            .map_err(|e| e.to_string())?;
        let res = plan.kernels.iter().fold(Resources::default(), |acc, k| {
            acc.add(synthesize_kernel(k, self.device, &self.config.aoc, self.calib).resources)
        });
        self.staged_cache.borrow_mut().insert(key, res);
        Ok(res)
    }
}

fn chan_name(producer: NodeId) -> String {
    format!("dfch_{producer}")
}

/// Plans and materializes a dataflow deployment: runs the segment planner
/// against the device's kernel budget, then lowers pipelined segments into
/// channel-connected stage kernels and demoted layers into one shared
/// folded kernel pool.
///
/// # Errors
/// Returns [`PlanError`] when a layer cannot be lowered (the planner's
/// graceful degradation handles resource exhaustion, not lowering failures).
pub fn build_dataflow(
    graph: &Graph,
    config: &OptimizationConfig,
    device: &DeviceModel,
    calib: &Calib,
) -> Result<DataflowPlan, PlanError> {
    let chain = chain_of(graph);
    let est = FlowEstimator {
        graph,
        config,
        device,
        calib,
        stage_cache: RefCell::new(HashMap::new()),
        staged_cache: RefCell::new(HashMap::new()),
    };
    let summary = fpgaccel_pipeline::plan(&chain, &est, device.kernel_budget(), config.pipeline)
        .map_err(|e| PlanError(e.0))?;

    let produced: HashMap<NodeId, usize> = chain.iter().map(|c| (c.id, c.out_numel)).collect();
    let fills: HashMap<NodeId, usize> = chain.iter().map(|c| (c.id, c.fill_elems)).collect();

    // One folded pool shared by every staged run (grouped kernels fold
    // across all demoted layers, exactly as the planner priced them).
    let staged_ids: HashSet<NodeId> = summary
        .items
        .iter()
        .filter_map(|item| match item {
            PlanItem::Staged(ids) => Some(ids.iter().copied()),
            PlanItem::Pipelined(_) => None,
        })
        .flatten()
        .collect();
    let mut kernels: Vec<Kernel> = Vec::new();
    let mut inv_by_node: HashMap<NodeId, Invocation> = HashMap::new();
    if !staged_ids.is_empty() {
        let folded = kernels::build_folded_subset(graph, config, Some(&staged_ids))?;
        kernels.extend(folded.kernels);
        for inv in folded.invocations {
            inv_by_node.insert(inv.node_id, inv);
        }
    }

    let mut steps: Vec<DataflowStep> = Vec::new();
    let mut boundary_elems = 0u64;
    for item in &summary.items {
        match item {
            PlanItem::Pipelined(seg) => {
                let len = seg.ids.len();
                let mut stages = Vec::with_capacity(len);
                for (k, &id) in seg.ids.iter().enumerate() {
                    let node = &graph.nodes[id];
                    let io_in = if k > 0 {
                        let prev = seg.ids[k - 1];
                        IoMode::channel_wide(
                            chan_name(prev),
                            seg.depths[k - 1],
                            edge_width(graph, prev),
                        )
                    } else {
                        IoMode::Global
                    };
                    let io_out = if k + 1 < len {
                        IoMode::channel_wide(chan_name(id), seg.depths[k], edge_width(graph, id))
                    } else {
                        IoMode::Global
                    };
                    let mut kernel = lower_stage(graph, node, io_in, io_out, config)?;
                    let autorun = config.autorun && kernel.autorun_eligible();
                    if autorun {
                        kernel.mark_autorun();
                    }
                    let coupling = (k > 0).then(|| CouplingSpec {
                        depth: seg.depths[k - 1],
                        produced: produced[&seg.ids[k - 1]],
                        fill: fills[&id],
                    });
                    kernels.push(kernel.clone());
                    stages.push(DataflowStage {
                        node_id: id,
                        kernel,
                        autorun,
                        coupling,
                    });
                }
                boundary_elems += produced[seg.ids.last().expect("non-empty segment")] as u64;
                steps.push(DataflowStep::Segment(stages));
            }
            PlanItem::Staged(ids) => {
                let invs: Vec<Invocation> = ids
                    .iter()
                    .map(|id| {
                        boundary_elems += produced[id] as u64;
                        inv_by_node
                            .get(id)
                            .cloned()
                            .expect("every staged node has an invocation")
                    })
                    .collect();
                steps.push(DataflowStep::Staged(invs));
            }
        }
    }

    Ok(DataflowPlan {
        steps,
        kernels,
        summary,
        boundary_elems,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{OptimizationConfig, TilingPreset};
    use fpgaccel_pipeline::FallbackReason;
    use fpgaccel_tensor::models::Model;

    fn plan_for(model: Model, platform: fpgaccel_device::FpgaPlatform) -> DataflowPlan {
        let graph = model.build().fuse().materialize_padding();
        let config = OptimizationConfig::dataflow(match model {
            Model::MobileNetV1 => TilingPreset::MobileNet {
                one_by_one: (7, 16, 4),
            },
            _ => TilingPreset::Naive,
        });
        build_dataflow(&graph, &config, &platform.model(), &Calib::default()).unwrap()
    }

    #[test]
    fn lenet_chain_is_fully_linear_after_the_head() {
        let graph = Model::LeNet5.build().fuse().materialize_padding();
        let chain = chain_of(&graph);
        assert!(!chain[0].linear, "the head reads the network input");
        assert!(chain[1..].iter().all(|c| c.linear), "LeNet is a chain");
    }

    #[test]
    fn resnet_chain_breaks_at_residuals() {
        let graph = Model::ResNet18.build().fuse().materialize_padding();
        let chain = chain_of(&graph);
        let broken = chain.iter().filter(|c| !c.linear).count();
        assert!(broken > 4, "residual joins/forks must break the chain");
    }

    #[test]
    fn lenet_pipelines_whole_network_on_the_s10sx() {
        let plan = plan_for(Model::LeNet5, fpgaccel_device::FpgaPlatform::Stratix10Sx);
        assert_eq!(plan.summary.staged_nodes, 0, "LeNet fits as one pipeline");
        assert!(plan.summary.over_budget.is_none());
        assert!(plan.summary.dram_elems_saved > 0);
        // Boundary activations: only the network output leaves the chip.
        let graph = Model::LeNet5.build().fuse().materialize_padding();
        let out = graph.nodes[graph.output].out_shape.numel() as u64;
        assert_eq!(plan.boundary_elems, out);
    }

    #[test]
    fn mobilenet_degrades_gracefully_on_the_arria10() {
        let plan = plan_for(Model::MobileNetV1, fpgaccel_device::FpgaPlatform::Arria10Gx);
        assert!(plan.summary.staged_nodes > 0, "A10 cannot hold all stages");
        assert!(
            plan.summary.over_budget.is_none(),
            "degradation must converge to a fitting plan"
        );
        let over =
            plan.summary.fallbacks.iter().any(
                |f| matches!(f.reason, FallbackReason::OverBudget(o) if !o.limiting.is_empty()),
            );
        assert!(over, "expected a structured over-budget fallback");
    }

    #[test]
    fn staged_nodes_share_the_folded_pool() {
        let plan = plan_for(Model::MobileNetV1, fpgaccel_device::FpgaPlatform::Arria10Gx);
        let staged: Vec<&Invocation> = plan
            .steps
            .iter()
            .filter_map(|s| match s {
                DataflowStep::Staged(invs) => Some(invs.iter()),
                DataflowStep::Segment(_) => None,
            })
            .flatten()
            .collect();
        assert!(!staged.is_empty());
        // Grouped conv invocations reference shared parameterized kernels.
        let kernel_names: HashSet<&str> = plan.kernels.iter().map(|k| k.name.as_str()).collect();
        for inv in staged {
            assert!(kernel_names.contains(inv.kernel_name.as_str()));
        }
    }
}
