//! End-to-end functional verification: runs the *exact* generated kernels
//! through the IR interpreter — channels and all — and compares against the
//! reference graph execution (the "output verification" capability of the
//! custom host code, §5.2).
//!
//! This closes the loop between simulated time and real data: the kernels
//! the AOC model synthesized are the kernels whose arithmetic is checked.

use crate::deploy::{Deployment, ExecutionPlan};
use fpgaccel_tensor::graph::NodeId;
use fpgaccel_tensor::Tensor;
use fpgaccel_tir::interp::Interp;
use fpgaccel_tir::kernel::{BufRole, Kernel};
use fpgaccel_tir::Binding;
use std::collections::HashMap;

/// Verifies a deployment against the reference graph on one input.
///
/// Interprets every kernel in plan order (interpretation cost grows with
/// network FLOPs — intended for LeNet-scale networks and unit-test graphs).
///
/// # Errors
/// Returns a description of the first mismatching element, or of a missing
/// binding/buffer.
pub fn verify_deployment(d: &Deployment, input: &Tensor, rtol: f32) -> Result<(), String> {
    let activations = d.graph.execute_all(input);
    let expected = &activations[&d.graph.output];

    let mut interp = Interp::new();
    // Per-node outputs observed from the kernels themselves, and the
    // global buffer each came out of (for mismatch reports).
    let mut outputs: HashMap<NodeId, Vec<f32>> = HashMap::new();
    let mut out_bufs: HashMap<NodeId, (String, BufRole)> = HashMap::new();
    outputs.insert(0, input.data().to_vec());

    let runs: Vec<(NodeId, &Kernel, Binding)> = match &d.plan {
        ExecutionPlan::Pipelined(stages) => stages
            .iter()
            .map(|s| (s.node_id, &s.kernel, Binding::empty()))
            .collect(),
        ExecutionPlan::Folded(plan) => plan
            .invocations
            .iter()
            .map(|inv| {
                let k = plan
                    .kernels
                    .iter()
                    .find(|k| k.name == inv.kernel_name)
                    .expect("invocation kernel exists");
                (inv.node_id, k, inv.binding.clone())
            })
            .collect(),
    };

    for (node_id, kernel, binding) in runs {
        let node = &d.graph.nodes[node_id];
        let mut inputs: HashMap<String, Vec<f32>> = HashMap::new();
        for buf in kernel.global_bufs() {
            let expected_len = buf.resolved_len(&binding);
            let data: Vec<f32> = match buf.role {
                BufRole::Input => outputs
                    .get(&node.inputs[0])
                    .ok_or_else(|| format!("`{}`: producer output unavailable", node.name))?
                    .clone(),
                BufRole::Weights => node
                    .weights
                    .as_ref()
                    .ok_or_else(|| format!("`{}`: missing weights", node.name))?
                    .data()
                    .to_vec(),
                // Group kernels carry the *union* epilogue; members without
                // a given parameter bind the identity.
                BufRole::Bias => node.bias.clone().unwrap_or_else(|| vec![0.0; expected_len]),
                BufRole::BnScale => node
                    .fused
                    .bn
                    .as_ref()
                    .map(|(s, _)| s.clone())
                    .unwrap_or_else(|| vec![1.0; expected_len]),
                BufRole::BnShift => node
                    .fused
                    .bn
                    .as_ref()
                    .map(|(_, b)| b.clone())
                    .unwrap_or_else(|| vec![0.0; expected_len]),
                BufRole::Residual => match node.fused.add_from {
                    Some(src) => activations
                        .get(&src)
                        .map(|t| t.data().to_vec())
                        .ok_or_else(|| format!("`{}`: residual source missing", node.name))?,
                    None => vec![0.0; expected_len],
                },
                BufRole::Output | BufRole::Scratch => continue,
            };
            if data.len() != expected_len {
                return Err(format!(
                    "`{}`: buffer `{}` expects {expected_len} elements, got {}",
                    node.name,
                    buf.name,
                    data.len()
                ));
            }
            inputs.insert(buf.name.clone(), data);
        }

        let result = interp.run(kernel, &binding, &inputs);
        if let Some(out_buf) = kernel
            .bufs
            .iter()
            .find(|b| b.role == BufRole::Output && b.scope == fpgaccel_tir::Scope::Global)
        {
            outputs.insert(node_id, result[&out_buf.name].clone());
            out_bufs.insert(node_id, (out_buf.name.clone(), out_buf.role));
        }
    }

    let got = outputs
        .get(&d.graph.output)
        .ok_or("final kernel produced no global output")?;
    if got.len() != expected.numel() {
        return Err(format!(
            "output length mismatch: kernels {} vs graph {}",
            got.len(),
            expected.numel()
        ));
    }
    // Compare every node's observed output against its reference
    // activation, in graph order, so a mismatch is pinned to the first
    // node that diverged — not just discovered at the network output.
    let mut checked: Vec<NodeId> = outputs.keys().copied().filter(|&n| n != 0).collect();
    checked.sort_unstable();
    for node_id in checked {
        let Some(reference) = activations.get(&node_id) else {
            continue;
        };
        let observed = &outputs[&node_id];
        if observed.len() != reference.numel() {
            // Partial/tiled intermediate buffers are only comparable at
            // the network output, which the length check above covers.
            continue;
        }
        let (buf_name, buf_role) = &out_bufs[&node_id];
        for (i, (&g, &e)) in observed.iter().zip(reference.data()).enumerate() {
            let tol = 1e-4 + rtol * e.abs().max(g.abs());
            if (g - e).abs() > tol {
                return Err(format!(
                    "node {node_id} (`{}`): buffer `{buf_name}` ({buf_role:?}) element {i}: \
                     kernels {g} vs reference {e}",
                    d.graph.nodes[node_id].name
                ));
            }
        }
    }
    // Channels must drain completely — leftover elements mean a deadlocked
    // or mis-sized pipeline.
    for (name, fifo) in &interp.channels {
        if !fifo.is_empty() {
            return Err(format!(
                "channel `{name}` retained {} elements after the pass",
                fifo.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use crate::options::OptimizationConfig;
    use fpgaccel_device::FpgaPlatform;
    use fpgaccel_tensor::data;
    use fpgaccel_tensor::models::Model;

    #[test]
    fn lenet_base_kernels_compute_the_reference_output() {
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .compile(&OptimizationConfig::base())
            .unwrap();
        verify_deployment(&d, &data::synthetic_digit(2, 0), 1e-3).unwrap();
    }

    #[test]
    fn lenet_channelized_autorun_kernels_compute_the_reference_output() {
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .compile(&OptimizationConfig::tvm_autorun().with_concurrent())
            .unwrap();
        verify_deployment(&d, &data::synthetic_digit(8, 1), 1e-3).unwrap();
    }

    #[test]
    fn mismatch_reports_node_buffer_and_element() {
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .compile(&OptimizationConfig::base())
            .unwrap();
        // A negative tolerance fails every non-trivial comparison, so the
        // report must pin the *first* diverging node — with its id, the
        // buffer it came out of, and the flat element index — rather than
        // only being discovered at the network output.
        let err = verify_deployment(&d, &data::synthetic_digit(2, 0), -1.0).unwrap_err();
        assert!(err.starts_with("node "), "missing node id: {err}");
        assert!(err.contains("buffer `"), "missing buffer name: {err}");
        assert!(err.contains("(Output)"), "missing buffer role: {err}");
        assert!(err.contains("element "), "missing element index: {err}");
    }

    #[test]
    fn classification_agrees_with_reference_engine() {
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Arria10Gx)
            .compile(&OptimizationConfig::tvm_autorun())
            .unwrap();
        let engine = fpgaccel_baseline::ReferenceEngine::new(Model::LeNet5);
        for i in 0..5 {
            let x = data::synthetic_digit(i, 42);
            assert_eq!(d.classify(&x), engine.classify(&x));
        }
    }
}
