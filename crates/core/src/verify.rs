//! End-to-end functional verification: runs the *exact* generated kernels
//! through the IR interpreter — channels and all — and compares against the
//! reference graph execution (the "output verification" capability of the
//! custom host code, §5.2).
//!
//! This closes the loop between simulated time and real data: the kernels
//! the AOC model synthesized are the kernels whose arithmetic is checked.

use crate::deploy::{Deployment, ExecutionPlan};
use fpgaccel_tensor::graph::NodeId;
use fpgaccel_tensor::Tensor;
use fpgaccel_tir::interp::Interp;
use fpgaccel_tir::kernel::{BufRole, Kernel};
use fpgaccel_tir::Binding;
use std::collections::HashMap;
use std::fmt;

/// A structured verification failure: what diverged, where, and by how
/// much. `Display` renders the same messages the stringly-typed checker
/// used to produce, so logs and golden files don't churn; consumers that
/// need the payload (the serving canary, tests) match on the variant.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// A kernel's input buffer has no upstream output to bind.
    ProducerUnavailable {
        /// Name of the node whose producer output is missing.
        node: String,
    },
    /// The node needs weights but the graph carries none.
    MissingWeights {
        /// Name of the node missing weights.
        node: String,
    },
    /// A fused residual add references an activation that was never
    /// computed.
    ResidualMissing {
        /// Name of the node whose residual source is missing.
        node: String,
    },
    /// A bound buffer's data length disagrees with its declared extent.
    BufferLen {
        /// Name of the node being bound.
        node: String,
        /// Name of the mis-sized buffer.
        buf: String,
        /// Elements the kernel declares.
        expected: usize,
        /// Elements actually bound.
        got: usize,
    },
    /// No kernel wrote the graph's output buffer.
    NoOutput,
    /// The kernels produced an output of the wrong length.
    OutputLen {
        /// Elements the kernels produced.
        got: usize,
        /// Elements the reference graph expects.
        want: usize,
    },
    /// The first element-level divergence between kernels and reference.
    Mismatch {
        /// Graph node id of the first diverging node.
        node_id: NodeId,
        /// Name of that node.
        node: String,
        /// Global buffer the kernel output came out of.
        buf: String,
        /// Role of that buffer.
        role: BufRole,
        /// Flat element index of the divergence.
        index: usize,
        /// Value the kernels computed.
        got: f32,
        /// Value the reference execution computed.
        want: f32,
    },
    /// A channel retained elements after the pass — a deadlocked or
    /// mis-sized pipeline.
    ChannelResidue {
        /// Name of the non-empty channel.
        channel: String,
        /// Elements left in it.
        len: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ProducerUnavailable { node } => {
                write!(f, "`{node}`: producer output unavailable")
            }
            VerifyError::MissingWeights { node } => write!(f, "`{node}`: missing weights"),
            VerifyError::ResidualMissing { node } => {
                write!(f, "`{node}`: residual source missing")
            }
            VerifyError::BufferLen {
                node,
                buf,
                expected,
                got,
            } => write!(
                f,
                "`{node}`: buffer `{buf}` expects {expected} elements, got {got}"
            ),
            VerifyError::NoOutput => write!(f, "final kernel produced no global output"),
            VerifyError::OutputLen { got, want } => {
                write!(f, "output length mismatch: kernels {got} vs graph {want}")
            }
            VerifyError::Mismatch {
                node_id,
                node,
                buf,
                role,
                index,
                got,
                want,
            } => write!(
                f,
                "node {node_id} (`{node}`): buffer `{buf}` ({role:?}) element {index}: \
                 kernels {got} vs reference {want}"
            ),
            VerifyError::ChannelResidue { channel, len } => write!(
                f,
                "channel `{channel}` retained {len} elements after the pass"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a deployment against the reference graph on one input.
///
/// Interprets every kernel in plan order (interpretation cost grows with
/// network FLOPs — intended for LeNet-scale networks and unit-test graphs).
///
/// For a quantized deployment ([`Deployment::quant`]), the per-element
/// tolerance comes from the rung's documented policy
/// (`QuantPrecision::tolerance`) scaled by each layer's calibrated range,
/// and the f32 reference is clamped onto the calibrated grid span before
/// comparison (an ideal quantizer saturates out-of-range values by design;
/// softmax, which is never requantized, is exempt). The probe input must be
/// covered by the calibration batch — see `Flow::calibration_batch`.
///
/// # Errors
/// Returns a [`VerifyError`] pinning the first mismatching element, or the
/// missing binding/buffer.
pub fn verify_deployment(d: &Deployment, input: &Tensor, rtol: f32) -> Result<(), VerifyError> {
    let activations = d.graph.execute_all(input);
    let expected = &activations[&d.graph.output];

    let mut interp = Interp::new();
    // Per-node outputs observed from the kernels themselves, and the
    // global buffer each came out of (for mismatch reports).
    let mut outputs: HashMap<NodeId, Vec<f32>> = HashMap::new();
    let mut out_bufs: HashMap<NodeId, (String, BufRole)> = HashMap::new();
    outputs.insert(0, input.data().to_vec());

    let runs: Vec<(NodeId, &Kernel, Binding)> = match &d.plan {
        ExecutionPlan::Pipelined(stages) => stages
            .iter()
            .map(|s| (s.node_id, &s.kernel, Binding::empty()))
            .collect(),
        ExecutionPlan::Folded(plan) => plan
            .invocations
            .iter()
            .map(|inv| {
                let k = plan
                    .kernels
                    .iter()
                    .find(|k| k.name == inv.kernel_name)
                    .expect("invocation kernel exists");
                (inv.node_id, k, inv.binding.clone())
            })
            .collect(),
        ExecutionPlan::Dataflow(plan) => plan
            .steps
            .iter()
            .flat_map(|step| -> Vec<(NodeId, &Kernel, Binding)> {
                match step {
                    crate::dataflow::DataflowStep::Segment(stages) => stages
                        .iter()
                        .map(|s| (s.node_id, &s.kernel, Binding::empty()))
                        .collect(),
                    crate::dataflow::DataflowStep::Staged(invs) => invs
                        .iter()
                        .map(|inv| {
                            let k = plan
                                .kernels
                                .iter()
                                .find(|k| k.name == inv.kernel_name)
                                .expect("invocation kernel exists");
                            (inv.node_id, k, inv.binding.clone())
                        })
                        .collect(),
                }
            })
            .collect(),
    };

    for (node_id, kernel, binding) in runs {
        let node = &d.graph.nodes[node_id];
        let mut inputs: HashMap<String, Vec<f32>> = HashMap::new();
        for buf in kernel.global_bufs() {
            let expected_len = buf.resolved_len(&binding);
            let data: Vec<f32> = match buf.role {
                BufRole::Input => outputs
                    .get(&node.inputs[0])
                    .ok_or_else(|| VerifyError::ProducerUnavailable {
                        node: node.name.clone(),
                    })?
                    .clone(),
                BufRole::Weights => node
                    .weights
                    .as_ref()
                    .ok_or_else(|| VerifyError::MissingWeights {
                        node: node.name.clone(),
                    })?
                    .data()
                    .to_vec(),
                // Group kernels carry the *union* epilogue; members without
                // a given parameter bind the identity.
                BufRole::Bias => node.bias.clone().unwrap_or_else(|| vec![0.0; expected_len]),
                BufRole::BnScale => node
                    .fused
                    .bn
                    .as_ref()
                    .map(|(s, _)| s.clone())
                    .unwrap_or_else(|| vec![1.0; expected_len]),
                BufRole::BnShift => node
                    .fused
                    .bn
                    .as_ref()
                    .map(|(_, b)| b.clone())
                    .unwrap_or_else(|| vec![0.0; expected_len]),
                BufRole::Residual => match node.fused.add_from {
                    Some(src) => activations
                        .get(&src)
                        .map(|t| t.data().to_vec())
                        .ok_or_else(|| VerifyError::ResidualMissing {
                            node: node.name.clone(),
                        })?,
                    None => vec![0.0; expected_len],
                },
                BufRole::Output | BufRole::Scratch => continue,
            };
            if data.len() != expected_len {
                return Err(VerifyError::BufferLen {
                    node: node.name.clone(),
                    buf: buf.name.clone(),
                    expected: expected_len,
                    got: data.len(),
                });
            }
            inputs.insert(buf.name.clone(), data);
        }

        let result = interp.run(kernel, &binding, &inputs);
        if let Some(out_buf) = kernel
            .bufs
            .iter()
            .find(|b| b.role == BufRole::Output && b.scope == fpgaccel_tir::Scope::Global)
        {
            outputs.insert(node_id, result[&out_buf.name].clone());
            out_bufs.insert(node_id, (out_buf.name.clone(), out_buf.role));
        }
    }

    let got = outputs.get(&d.graph.output).ok_or(VerifyError::NoOutput)?;
    if got.len() != expected.numel() {
        return Err(VerifyError::OutputLen {
            got: got.len(),
            want: expected.numel(),
        });
    }
    // Compare every node's observed output against its reference
    // activation, in graph order, so a mismatch is pinned to the first
    // node that diverged — not just discovered at the network output.
    let mut checked: Vec<NodeId> = outputs.keys().copied().filter(|&n| n != 0).collect();
    checked.sort_unstable();
    for node_id in checked {
        let Some(reference) = activations.get(&node_id) else {
            continue;
        };
        let observed = &outputs[&node_id];
        if observed.len() != reference.numel() {
            // Partial/tiled intermediate buffers are only comparable at
            // the network output, which the length check above covers.
            continue;
        }
        let (buf_name, buf_role) = &out_bufs[&node_id];
        // Quantized deployments compare under the rung's documented
        // per-layer tolerance, with the reference clamped onto the
        // calibrated grid span (softmax excepted — it stays f32).
        let node = &d.graph.nodes[node_id];
        let quant_tol = d.quant.as_ref().and_then(|q| {
            let range = q.calib.activation(node).ok()?;
            let (q_rtol, q_atol) = q.precision.tolerance(range);
            let clamp = (q.precision.qmax().is_some()
                && !matches!(node.op, fpgaccel_tensor::graph::Op::Softmax))
            .then_some(range.amax_clip);
            Some((q_rtol, q_atol, clamp))
        });
        for (i, (&g, &e)) in observed.iter().zip(reference.data()).enumerate() {
            let (e, tol) = match quant_tol {
                Some((q_rtol, q_atol, clamp)) => {
                    let e = match clamp {
                        Some(c) => e.clamp(-c, c),
                        None => e,
                    };
                    (e, q_atol + q_rtol * e.abs())
                }
                None => (e, 1e-4 + rtol * e.abs().max(g.abs())),
            };
            if (g - e).abs() > tol {
                return Err(VerifyError::Mismatch {
                    node_id,
                    node: node.name.clone(),
                    buf: buf_name.clone(),
                    role: *buf_role,
                    index: i,
                    got: g,
                    want: e,
                });
            }
        }
    }
    // Channels must drain completely — leftover elements mean a deadlocked
    // or mis-sized pipeline.
    for (name, fifo) in &interp.channels {
        if !fifo.is_empty() {
            return Err(VerifyError::ChannelResidue {
                channel: name.clone(),
                len: fifo.len(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;
    use crate::options::OptimizationConfig;
    use fpgaccel_device::FpgaPlatform;
    use fpgaccel_tensor::data;
    use fpgaccel_tensor::models::Model;

    #[test]
    fn lenet_base_kernels_compute_the_reference_output() {
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .compile(&OptimizationConfig::base())
            .unwrap();
        verify_deployment(&d, &data::synthetic_digit(2, 0), 1e-3).unwrap();
    }

    #[test]
    fn lenet_channelized_autorun_kernels_compute_the_reference_output() {
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .compile(&OptimizationConfig::tvm_autorun().with_concurrent())
            .unwrap();
        verify_deployment(&d, &data::synthetic_digit(8, 1), 1e-3).unwrap();
    }

    #[test]
    fn mismatch_reports_node_buffer_and_element() {
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx)
            .compile(&OptimizationConfig::base())
            .unwrap();
        // A negative tolerance fails every non-trivial comparison, so the
        // report must pin the *first* diverging node — with its id, the
        // buffer it came out of, and the flat element index — rather than
        // only being discovered at the network output.
        let err = verify_deployment(&d, &data::synthetic_digit(2, 0), -1.0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.starts_with("node "), "missing node id: {msg}");
        assert!(msg.contains("buffer `"), "missing buffer name: {msg}");
        assert!(msg.contains("(Output)"), "missing buffer role: {msg}");
        assert!(msg.contains("element "), "missing element index: {msg}");
        // The structured payload carries the same facts as the message.
        let VerifyError::Mismatch {
            node_id,
            node,
            buf,
            role,
            index,
            got,
            want,
        } = err
        else {
            panic!("expected Mismatch, got {err:?}");
        };
        assert_eq!(role, BufRole::Output);
        assert_eq!(
            msg,
            format!(
                "node {node_id} (`{node}`): buffer `{buf}` ({role:?}) element {index}: \
                 kernels {got} vs reference {want}"
            )
        );
    }

    #[test]
    fn quantized_lenet_kernels_stay_within_rung_tolerance() {
        use crate::options::QuantSpec;
        use fpgaccel_tensor::quant::QuantPrecision;
        // The compiled narrow-MAC kernels (run through the IR interpreter,
        // channels and all) agree with the f32 reference within each rung's
        // documented tolerance — pipelined and staged execution both.
        for precision in QuantPrecision::ALL {
            let spec = QuantSpec::new(precision);
            for cfg in [
                OptimizationConfig::tvm_autorun().with_quant(spec),
                OptimizationConfig::folded_base().with_quant(spec),
            ] {
                let flow = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx);
                let d = flow.compile(&cfg).unwrap();
                assert_eq!(d.quant.as_ref().unwrap().precision, precision);
                // Probe with a calibration-batch member: per-layer bounds
                // require saturation-free coverage.
                let probe = &flow.calibration_batch(&spec)[0];
                verify_deployment(&d, probe, 1e-3)
                    .unwrap_or_else(|e| panic!("{precision}/{}: {e}", cfg.label));
            }
        }
    }

    #[test]
    fn quantized_host_executor_matches_deployment_grids() {
        use crate::options::QuantSpec;
        use fpgaccel_tensor::quant::{diff_outputs, QuantPrecision};
        let spec = QuantSpec::new(QuantPrecision::Int8);
        let flow = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx);
        let d = flow
            .compile(&OptimizationConfig::folded_base().with_quant(spec))
            .unwrap();
        let probe = &flow.calibration_batch(&spec)[0];
        let qg = d.quantized().expect("quantized deployment");
        let got = qg.execute_all(probe).unwrap();
        let reference = d.graph.execute_all(probe);
        let q = d.quant.as_ref().unwrap();
        let report = diff_outputs(&d.graph, &q.calib, q.precision, &got, &reference);
        assert!(report.pass(), "{:?}", report.failures());
    }

    #[test]
    fn classification_agrees_with_reference_engine() {
        let d = Flow::new(Model::LeNet5, FpgaPlatform::Arria10Gx)
            .compile(&OptimizationConfig::tvm_autorun())
            .unwrap();
        let engine = fpgaccel_baseline::ReferenceEngine::new(Model::LeNet5);
        for i in 0..5 {
            let x = data::synthetic_digit(i, 42);
            assert_eq!(d.classify(&x), engine.classify(&x));
        }
    }
}
