//! A model-guided design-space explorer over tiling factors.
//!
//! §4.11: "A design space explorer would benefit ... We leave resource
//! modeling and exploration for a DSE to future work." With synthesis taking
//! microseconds in the AOC model instead of 5–12 hours, the exploration the
//! thesis could not afford becomes trivial. Since the `fpgaccel-tune`
//! subsystem landed, this module is a thin wrapper over the tuner's
//! *enumerative* mode: candidates are evaluated by the same
//! [`FlowEvaluator`] the guided search uses, fanned out across worker
//! threads by [`fpgaccel_tune::enumerate`], with results (and error
//! strings) identical to the original serial implementation. Used by the
//! Table 6.6/Figure 6.3 sweep and `examples/design_space.rs`.

use crate::autotune::FlowEvaluator;
use crate::flow::Flow;
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::models::Model;
use fpgaccel_tune::{enumerate, Candidate};

/// Outcome of evaluating one 1x1-convolution tiling configuration.
#[derive(Clone, Debug)]
pub struct DsePoint {
    /// `(W_2vec, C_2vec, C_1vec)`.
    pub tile: (usize, usize, usize),
    /// Successful synthesis + simulation, or the failure reason.
    pub result: Result<DseMetrics, String>,
}

/// Metrics for a successfully synthesized configuration.
#[derive(Clone, Debug)]
pub struct DseMetrics {
    /// DSP blocks used by the whole bitstream.
    pub dsps: u64,
    /// Achieved clock.
    pub fmax_mhz: f64,
    /// Utilization percentages (logic, RAM, DSP).
    pub utilization: (f64, f64, f64),
    /// Simulated seconds per image for the full network, when the complete
    /// kernel set also synthesizes on this platform.
    pub seconds_per_image: Option<f64>,
    /// Device-busy seconds of the 1x1-convolution kernel per image.
    pub conv1x1_seconds: f64,
}

/// Evaluates a list of 1x1 tiling candidates for a model/platform.
///
/// Matching the Table 6.6 methodology, each candidate is synthesized as a
/// bitstream containing *only* the parameterized 1x1-convolution kernel
/// ("We optimize a parameterized 1x1 convolution kernel ... on the
/// Arria 10", §6.3.2) and timed over all the network's 1x1 layers;
/// `seconds_per_image` additionally reports full-network latency when the
/// complete kernel set also fits.
pub fn sweep_1x1(
    model: Model,
    platform: FpgaPlatform,
    tiles: &[(usize, usize, usize)],
) -> Vec<DsePoint> {
    let eval = FlowEvaluator::new(&Flow::new(model, platform));
    let cands: Vec<Candidate> = tiles.iter().map(|&tile| Candidate::new(tile)).collect();
    enumerate(&cands, &eval, 0)
        .into_iter()
        .zip(tiles)
        .map(|(result, &tile)| DsePoint {
            tile,
            result: result
                .map(|m| DseMetrics {
                    dsps: m.dsps,
                    fmax_mhz: m.fmax_mhz,
                    utilization: m.utilization,
                    seconds_per_image: m.seconds_per_image,
                    conv1x1_seconds: m.conv1x1_seconds,
                })
                .map_err(|e| e.0),
        })
        .collect()
}

/// Picks the candidate minimizing whole-network latency among those that
/// synthesize — the selection rule of §6.3.2 ("high improvement ... without
/// severely degraded fmax") made automatic.
pub fn explore(
    model: Model,
    platform: FpgaPlatform,
    tiles: &[(usize, usize, usize)],
) -> Option<(usize, usize, usize)> {
    sweep_1x1(model, platform, tiles)
        .into_iter()
        .filter_map(|p| {
            p.result
                .ok()
                .and_then(|m| m.seconds_per_image.map(|s| (p.tile, s)))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(tile, _)| tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstreams::TABLE_6_6_TILINGS;

    #[test]
    fn sweep_reports_dsp_growth_with_tile_size() {
        let points = sweep_1x1(
            Model::MobileNetV1,
            FpgaPlatform::Arria10Gx,
            &[(7, 4, 8), (7, 8, 16)],
        );
        let m0 = points[0].result.as_ref().unwrap();
        let m1 = points[1].result.as_ref().unwrap();
        // Figure 6.3: DSPs grow with the tile, fmax drops.
        assert!(m1.dsps > 2 * m0.dsps);
        assert!(m1.fmax_mhz < m0.fmax_mhz);
    }

    #[test]
    fn explorer_picks_a_fitting_configuration() {
        let best = explore(
            Model::MobileNetV1,
            FpgaPlatform::Arria10Gx,
            TABLE_6_6_TILINGS,
        )
        .expect("at least one configuration fits the A10");
        assert!(TABLE_6_6_TILINGS.contains(&best));
        // The winner should use a non-trivial amount of parallelism.
        assert!(best.1 * best.2 >= 16, "best {best:?} too small");
    }
}
