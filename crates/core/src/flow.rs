//! The end-to-end compilation flow (Chapter 3, Figure 3.1).

use crate::dataflow::build_dataflow;
use crate::deploy::{Deployment, DeploymentQuant, ExecutionPlan};
use crate::kernels::{build_folded, build_pipelined, PlanError};
use crate::options::{ExecMode, OptimizationConfig, QuantSpec};
use fpgaccel_aoc::{synthesize, Calib, SynthesisError};
use fpgaccel_device::FpgaPlatform;
use fpgaccel_tensor::graph::{Graph, NodeId, Op};
use fpgaccel_tensor::models::Model;
use fpgaccel_tensor::quant::{self, Calibration, QuantError};
use fpgaccel_tensor::Tensor;
use fpgaccel_tir::{quantize_kernel, Kernel, KernelQuant};
use fpgaccel_trace::Tracer;
use std::collections::HashMap;

/// Why a compilation fails.
#[derive(Clone, Debug)]
pub enum FlowError {
    /// The AOC/Quartus stage failed (resources or routing).
    Synthesis(SynthesisError),
    /// The plan could not be constructed (tiling divisibility, graph shape).
    Plan(PlanError),
    /// Parameters + activations exceed device global memory (the S10MX
    /// exposes a single 256 MB HBM pseudo-channel, §6.2).
    GlobalMemory {
        /// Bytes the deployment needs resident.
        required: u64,
        /// Device capacity.
        available: u64,
    },
    /// Calibration/quantization failed (empty batch, zero-range tensor,
    /// non-finite activation).
    Quant(QuantError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Synthesis(e) => write!(f, "synthesis failed: {e}"),
            FlowError::Plan(e) => write!(f, "{e}"),
            FlowError::GlobalMemory {
                required,
                available,
            } => write!(
                f,
                "device global memory exhausted: deployment needs {required} bytes, \
                 device exposes {available}"
            ),
            FlowError::Quant(e) => write!(f, "quantization failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<SynthesisError> for FlowError {
    fn from(e: SynthesisError) -> Self {
        FlowError::Synthesis(e)
    }
}

impl From<PlanError> for FlowError {
    fn from(e: PlanError) -> Self {
        FlowError::Plan(e)
    }
}

impl From<QuantError> for FlowError {
    fn from(e: QuantError) -> Self {
        FlowError::Quant(e)
    }
}

/// What a flow compiles: a zoo model or a user-supplied graph.
#[derive(Clone)]
enum FlowSource {
    Model(Model),
    Graph(Box<fpgaccel_tensor::graph::Graph>),
}

/// The compilation flow: network × target platform.
#[derive(Clone)]
pub struct Flow {
    source: FlowSource,
    /// Target FPGA.
    pub platform: FpgaPlatform,
    /// AOC-model calibration (default unless overridden for ablations).
    pub calib: Calib,
    /// Span recorder for compile phases; disabled (zero-cost) by default.
    pub tracer: Tracer,
}

impl Flow {
    /// A flow for a zoo model with default calibration.
    pub fn new(model: Model, platform: FpgaPlatform) -> Self {
        Flow {
            source: FlowSource::Model(model),
            platform,
            calib: Calib::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// A flow for an arbitrary user-built network graph — the "support for
    /// arbitrary operations" the template-free approach promises (§1.1).
    /// The graph may be unfused; the flow runs the Relay-style passes.
    pub fn for_graph(graph: fpgaccel_tensor::graph::Graph, platform: FpgaPlatform) -> Self {
        Flow {
            source: FlowSource::Graph(Box::new(graph)),
            platform,
            calib: Calib::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer; subsequent [`Flow::compile`] calls record a span
    /// per flow phase (import, scheduling, memory check, synthesis).
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Runs just the frontend: model import, Relay-style fusion and padding
    /// materialization — the graph every later stage (and the auto-tuner's
    /// shape extraction) consumes.
    pub fn import_graph(&self) -> fpgaccel_tensor::graph::Graph {
        match &self.source {
            FlowSource::Model(m) => m.build(),
            FlowSource::Graph(g) => g.as_ref().clone(),
        }
        .fuse()
        .materialize_padding()
    }

    /// Compiles the model under a configuration: frontend import → fusion →
    /// padding materialization → kernel generation → AOC synthesis →
    /// deployable accelerator.
    ///
    /// # Errors
    /// Returns [`FlowError`] when the plan cannot be built or the design
    /// does not synthesize for the platform (the thesis' naive MobileNet and
    /// all ResNet deployments fail on the Arria 10, §6.4.2/§6.4.3).
    pub fn compile(&self, config: &OptimizationConfig) -> Result<Deployment, FlowError> {
        let _compile = self.tracer.phase(
            "flow",
            &format!("compile {}/{}", config.label, self.platform),
        );
        // Frontend + Relay passes (§3.1).
        let graph = {
            let _p = self.tracer.phase("flow", "import");
            self.import_graph()
        };
        let device = self.platform.model();

        let (mut plan, mut kernel_list): (ExecutionPlan, Vec<Kernel>) = {
            let _p = self.tracer.phase("flow", "schedule+codegen");
            match config.mode {
                ExecMode::Pipelined => {
                    let stages = build_pipelined(&graph, config)?;
                    let kernels = stages.iter().map(|s| s.kernel.clone()).collect();
                    (ExecutionPlan::Pipelined(stages), kernels)
                }
                ExecMode::Folded => {
                    let plan = build_folded(&graph, config)?;
                    let kernels = plan.kernels.clone();
                    (ExecutionPlan::Folded(plan), kernels)
                }
                ExecMode::Dataflow => {
                    let plan = build_dataflow(&graph, config, &device, &self.calib)?;
                    let kernels = plan.kernels.clone();
                    (ExecutionPlan::Dataflow(plan), kernels)
                }
            }
        };

        // Quantization: calibrate per-tensor ranges on the seeded batch and
        // rewrite every kernel with narrow-MAC loads and requantizing
        // boundaries (softmax stays f32).
        let quant_state = match &config.quant {
            Some(spec) => {
                let _p = self.tracer.phase("flow", "calibrate+quantize");
                let batch = self.calibration_batch(spec);
                let calib = quant::calibrate(&graph, &batch, spec.percentile)?;
                let qmap = kernel_quant_map(&graph, &plan, spec, &calib)?;
                for k in kernel_list.iter_mut() {
                    if let Some(q) = qmap.get(&k.name) {
                        *k = quantize_kernel(k, q);
                    }
                }
                apply_quant(&mut plan, &qmap);
                Some(DeploymentQuant {
                    precision: spec.precision,
                    calib,
                })
            }
            None => None,
        };

        // Device-memory budget: weights stay resident; in folded mode every
        // layer's activation buffer does too (feature maps ping-pong through
        // global memory, §3.1).
        let elem = config.aoc.precision.bytes();
        let weight_bytes = elem * graph.param_count() as u64;
        let activation_bytes: u64 = match config.mode {
            ExecMode::Pipelined => {
                // Only the network input/output live in global memory.
                elem * (graph.input_shape().numel() + graph.nodes[graph.output].out_shape.numel())
                    as u64
            }
            ExecMode::Folded => {
                elem * graph
                    .kernel_nodes()
                    .map(|n| n.out_shape.numel() as u64)
                    .sum::<u64>()
            }
            ExecMode::Dataflow => {
                // The input plus every segment boundary / staged activation
                // that still round-trips through global memory.
                let boundary = match &plan {
                    ExecutionPlan::Dataflow(p) => p.boundary_elems,
                    _ => unreachable!("Dataflow mode builds a dataflow plan"),
                };
                elem * (graph.input_shape().numel() as u64 + boundary)
            }
        };
        let required = weight_bytes + activation_bytes;
        {
            let _p = self.tracer.phase("flow", "memory check");
            if required > device.global_mem_bytes {
                return Err(FlowError::GlobalMemory {
                    required,
                    available: device.global_mem_bytes,
                });
            }
        }

        let bitstream = {
            let _p = self.tracer.phase("flow", "aoc synthesis");
            synthesize(&kernel_list, &device, &config.aoc, &self.calib)?
        };
        let mut d = Deployment::new(
            graph,
            plan,
            bitstream,
            device,
            config.clone(),
            self.calib.clone(),
        );
        d.quant = quant_state;
        Ok(d)
    }

    /// The seeded synthetic calibration batch a quantized compile of this
    /// flow uses. Public so verification and benches can probe with inputs
    /// that are *covered* by the calibration — per-layer error bounds only
    /// hold for saturation-free inputs.
    pub fn calibration_batch(&self, spec: &QuantSpec) -> Vec<Tensor> {
        fpgaccel_tensor::data::calibration_batch(
            self.import_graph().input_shape(),
            spec.calibration_samples.max(1),
            spec.calibration_seed,
        )
    }
}

/// Per-kernel quantization specs derived from the calibration: every kernel
/// node's input/weight/residual/output grids. Softmax kernels are skipped
/// (probabilities stay f32).
///
/// Quantized compiles require per-layer kernels: a parameterized group
/// shared across layers would bake one scale set into every member, so a
/// shared kernel name is a plan error.
fn kernel_quant_map(
    graph: &Graph,
    plan: &ExecutionPlan,
    spec: &QuantSpec,
    calib: &Calibration,
) -> Result<HashMap<String, KernelQuant>, FlowError> {
    let pairs: Vec<(NodeId, &str)> = match plan {
        ExecutionPlan::Pipelined(stages) => stages
            .iter()
            .map(|s| (s.node_id, s.kernel.name.as_str()))
            .collect(),
        ExecutionPlan::Folded(p) => p
            .invocations
            .iter()
            .map(|inv| (inv.node_id, inv.kernel_name.as_str()))
            .collect(),
        ExecutionPlan::Dataflow(p) => p
            .steps
            .iter()
            .flat_map(|step| -> Vec<(NodeId, &str)> {
                match step {
                    crate::dataflow::DataflowStep::Segment(stages) => stages
                        .iter()
                        .map(|s| (s.node_id, s.kernel.name.as_str()))
                        .collect(),
                    crate::dataflow::DataflowStep::Staged(invs) => invs
                        .iter()
                        .map(|inv| (inv.node_id, inv.kernel_name.as_str()))
                        .collect(),
                }
            })
            .collect(),
    };

    let mut owner: HashMap<&str, NodeId> = HashMap::new();
    let mut qmap = HashMap::new();
    for (node_id, kernel_name) in pairs {
        if let Some(&prev) = owner.get(kernel_name) {
            if prev != node_id {
                return Err(FlowError::Plan(PlanError(format!(
                    "quantized compiles require per-layer kernels; `{kernel_name}` is shared \
                     by nodes {prev} and {node_id} (set parameterized = false)"
                ))));
            }
            continue;
        }
        owner.insert(kernel_name, node_id);
        let node = &graph.nodes[node_id];
        if matches!(node.op, Op::Softmax) {
            continue;
        }
        let q = match spec.precision.qmax() {
            None => KernelQuant::half(),
            Some(qmax) => KernelQuant {
                qmax: Some(qmax),
                input_scale: calib.activation(&graph.nodes[node.inputs[0]])?.scale(qmax),
                weight_scale: if node.weights.is_some() {
                    calib.weight(node)?.scale(qmax)
                } else {
                    0.0
                },
                residual_scale: match node.fused.add_from {
                    Some(src) => calib.activation(&graph.nodes[src])?.scale(qmax),
                    None => 0.0,
                },
                output_scale: calib.activation(node)?.scale(qmax),
            },
        };
        qmap.insert(kernel_name.to_string(), q);
    }
    Ok(qmap)
}

/// Rewrites every kernel held inside the plan (plans own kernel clones
/// separate from the synthesis list).
fn apply_quant(plan: &mut ExecutionPlan, qmap: &HashMap<String, KernelQuant>) {
    let rw = |k: &mut Kernel| {
        if let Some(q) = qmap.get(&k.name) {
            *k = quantize_kernel(k, q);
        }
    };
    match plan {
        ExecutionPlan::Pipelined(stages) => {
            for s in stages {
                rw(&mut s.kernel);
            }
        }
        ExecutionPlan::Folded(p) => {
            for k in &mut p.kernels {
                rw(k);
            }
        }
        ExecutionPlan::Dataflow(p) => {
            for k in &mut p.kernels {
                rw(k);
            }
            for step in &mut p.steps {
                if let crate::dataflow::DataflowStep::Segment(stages) = step {
                    for s in stages {
                        rw(&mut s.kernel);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::TilingPreset;
    use fpgaccel_aoc::SynthesisError;

    #[test]
    fn lenet_compiles_on_every_platform() {
        for p in FpgaPlatform::ALL {
            let flow = Flow::new(Model::LeNet5, p);
            for cfg in [
                OptimizationConfig::base(),
                OptimizationConfig::tvm_autorun().with_concurrent(),
            ] {
                let d = flow
                    .compile(&cfg)
                    .unwrap_or_else(|e| panic!("LeNet/{p}/{} failed: {e}", cfg.label));
                assert!(d.bitstream.fmax_mhz > 100.0);
            }
        }
    }

    #[test]
    fn naive_mobilenet_does_not_fit_the_arria10() {
        // §6.3.2: "For the Arria 10, the network does not synthesize due to
        // insufficient board resources."
        let flow = Flow::new(Model::MobileNetV1, FpgaPlatform::Arria10Gx);
        let err = flow
            .compile(&OptimizationConfig::folded_base())
            .unwrap_err();
        match err {
            FlowError::Synthesis(SynthesisError::ResourceOverflow { .. }) => {}
            other => panic!("expected resource overflow, got {other:?}"),
        }
    }

    #[test]
    fn naive_mobilenet_fits_the_stratix_boards() {
        for p in [FpgaPlatform::Stratix10Sx, FpgaPlatform::Stratix10Mx] {
            let flow = Flow::new(Model::MobileNetV1, p);
            flow.compile(&OptimizationConfig::folded_base())
                .unwrap_or_else(|e| panic!("naive MobileNet on {p}: {e}"));
        }
    }

    #[test]
    fn optimized_mobilenet_fits_all_three_platforms() {
        // §6.3.2: parameterized kernels make the A10 deployment possible.
        for (p, tile) in [
            (FpgaPlatform::Stratix10Mx, (7, 32, 4)),
            (FpgaPlatform::Stratix10Sx, (7, 16, 4)),
            (FpgaPlatform::Arria10Gx, (7, 8, 8)),
        ] {
            let flow = Flow::new(Model::MobileNetV1, p);
            let cfg = OptimizationConfig::folded(TilingPreset::MobileNet { one_by_one: tile });
            flow.compile(&cfg)
                .unwrap_or_else(|e| panic!("optimized MobileNet on {p}: {e}"));
        }
    }

    #[test]
    fn resnet_does_not_fit_the_arria10_even_optimized() {
        // Table 6.14: ResNet never synthesizes for the A10 ("insufficient
        // BRAM", §6.4.3).
        let flow = Flow::new(Model::ResNet18, FpgaPlatform::Arria10Gx);
        for cfg in [
            OptimizationConfig::folded_base(),
            OptimizationConfig::folded(TilingPreset::ResNet),
        ] {
            assert!(
                flow.compile(&cfg).is_err(),
                "ResNet/{} should not fit the A10",
                cfg.label
            );
        }
    }

    #[test]
    fn resnet_fits_the_stratix_boards_optimized() {
        for p in [FpgaPlatform::Stratix10Sx, FpgaPlatform::Stratix10Mx] {
            for m in [Model::ResNet18, Model::ResNet34] {
                let flow = Flow::new(m, p);
                flow.compile(&OptimizationConfig::folded(TilingPreset::ResNet))
                    .unwrap_or_else(|e| panic!("{} on {p}: {e}", m.name()));
            }
        }
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use fpgaccel_tensor::graph::{Graph, Op};
    use fpgaccel_tensor::{Shape, Tensor};

    /// A network whose dense weights exceed the S10MX's single 256 MB HBM
    /// pseudo-channel is rejected before synthesis.
    #[test]
    fn oversized_weights_exhaust_s10mx_hbm_channel() {
        let mut g = Graph::new("fat", Shape::d1(8192));
        // 16384 x 8192 f32 weights = 512 MB > 256 MB.
        let w = Tensor::zeros(Shape::d2(16384, 8192));
        g.push_with_params(
            "fc",
            Op::Dense { units: 16384 },
            vec![0],
            Some(w),
            None,
            None,
        );
        let mut cfg = OptimizationConfig::folded_base();
        cfg.mode = ExecMode::Folded;
        let err = Flow::for_graph(g.clone(), FpgaPlatform::Stratix10Mx)
            .compile(&cfg)
            .unwrap_err();
        assert!(
            matches!(err, FlowError::GlobalMemory { .. }),
            "expected global-memory error, got {err:?}"
        );
        // The same network fits the S10SX's 32 GB DDR4 (whether it
        // synthesizes is a separate question — it should, it's one kernel).
        Flow::for_graph(g, FpgaPlatform::Stratix10Sx)
            .compile(&cfg)
            .expect("32 GB DDR4 holds 512 MB of weights");
    }

    /// All thesis deployments fit comfortably (ResNet-34's 87 MB of weights
    /// vs the 256 MB pseudo-channel is the tightest case).
    #[test]
    fn thesis_models_fit_device_memory() {
        use crate::bitstreams::optimized_config;
        for m in [Model::MobileNetV1, Model::ResNet34] {
            let cfg = optimized_config(m, FpgaPlatform::Stratix10Mx);
            Flow::new(m, FpgaPlatform::Stratix10Mx)
                .compile(&cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        }
    }
}
