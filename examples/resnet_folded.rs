//! Folded ResNet-18/34 deployment (§6.4.3): the Table 6.13 kernel set with
//! residual connections bound through global memory, plus the limitations
//! analysis of §6.5 (LSU-bound scaling, Arria 10 BRAM exhaustion).
//!
//! ```text
//! cargo run --release --example resnet_folded
//! ```

use fpgaccel::baseline::{reference_fps, Framework};
use fpgaccel::core::bitstreams::optimized_config;
use fpgaccel::core::{Flow, FlowError};
use fpgaccel::device::FpgaPlatform;
use fpgaccel::tensor::models::Model;

fn main() {
    for model in [Model::ResNet18, Model::ResNet34] {
        println!("== {} ==", model.name());
        for platform in FpgaPlatform::ALL {
            let flow = Flow::new(model, platform);
            match flow.compile(&optimized_config(model, platform)) {
                Ok(d) => {
                    let stats = d.simulate_batch(3);
                    let tf = reference_fps(model, Framework::TfCpu);
                    println!(
                        "  {platform}: {:.2} FPS ({:.1} GFLOPS) = {:.2}x TF-CPU | {}",
                        stats.fps,
                        stats.gflops,
                        stats.fps / tf,
                        d.fit_summary()
                    );
                    // §6.5: which kernel drives routing/LSU pressure?
                    let worst = d
                        .bitstream
                        .kernels
                        .iter()
                        .max_by_key(|k| k.routing_pressure_bits())
                        .unwrap();
                    println!(
                        "    LSU-pressure-critical kernel: {} ({} weighted bits, {} LSUs)",
                        worst.name,
                        worst.routing_pressure_bits(),
                        worst.lsus.len()
                    );
                }
                Err(FlowError::Synthesis(e)) => {
                    // §6.4.3: "the network still does not synthesize [on the
                    // Arria 10] due to insufficient BRAM".
                    println!("  {platform}: DOES NOT SYNTHESIZE — {e}");
                }
                Err(e) => println!("  {platform}: {e}"),
            }
        }
        println!();
    }
    println!(
        "Thesis: ResNet is the case where the approach loses to the CPU — the\n\
         generated accelerator reaches only 0.4x of 112-thread TensorFlow because\n\
         LSU area for weights/activations prevents scaling DSP utilization (§6.5)."
    );
}
