//! The 1x1-convolution tiling design-space exploration: the Table 6.6 /
//! Figure 6.3 sweep, plus the automatic explorer the thesis leaves to
//! future work (§4.11: "We leave resource modeling and exploration for a
//! DSE to future work") — affordable here because synthesis is simulated.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use fpgaccel::core::bitstreams::TABLE_6_6_TILINGS;
use fpgaccel::core::dse::{explore, sweep_1x1};
use fpgaccel::device::FpgaPlatform;
use fpgaccel::tensor::models::Model;

fn main() {
    println!("Table 6.6 sweep on the Arria 10 (1x1-conv kernel only):");
    for p in sweep_1x1(
        Model::MobileNetV1,
        FpgaPlatform::Arria10Gx,
        TABLE_6_6_TILINGS,
    ) {
        let (w2, c2, c1) = p.tile;
        match p.result {
            Ok(m) => println!(
                "  {w2}/{c2:>2}/{c1:>2}: {:>4} DSPs, fmax {:>3.0} MHz, 1x1 time {:>6.2} ms, \
                 full net {}",
                m.dsps,
                m.fmax_mhz,
                m.conv1x1_seconds * 1e3,
                m.seconds_per_image
                    .map(|s| format!("{:.1} ms", s * 1e3))
                    .unwrap_or_else(|| "does not fit".into()),
            ),
            Err(e) => println!("  {w2}/{c2:>2}/{c1:>2}: {e}"),
        }
    }

    // The automatic explorer: a much wider candidate grid than the thesis
    // hand-picked, evaluated per platform in milliseconds.
    let mut grid = Vec::new();
    for &c2 in &[1usize, 2, 4, 8, 16, 32] {
        for &c1 in &[1usize, 2, 4, 8, 16] {
            grid.push((7usize, c2, c1));
        }
    }
    println!("\nAutomatic DSE over a {}-point grid:", grid.len());
    for platform in FpgaPlatform::ALL {
        match explore(Model::MobileNetV1, platform, &grid) {
            Some((w2, c2, c1)) => {
                println!("  {platform}: best full-network tiling = {w2}/{c2}/{c1}")
            }
            None => println!("  {platform}: no candidate fits"),
        }
    }
    println!(
        "\nThe thesis hand-picked 7/32/4, 7/16/4 and 7/8/8 for the S10MX, S10SX and\n\
         A10 (§6.3.2) under the same constraints the explorer enforces: divisibility,\n\
         fit, routing, and fmax degradation."
    );
}
