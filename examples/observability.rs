//! Observability: attach an SLO burn-rate monitor, a hot-path profiler
//! and an anomaly flight recorder to a serving run, trip the latency
//! objective, and read the resulting alert and postmortem.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! The run serves LeNet-5 on one Stratix 10 SX under a latency SLO whose
//! target sits *below* what the device can deliver, so the error budget
//! burns orders of magnitude too fast: the multi-window monitor pages,
//! the breach lands in the recovery log, and the flight recorder freezes
//! the lead-up window into a postmortem JSON document.

use fpgaccel::core::bitstreams::optimized_config;
use fpgaccel::device::FpgaPlatform;
use fpgaccel::serve::loadgen::open_loop_poisson;
use fpgaccel::serve::{AdmissionPolicy, BatchPolicy, DevicePool, ServeConfig, Server, SloPolicy};
use fpgaccel::tensor::models::Model;
use fpgaccel::trace::{FlightRecorder, HotPathProfiler, Registry};

fn main() {
    // One device, one model.
    let mut pool = DevicePool::new();
    let d = pool.add_device(FpgaPlatform::Stratix10Sx);
    pool.deploy(
        d,
        Model::LeNet5,
        &optimized_config(Model::LeNet5, FpgaPlatform::Stratix10Sx),
    )
    .expect("LeNet deploys");

    // A latency objective the hardware cannot meet: LeNet completes in
    // about a millisecond, the target demands a microsecond. 99% of
    // requests must beat the target; every one misses.
    let slo = SloPolicy::new(Model::LeNet5, 1e-6);
    println!(
        "SLO: {} p{:.0} latency <= {:.0} us, alert when both burn windows exceed {}x budget",
        Model::LeNet5.name(),
        100.0 * slo.latency_objective,
        slo.latency_target_s * 1e6,
        slo.burn_threshold,
    );

    let registry = Registry::default();
    let flight = FlightRecorder::enabled(64);
    let profiler = HotPathProfiler::enabled();
    let result = Server::new(
        pool,
        ServeConfig {
            batch: BatchPolicy {
                max_batch: 8,
                max_wait_s: 2e-3,
            },
            admission: AdmissionPolicy {
                queue_capacity: 64,
                default_deadline_s: None,
            },
            fault: Default::default(),
            brownout: Default::default(),
        },
    )
    .with_registry(&registry)
    .with_slo(slo)
    .with_flight_recorder(&flight)
    .with_profiler(&profiler)
    .run_open_loop(open_loop_poisson(11, 1000.0, 200, &[Model::LeNet5]));

    println!(
        "\nRun: {} completed, {} shed, p99 {:.2} ms",
        result.metrics.completed,
        result.metrics.shed(),
        result.metrics.latency.quantile(0.99) * 1e3,
    );

    // 1. The burn-rate alert: both windows over threshold at fire time.
    for a in &result.slo_alerts {
        println!(
            "SLO ALERT t={:.1} ms: {} {} burning {:.0}x (fast) / {:.0}x (slow) of budget",
            a.t_s * 1e3,
            a.model.name(),
            a.slo.label(),
            a.fast_burn,
            a.slow_burn,
        );
    }

    // 2. The same breach through the metrics registry.
    let burn = |window: &str| {
        registry
            .value(
                "serve_slo_burn_rate_ratio",
                &[
                    ("model", Model::LeNet5.name()),
                    ("slo", "latency"),
                    ("window", window),
                ],
            )
            .unwrap_or(0.0)
    };
    println!(
        "Registry: serve_slo_burn_rate_ratio fast={:.0} slow={:.0}, serve_profile_events_total={:.0}",
        burn("fast"),
        burn("slow"),
        registry
            .value("serve_profile_events_total", &[])
            .unwrap_or(0.0),
    );

    // 3. The postmortem: the frozen lead-up window behind the breach.
    let pm = result
        .postmortems
        .iter()
        .find(|p| p.trigger == "slo-breach")
        .expect("the breach froze a postmortem");
    println!(
        "\nPostmortem: trigger {} on {} at {:.1} ms, {} events in window ({} aged out)",
        pm.trigger,
        pm.subject,
        pm.t_s * 1e3,
        pm.events.len(),
        pm.dropped,
    );
    for e in pm
        .events
        .iter()
        .rev()
        .take(5)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!(
            "  t={:7.3} ms [{}] {:<10} {:<12} {}",
            e.t_s * 1e3,
            e.lane,
            e.kind,
            e.subject,
            e.detail
        );
    }
    println!(
        "\nFull postmortem JSON is self-contained ({} bytes) — write it next to the incident:",
        pm.to_json().len()
    );
    let json = pm.to_json();
    for line in json.lines().take(4) {
        println!("  {line}");
    }
    println!("  ...");
}
