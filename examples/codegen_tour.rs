//! A tour of the generated OpenCL C, reproducing the thesis listings:
//! the naive TVM schedule (Listing 5.1), the fused/cached-write schedule
//! (Listing 5.2), the tiled schedule (Listing 5.3), channelized + autorun
//! kernels (Listings 4.13/4.14), and a parameterized symbolic-shape kernel
//! (the Listing 5.10 form with the Listing 5.11 stride workaround).
//!
//! ```text
//! cargo run --release --example codegen_tour
//! ```

use fpgaccel::tensor::ops::Activation;
use fpgaccel::tir::codegen::{emit_kernel, emit_program};
use fpgaccel::tir::compute::{
    conv2d, pool, softmax, ConvDims, ConvSchedule, ConvSpec, EpilogueSpec, IoMode, PoolKind,
};
use fpgaccel::tir::Dim;

fn banner(title: &str) {
    println!("\n// ============================================================");
    println!("// {title}");
    println!("// ============================================================");
}

fn main() {
    let dims = ConvDims::constant(128, 64, 28, 28, 1, 1);

    banner("Listing 5.1 — the naive TVM schedule (global scratchpad, II-bound)");
    let base = ConvSpec::base("conv2d_1x1_base", dims.clone(), false);
    println!("{}", emit_kernel(&conv2d(&base)));

    banner("Listing 5.2 — fused epilogue + private accumulator (cached writes)");
    let mut fused = ConvSpec::base("conv2d_1x1_fused", dims.clone(), false);
    fused.schedule = ConvSchedule::Fused { unroll_ff: true };
    fused.epilogue = EpilogueSpec {
        activation: Activation::Relu,
        ..Default::default()
    };
    println!("{}", emit_kernel(&conv2d(&fused)));

    banner("Listing 5.4 — tiled + unrolled in xx / ax1 / rc");
    let mut tiled = fused.clone();
    tiled.name = "conv2d_1x1_tiled".into();
    tiled.schedule = ConvSchedule::Tiled {
        w2vec: 7,
        c2vec: 4,
        c1vec: 8,
    };
    println!("{}", emit_kernel(&conv2d(&tiled)));

    banner("Listings 4.13/4.14 — channelized pipeline with an autorun stage");
    let mut chan_conv = ConvSpec::base("conv_stage", ConvDims::constant(6, 1, 26, 26, 3, 1), false);
    chan_conv.schedule = ConvSchedule::Fused { unroll_ff: true };
    chan_conv.io_out = IoMode::channel("ch_0", 4056);
    let conv_k = conv2d(&chan_conv);
    let mut pool_k = pool(
        "pool_stage",
        PoolKind::Max,
        6,
        26,
        26,
        2,
        2,
        IoMode::channel("ch_0", 4056),
        IoMode::channel("ch_1", 1014),
    );
    pool_k.mark_autorun();
    let sm = softmax(
        "softmax_stage",
        10,
        IoMode::channel("ch_1", 1014),
        IoMode::Global,
        true,
    );
    println!("{}", emit_program(&[&conv_k, &pool_k, &sm]));

    banner("Listing 5.10/5.11 — parameterized symbolic-shape kernel (folded mode)");
    let sym_dims = ConvDims {
        c2: Dim::sym("ff"),
        c1: Dim::sym("rc"),
        h2: Dim::sym("hh"),
        w2: Dim::sym("ww"),
        h1: Dim::sym("ih"),
        w1: Dim::sym("iw"),
        f: 3,
        s: 1,
    };
    let mut sym = ConvSpec::base("conv2d_3x3_param", sym_dims, false);
    sym.schedule = ConvSchedule::Tiled {
        w2vec: 7,
        c2vec: 1,
        c1vec: 8,
    };
    println!("{}", emit_kernel(&conv2d(&sym)));
    println!(
        "// Note: loop bounds and subscripts above are functions of the integer\n\
         // arguments ff/rc/hh/ww, so one compute unit serves every layer with the\n\
         // same filter size and stride (§4.9/§5.3)."
    );
}
