//! Fleet serving: place a heterogeneous inventory, shard it, and drive
//! three tenants — one surging 10× its budget — through consistent-hash
//! routing and a staggered fleet-wide rollout.
//!
//! ```text
//! cargo run --release --example fleet
//! ```
//!
//! The placement optimizer packs demand for LeNet-5 and MobileNetV1 onto
//! a mixed Arria 10 / Stratix 10 SX fleet (the plan is cached in the
//! tuning database, so a second build warm-reloads it with zero probes),
//! the devices are dealt into shards, and a deterministic seeded run
//! routes every admitted request while the QoS door sheds the surging
//! tenant's excess weighted-fair.

use fpgaccel::core::{OptimizationConfig, TilingPreset};
use fpgaccel::device::FpgaPlatform;
use fpgaccel::fleet::{
    DeviceClass, Fleet, FleetConfig, FleetRollout, FleetSpec, ModelDemand, TenantLoad, TenantPolicy,
};
use fpgaccel::serve::{AdmissionPolicy, RolloutPolicy, ServeConfig};
use fpgaccel::tensor::models::Model;
use fpgaccel::tune::TuningDb;

fn main() {
    // Inventory and demand: the optimizer probes each (model, class)
    // pair, drops infeasible ones, and fills fastest-class-first.
    let spec = FleetSpec {
        classes: vec![
            DeviceClass {
                platform: FpgaPlatform::Arria10Gx,
                count: 8,
            },
            DeviceClass {
                platform: FpgaPlatform::Stratix10Sx,
                count: 8,
            },
        ],
        demands: vec![
            ModelDemand {
                model: Model::LeNet5,
                rate_rps: 20_000.0,
            },
            ModelDemand {
                model: Model::MobileNetV1,
                rate_rps: 120.0,
            },
        ],
        headroom: 0.2,
        domains: 1,
    };

    let cfg = FleetConfig {
        shards: 4,
        serve: ServeConfig {
            admission: AdmissionPolicy {
                queue_capacity: 1 << 14,
                default_deadline_s: None,
            },
            ..ServeConfig::default()
        },
        ..FleetConfig::default()
    };

    let mut db = TuningDb::new();
    let mut fleet = Fleet::build(&spec, cfg.clone(), &mut db).expect("the spec places");
    println!(
        "Placed {} of {} boards across {} shards ({} feasibility probes):",
        fleet.plan().devices_used(),
        16,
        fleet.shards(),
        fleet.plan().evaluations,
    );
    for a in &fleet.plan().assignments {
        println!(
            "  {:12} x{:2} on {:6} @ {:8.1} rps/board",
            a.model.name(),
            a.replicas,
            a.platform.label(),
            a.device_rate_rps,
        );
    }

    // A fleet-wide rollout: MobileNet upgrades to the auto-tuned folded
    // shape, shard by shard.
    let mut to = OptimizationConfig::folded(TilingPreset::Custom1x1 { tile: (7, 8, 8) });
    to.label = "Folded-Tuned".into();
    fleet.schedule_rollout(FleetRollout {
        model: Model::MobileNetV1,
        to,
        start_s: 0.05,
        stagger_s: 0.02,
        retry_at_s: 0.5,
        policy: RolloutPolicy::default(),
    });

    // Three tenants; "burst" offers 10x its budget on LeNet.
    let capacity = fleet.capacity_rps();
    let tenant = |name: &str, weight: f64, budget: f64, offered: Vec<(Model, f64)>| TenantLoad {
        policy: TenantPolicy {
            name: name.into(),
            weight,
            budget_rps: budget,
            burst: 30.0,
        },
        offered,
    };
    let tenants = vec![
        tenant(
            "anchor",
            2.0,
            0.45 * capacity,
            vec![(Model::LeNet5, 0.25 * capacity), (Model::MobileNetV1, 60.0)],
        ),
        tenant(
            "batch",
            1.0,
            0.2 * capacity,
            vec![(Model::LeNet5, 0.1 * capacity)],
        ),
        tenant(
            "burst",
            1.0,
            0.05 * capacity,
            vec![(Model::LeNet5, 0.5 * capacity)],
        ),
    ];

    let r = fleet.run(&tenants, 0.2);
    println!("\nTenants (offered / in-budget / over-budget / shed@fleet / completed):");
    for t in &r.tenants {
        println!(
            "  {:8} {:6} / {:6} / {:5} / {:5} / {:6}  (intra-budget completion {:.1}%)",
            t.name,
            t.offered,
            t.admitted_in_budget,
            t.admitted_over_budget,
            t.shed_fleet,
            t.completed,
            100.0 * t.in_budget_completion_rate(),
        );
    }
    println!(
        "\nRouter: {} routed, {} overflowed past their home shard; p99 latency {:.2} ms.",
        r.routed,
        r.overflowed,
        r.latency.quantile(0.99) * 1e3,
    );
    println!(
        "Rollout: {} shard promotion(s); every MobileNet board now serves the upgrade.",
        r.promotions(),
    );

    // A second start-up against the same tuning database warm-reloads
    // the placement without spending a single probe.
    let warm = Fleet::build(&spec, cfg, &mut db).expect("warm build");
    println!(
        "Warm restart: plan reloaded from the tuning database ({} probes, from_cache={}).",
        warm.plan().evaluations,
        warm.plan().from_cache,
    );
}
