//! Folded MobileNetV1 deployment (§6.3.2): parameterized symbolic-shape
//! kernels grouped per Table 6.7, time-multiplexed across the 27
//! convolution layers, with the per-op GFLOPS/runtime profile of Table 6.8.
//!
//! ```text
//! cargo run --release --example mobilenet_folded
//! ```

use fpgaccel::core::bitstreams::{baseline_config, optimized_config};
use fpgaccel::core::deploy::ExecutionPlan;
use fpgaccel::core::Flow;
use fpgaccel::device::FpgaPlatform;
use fpgaccel::tensor::models::Model;

fn main() {
    for platform in FpgaPlatform::ALL {
        println!("== {platform} ==");
        let flow = Flow::new(Model::MobileNetV1, platform);

        match flow.compile(&baseline_config(Model::MobileNetV1)) {
            Ok(d) => {
                let s = d.simulate_batch(2);
                println!(
                    "  naive (one kernel per layer): {:.3} FPS | {}",
                    s.fps,
                    d.fit_summary()
                );
            }
            Err(e) => println!("  naive (one kernel per layer): {e}"),
        }

        let cfg = optimized_config(Model::MobileNetV1, platform);
        let d = flow
            .compile(&cfg)
            .expect("parameterized kernels fit all three platforms (§6.3.2)");
        if let ExecutionPlan::Folded(plan) = &d.plan {
            let conv_kernels = plan
                .kernels
                .iter()
                .filter(|k| k.name.starts_with("conv2d"))
                .count();
            let conv_invocations = plan
                .invocations
                .iter()
                .filter(|i| i.kernel_name.starts_with("conv2d"))
                .count();
            println!(
                "  folded: {conv_invocations} conv layers time-multiplexed onto \
                 {conv_kernels} parameterized kernels"
            );
        }
        let stats = d.simulate_batch(4);
        println!(
            "  optimized: {:.1} FPS, {:.1} GFLOPS | {}",
            stats.fps,
            stats.gflops,
            d.fit_summary()
        );
        println!("  per-kernel profile (share of device-busy time):");
        let total: f64 = stats.kernel_seconds.values().sum();
        let mut rows: Vec<_> = stats.kernel_seconds.iter().collect();
        rows.sort_by(|a, b| b.1.total_cmp(a.1));
        for (k, secs) in rows.iter().take(6) {
            println!(
                "    {:<24} {:>5.1}%  {:>7.2} GFLOPS",
                k,
                100.0 * *secs / total,
                stats.kernel_gflops(k)
            );
        }
        println!();
    }
    println!(
        "Thesis: 1x1 convolutions dominate FLOPs but the depthwise and zero-padding\n\
         kernels dominate runtime — the padding kernels do no arithmetic at all yet\n\
         cost 13-21% of every forward pass (Table 6.8)."
    );
}
