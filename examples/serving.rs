//! Serving: co-serve LeNet-5 and MobileNetV1 across the three evaluation
//! FPGAs with dynamic batching and admission control, then push the pool
//! through increasing offered load and watch the tail latency stay bounded
//! while the excess is shed.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use fpgaccel::core::bitstreams::optimized_config;
use fpgaccel::device::FpgaPlatform;
use fpgaccel::serve::loadgen::{open_loop_poisson, with_deadline};
use fpgaccel::serve::{AdmissionPolicy, BatchPolicy, DevicePool, Request, ServeConfig, Server};
use fpgaccel::tensor::models::Model;

const SEED: u64 = 0x5E21;
/// Simulated trace duration, seconds.
const TRACE_S: f64 = 0.4;
const LENET_DEADLINE_S: f64 = 0.05;
const MOBILENET_DEADLINE_S: f64 = 4.0;
const SERVED: [Model; 2] = [Model::LeNet5, Model::MobileNetV1];

/// LeNet deploys everywhere; MobileNet only fits usefully on the two
/// Stratix 10 parts. Each `deploy` compiles through the shared deployment
/// cache and calibrates a per-image latency model for dispatch.
fn build_pool() -> DevicePool {
    let mut pool = DevicePool::new();
    for p in [
        FpgaPlatform::Stratix10Sx,
        FpgaPlatform::Stratix10Mx,
        FpgaPlatform::Arria10Gx,
    ] {
        let d = pool.add_device(p);
        pool.deploy(d, Model::LeNet5, &optimized_config(Model::LeNet5, p))
            .expect("LeNet fits every platform");
        if p != FpgaPlatform::Arria10Gx {
            pool.deploy(
                d,
                Model::MobileNetV1,
                &optimized_config(Model::MobileNetV1, p),
            )
            .expect("MobileNet fits the Stratix 10 parts");
        }
    }
    pool
}

/// Pool capacity for one model, requests/second, with each device's time
/// split evenly across the models it co-serves.
fn capacity_rps(pool: &DevicePool, model: Model) -> f64 {
    pool.devices()
        .iter()
        .filter_map(|d| {
            let lm = d.latency_model(model)?;
            let sharing = SERVED
                .iter()
                .filter(|&&m| d.latency_model(m).is_some())
                .count();
            Some(1.0 / (sharing as f64 * lm.per_image_s))
        })
        .sum()
}

/// One Poisson stream per model at `mult` times that model's capacity.
fn mixed_trace(pool: &DevicePool, mult: f64) -> Vec<Request> {
    let mut trace = Vec::new();
    for (slot, (&model, deadline)) in SERVED
        .iter()
        .zip([LENET_DEADLINE_S, MOBILENET_DEADLINE_S])
        .enumerate()
    {
        let rate = mult * capacity_rps(pool, model);
        let n = ((rate * TRACE_S).ceil() as usize).max(1);
        let mut stream = with_deadline(
            open_loop_poisson(SEED ^ slot as u64, rate, n, &[model]),
            deadline,
        );
        for r in &mut stream {
            r.id = r.id * SERVED.len() as u64 + slot as u64;
        }
        trace.extend(stream);
    }
    trace
}

fn main() {
    let pool = build_pool();
    for d in pool.devices() {
        let models: Vec<&str> = SERVED
            .iter()
            .filter(|&&m| d.latency_model(m).is_some())
            .map(|m| m.name())
            .collect();
        println!("device {:10} serves {}", d.name, models.join(" + "));
    }
    println!(
        "capacity: LeNet {:.0} rps, MobileNet {:.1} rps (devices split evenly)\n",
        capacity_rps(&pool, Model::LeNet5),
        capacity_rps(&pool, Model::MobileNetV1)
    );

    let cfg = ServeConfig {
        batch: BatchPolicy {
            max_batch: 8,
            max_wait_s: 2e-3,
        },
        admission: AdmissionPolicy {
            queue_capacity: 64,
            default_deadline_s: None,
        },
        fault: Default::default(),
        brownout: Default::default(),
    };

    println!(
        "{:>6} {:>8} {:>10} {:>7} {:>9} {:>9} {:>9} {:>11}",
        "load", "offered", "completed", "shed %", "rps", "p50 ms", "p99 ms", "mean batch"
    );
    for mult in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let trace = mixed_trace(&pool, mult);
        let offered = trace.len();
        let r = Server::new(build_pool(), cfg).run_open_loop(trace);
        println!(
            "{:>5.2}x {:>8} {:>10} {:>7.1} {:>9.0} {:>9.2} {:>9.2} {:>11.2}",
            mult,
            offered,
            r.metrics.completed,
            100.0 * r.metrics.shed_rate(),
            r.metrics.throughput_rps(),
            r.metrics.latency.quantile(0.50) * 1e3,
            r.metrics.latency.quantile(0.99) * 1e3,
            r.metrics.mean_batch_size(),
        );
    }
    println!(
        "\nPast 1.0x offered load the bounded queue and per-request deadlines shed\n\
         the excess instead of letting the served tail grow without bound."
    );
}
