//! The full Table 6.4 optimization ladder for pipelined LeNet-5 on all
//! three FPGAs, with the Figure 6.2-style event-profile breakdown — the
//! §6.3.1 experiment end to end.
//!
//! ```text
//! cargo run --release --example lenet_pipeline
//! ```

use fpgaccel::core::bitstreams::lenet_ladder;
use fpgaccel::core::Flow;
use fpgaccel::device::FpgaPlatform;
use fpgaccel::tensor::models::Model;

fn main() {
    for platform in FpgaPlatform::ALL {
        println!("== {platform} ==");
        let flow = Flow::new(Model::LeNet5, platform);
        let mut base_fps = None;
        for cfg in lenet_ladder() {
            for concurrent in [false, true] {
                let cfg = if concurrent {
                    cfg.clone().with_concurrent()
                } else {
                    cfg.clone()
                };
                let d = flow.compile(&cfg).expect("LeNet fits");
                let stats = d.simulate_batch(500);
                let base = *base_fps.get_or_insert(stats.fps);
                let (k, w, r) = stats.breakdown.fractions();
                println!(
                    "  {:<18} {:>7.0} FPS ({:>5.2}x base) | busy: {:>2.0}% kernel {:>2.0}% wr {:>2.0}% rd | {}",
                    cfg.label,
                    stats.fps,
                    stats.fps / base,
                    k * 100.0,
                    w * 100.0,
                    r * 100.0,
                    d.fit_summary()
                );
            }
        }
        println!();
    }
    println!(
        "Thesis (§6.3.1): unrolling, channels and autorun each help; concurrent\n\
         execution with channels implements layer-pipelined inference and gives the\n\
         largest jump (up to ~10x over base); automation via TVM primitives matches\n\
         the hand-applied kernels."
    );
}
