//! Auto-tuning end to end: search the MobileNetV1 1x1-convolution tiling
//! space on the Arria 10 with the cost-model-guided tuner, persist the
//! result to a tuning database on disk, reload it, answer the same query
//! from the warm database with zero evaluations, and finally deploy the
//! tuned configuration through the serving-layer deployment cache.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use fpgaccel::core::bitstreams::{mobilenet_tile, optimized_config};
use fpgaccel::core::{tune_model, Flow, FlowEvaluator, TilingPreset};
use fpgaccel::device::FpgaPlatform;
use fpgaccel::serve::DeploymentCache;
use fpgaccel::tensor::models::Model;
use fpgaccel::trace::{Registry, Tracer};
use fpgaccel::tune::{Candidate, Evaluate, SearchConfig, TuningDb};

fn main() {
    let model = Model::MobileNetV1;
    let platform = FpgaPlatform::Arria10Gx;
    let db_path = std::env::temp_dir().join("fpgaccel-autotune-example/tune_db.json");

    // The hand-tuned thesis deployment (Table 6.7: 7/8/8 on the A10) is the
    // bar the search has to clear.
    let hand_tile = mobilenet_tile(platform);
    let hand = FlowEvaluator::new(&Flow::new(model, platform))
        .evaluate(&Candidate::new(hand_tile))
        .expect("hand-tuned tiling synthesizes");
    println!(
        "hand-tuned  {:?}: {:.2} ms/img (1x1 {:.2} ms, {} DSPs, {:.0} MHz)",
        hand_tile,
        hand.seconds_per_image.unwrap() * 1e3,
        hand.conv1x1_seconds * 1e3,
        hand.dsps,
        hand.fmax_mhz
    );

    // Cold search: beam rounds over the cost model, then evolutionary
    // refinement, candidates evaluated in parallel worker threads.
    let mut db = TuningDb::new();
    let cfg = SearchConfig::default();
    let cold = tune_model(
        model,
        platform,
        cfg.clone(),
        &mut db,
        &Tracer::disabled(),
        &Registry::default(),
    )
    .expect("the A10 space has feasible candidates");
    println!(
        "cold search {:?}: {:.2} ms/img in {} evaluations",
        cold.candidate.tile,
        cold.seconds_per_image * 1e3,
        cold.evaluations
    );

    // Persist, reload, and ask again: the warm answer is a pure database
    // lookup — zero candidate evaluations.
    db.save(&db_path).expect("database saves");
    let mut warm_db = TuningDb::load(&db_path).expect("database loads");
    let warm = tune_model(
        model,
        platform,
        cfg,
        &mut warm_db,
        &Tracer::disabled(),
        &Registry::default(),
    )
    .unwrap();
    println!(
        "warm lookup {:?}: {:.2} ms/img in {} evaluations (from_cache={})",
        warm.candidate.tile,
        warm.seconds_per_image * 1e3,
        warm.evaluations,
        warm.from_cache
    );

    // Deploy through the serving layer: the deployment cache consults the
    // tuning database and compiles the tuned config, falling back to the
    // hand-tuned preset only for models the database has never seen.
    let fallback = optimized_config(model, platform);
    let mut cache = DeploymentCache::new();
    let d = cache
        .get_or_compile_tuned(model, platform, &warm_db, &fallback)
        .expect("tuned config compiles");
    println!(
        "deployed    \"{}\" ({:?}): batch-1 latency {:.2} ms",
        d.config.label,
        match d.config.tiling {
            TilingPreset::Custom1x1 { tile } => tile,
            _ => hand_tile,
        },
        d.simulate_batch(1).seconds * 1e3
    );

    // LeNet has no 1x1 convolutions, so it is not in the database: the same
    // call transparently falls back to the hand-tuned config.
    let lenet_fallback = optimized_config(Model::LeNet5, platform);
    let l = cache
        .get_or_compile_tuned(Model::LeNet5, platform, &warm_db, &lenet_fallback)
        .expect("fallback config compiles");
    println!(
        "fallback    \"{}\" for LeNet-5 (not in the database)",
        l.config.label
    );

    let _ = std::fs::remove_dir_all(db_path.parent().unwrap());
}
