//! Quickstart: compile LeNet-5 into an optimized pipelined accelerator for
//! the Stratix 10 SX, verify it against the reference engine, and classify
//! a batch of synthetic digits.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fpgaccel::baseline::ReferenceEngine;
use fpgaccel::core::verify::verify_deployment;
use fpgaccel::core::{Flow, OptimizationConfig};
use fpgaccel::device::FpgaPlatform;
use fpgaccel::tensor::data;
use fpgaccel::tensor::models::Model;

fn main() {
    // 1. Compile: model graph -> fusion -> kernels -> AOC synthesis.
    let flow = Flow::new(Model::LeNet5, FpgaPlatform::Stratix10Sx);
    let config = OptimizationConfig::tvm_autorun().with_concurrent();
    let accel = flow.compile(&config).expect("LeNet fits every platform");
    println!("compiled `{}` for {}", config.label, accel.device.platform);
    println!("  {}", accel.fit_summary());
    println!(
        "  one-time parameter upload: {:.2} ms",
        accel.setup_seconds() * 1e3
    );

    // 2. Verify: the exact generated kernels, run through the IR
    //    interpreter (channels and all), must reproduce the reference
    //    output.
    let probe = data::synthetic_digit(7, 0);
    verify_deployment(&accel, &probe, 1e-3).expect("kernels match reference");
    println!("  kernel-level verification: OK");

    // 3. Classify a batch and report simulated FPGA throughput.
    let engine = ReferenceEngine::new(Model::LeNet5);
    let inputs = data::digit_batch(10, 42);
    for (i, x) in inputs.iter().enumerate() {
        let class = accel.classify(x);
        assert_eq!(class, engine.classify(x), "accelerator matches engine");
        println!("  image {i}: class {class}");
    }
    let stats = accel.simulate_batch(1000);
    println!(
        "steady state: {:.0} FPS ({:.2} GFLOPS) over {} images",
        stats.fps, stats.gflops, stats.images
    );
}
